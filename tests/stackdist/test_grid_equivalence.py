"""REPRO_STACKDIST_GRID tripwire: 220 combos, stackdist == reference.

Mirrors ``tests/engine/test_equivalence.py``'s randomized sweep, but on
the stack-distance engine's coverable subset (LRU, demand fetch,
read/ifetch traces): 4 chunks x 55 seeded combos, each simulated once
through :func:`repro.stackdist.run_group_pass` — grouped with sibling
associativities sharing the (block, sets) pair, exactly as the planner
would batch them — and once per member through the
:class:`~repro.engine.ReferenceEngine`, asserting every counter equal.

Skipped unless ``REPRO_STACKDIST_GRID=1`` (CI's stackdist-smoke job
sets it); the always-on property suite lives in ``test_property.py``.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.core.config import CacheGeometry
from repro.engine import ReferenceEngine
from repro.stackdist import MemberSpec, run_group_pass
from repro.trace.record import Trace

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_STACKDIST_GRID"),
    reason="set REPRO_STACKDIST_GRID=1 to run the 220-combo grid tripwire",
)

REFERENCE = ReferenceEngine()

_COUNTERS = (
    "accesses",
    "misses",
    "block_misses",
    "sub_block_misses",
    "accesses_by_kind",
    "misses_by_kind",
    "bytes_accessed",
    "bytes_fetched",
    "redundant_bytes_fetched",
    "transaction_words",
    "evictions",
    "evicted_sub_blocks_referenced",
    "evicted_sub_blocks_total",
    "writebacks",
    "bytes_written_back",
    "bytes_written_through",
    "prefetches",
)


def _readonly_trace(rng, n, addr_space, max_size, spanning):
    """Sequential ifetch runs + random reads — no writes (coverable)."""
    addrs, kinds, sizes = [], [], []
    pc = rng.randrange(addr_space)
    for _ in range(n):
        if rng.random() < 0.5:
            if rng.random() < 0.6:
                pc += rng.choice((0, 0, 2, 2, 4))
            else:
                pc = rng.randrange(addr_space)
            addrs.append(pc % addr_space)
            kinds.append(2)
            sizes.append(rng.choice((0, 2)))
        else:
            addrs.append(rng.randrange(addr_space))
            kinds.append(0)
            sizes.append(
                rng.choice((0, 1, 2, 4) + ((max_size,) if spanning else ()))
            )
    return Trace(
        np.array(addrs, np.int64),
        np.array(kinds, np.uint8),
        np.array(sizes, np.uint8),
        name="rnd",
    )


def _random_group(rng):
    """One (trace, block, sets, members, word, flush) pass-group combo."""
    block = rng.choice((4, 8, 16, 32))
    num_sets = rng.choice((1, 2, 4, 8, 32))
    word = rng.choice([w for w in (1, 2, 4) if w <= block])
    subs = [s for s in (1, 2, 4, 8, 16) if word <= s <= block]
    n = rng.choice((0, 1, 5, 50, 400))
    members = []
    for ways in rng.sample((1, 2, 4, 8, 256), k=rng.randint(1, 3)):
        members.append(
            MemberSpec(
                ways=ways,
                sub_block_size=rng.choice(subs),
                warmup=rng.choice(("fill", 0, 1, n // 2, n, n + 3)),
            )
        )
    trace = _readonly_trace(
        rng, n, rng.choice((64, 256, 4096)), 13, spanning=rng.random() < 0.5
    )
    return trace, block, num_sets, members, word, rng.random() < 0.3


@pytest.mark.parametrize("chunk", range(4))
def test_randomized_grid_equivalence(chunk):
    """220 randomized pass groups, exact counter equality per member."""
    rng = random.Random(7000 + chunk)
    for _ in range(55):
        trace, block, num_sets, members, word, flush = _random_group(rng)
        got_list = run_group_pass(
            trace, block, num_sets, members,
            word_size=word, flush_at_end=flush,
        )
        for member, got in zip(members, got_list):
            geometry = CacheGeometry(
                net_size=block * num_sets * member.ways,
                block_size=block,
                sub_block_size=member.sub_block_size,
                associativity=member.ways,
            )
            want = REFERENCE.run(
                geometry, trace,
                word_size=word,
                warmup=member.warmup,
                flush_at_end=flush,
            )
            for counter in _COUNTERS:
                assert getattr(want, counter) == getattr(got, counter), (
                    f"{counter} diverged for {geometry} member {member} "
                    f"over {trace!r} (word {word}, flush {flush}): "
                    f"reference {getattr(want, counter)!r} != stackdist "
                    f"{getattr(got, counter)!r}"
                )
