"""Tests for repro.stackdist.distance_histogram (per-set distances)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stackdist import distance_histogram
from repro.trace.record import Trace


def _trace(addrs):
    n = len(addrs)
    return Trace(
        np.array(addrs, np.int64),
        np.zeros(n, np.uint8),
        np.zeros(n, np.uint8),
        name="hist",
    )


def test_cold_misses_land_in_minus_one():
    hist = distance_histogram(_trace([0, 16, 32]), block_size=16)
    assert hist == {-1: 3}


def test_repeat_distance_counts_intervening_blocks():
    # Blocks: A B C A — A's re-reference sees 3 distinct blocks on the
    # stack (itself included), so distance 3.
    hist = distance_histogram(_trace([0, 16, 32, 0]), block_size=16)
    assert hist == {-1: 3, 3: 1}


def test_immediate_rereference_is_distance_one():
    hist = distance_histogram(_trace([0, 4, 8]), block_size=16)
    assert hist == {-1: 1, 1: 2}


def test_num_sets_partitions_the_stack():
    # Blocks 0,1,2,3 then 0 again.  One set: distance 4.  Two sets:
    # blocks 0,2 share set 0, so only one distinct block intervenes.
    addrs = [0, 16, 32, 48, 0]
    assert distance_histogram(_trace(addrs), 16)[4] == 1
    assert distance_histogram(_trace(addrs), 16, num_sets=2)[2] == 1


def test_total_mass_equals_trace_length():
    rng = np.random.default_rng(9)
    addrs = rng.integers(0, 512, size=200).tolist()
    for num_sets in (1, 2, 8):
        hist = distance_histogram(_trace(addrs), 8, num_sets=num_sets)
        assert sum(hist.values()) == 200


@pytest.mark.parametrize("kwargs", [dict(block_size=0), dict(num_sets=0)])
def test_invalid_shape_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        distance_histogram(
            _trace([0]), kwargs.get("block_size", 16),
            num_sets=kwargs.get("num_sets", 1),
        )
