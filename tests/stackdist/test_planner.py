"""Unit tests for the pass-group planner (repro.stackdist.planner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CacheGeometry
from repro.core.fetch import DemandFetch, LoadForwardFetch
from repro.core.misspath import MissPathConfig
from repro.errors import ConfigurationError
from repro.stackdist import (
    GRID_ENGINE_NAMES,
    plan_grid,
    trace_coverable,
)
from repro.trace.record import Trace


def _constant_sets_grid():
    """Four geometries sharing (block=16, sets=16): one pass group."""
    return [
        CacheGeometry(
            net_size=256 * assoc, block_size=16,
            sub_block_size=4, associativity=assoc,
        )
        for assoc in (1, 2, 4, 8)
    ]


def _mixed_grid():
    """Two pass-group keys plus the constant-sets quartet."""
    return _constant_sets_grid() + [
        CacheGeometry(net_size=512, block_size=8, sub_block_size=4),
        CacheGeometry(net_size=512, block_size=8, sub_block_size=8),
    ]


def test_grid_engine_names_frozen():
    assert GRID_ENGINE_NAMES == ("auto", "stackdist", "percell")


def test_plan_groups_by_block_and_sets():
    plan = plan_grid(_mixed_grid())
    assert plan.covered == 6
    assert plan.fallback_indices == ()
    keys = {(g.block_size, g.num_sets) for g in plan.groups}
    assert keys == {(16, 16), (8, 16)}
    by_key = {(g.block_size, g.num_sets): g for g in plan.groups}
    assert by_key[(16, 16)].geometry_indices == (0, 1, 2, 3)
    assert by_key[(8, 16)].geometry_indices == (4, 5)


def test_members_carry_resolved_assoc_sub_and_warmup():
    plan = plan_grid(_constant_sets_grid(), warmup=100)
    (group,) = plan.groups
    assert [m.ways for m in group.members] == [1, 2, 4, 8]
    assert all(m.sub_block_size == 4 for m in group.members)
    assert all(m.warmup == 100 for m in group.members)


def test_auto_keeps_singleton_groups_per_cell():
    grid = [CacheGeometry(512, 8, 4), CacheGeometry(1024, 16, 4)]
    plan = plan_grid(grid, grid_engine="auto")
    assert plan.groups == ()
    assert plan.fallback_indices == (0, 1)
    assert all(
        "pass group of 1" in reason
        for reason in plan.fallback_reasons.values()
    )


def test_stackdist_mode_takes_singletons():
    grid = [CacheGeometry(512, 8, 4), CacheGeometry(1024, 16, 4)]
    plan = plan_grid(grid, grid_engine="stackdist")
    assert plan.covered == 2
    assert plan.fallback_indices == ()
    assert all(len(group) == 1 for group in plan.groups)


def test_percell_mode_covers_nothing():
    plan = plan_grid(_constant_sets_grid(), grid_engine="percell")
    assert plan.groups == ()
    assert plan.fallback_indices == (0, 1, 2, 3)
    assert plan.blockers == ("grid engine forced to percell",)


def test_unknown_grid_engine_rejected():
    with pytest.raises(ConfigurationError):
        plan_grid(_constant_sets_grid(), grid_engine="warp")


@pytest.mark.parametrize(
    "kwargs, needle",
    [
        (dict(replacement="fifo"), "replacement"),
        (dict(fetch=LoadForwardFetch()), "fetch"),
        (dict(miss_path=MissPathConfig(victim_entries=2)), "miss-path"),
        (dict(engine="checked"), "checked"),
        (dict(cell_timeout=1.0), "cell_timeout"),
        (dict(max_cell_accesses=10), "max_cell_accesses"),
        (dict(injector_active=True), "injector"),
    ],
)
def test_sweep_blockers_force_fallback(kwargs, needle):
    plan = plan_grid(_constant_sets_grid(), **kwargs)
    assert plan.groups == ()
    assert plan.fallback_indices == (0, 1, 2, 3)
    assert any(needle in blocker for blocker in plan.blockers)


def test_disabled_miss_path_does_not_block():
    plan = plan_grid(_constant_sets_grid(), miss_path=MissPathConfig())
    assert plan.covered == 4


@pytest.mark.parametrize("fetch", [None, "demand", DemandFetch()])
def test_demand_fetch_spellings_all_coverable(fetch):
    plan = plan_grid(_constant_sets_grid(), fetch=fetch)
    assert plan.covered == 4


def test_explicit_percell_engine_blocks_auto_only():
    grid = _constant_sets_grid()
    auto = plan_grid(grid, engine="vectorized", grid_engine="auto")
    assert auto.groups == ()
    assert any("defers" in blocker for blocker in auto.blockers)
    forced = plan_grid(grid, engine="vectorized", grid_engine="stackdist")
    assert forced.covered == 4
    # checked is a sanitizer: it must actually run per cell, always.
    checked = plan_grid(grid, engine="checked", grid_engine="stackdist")
    assert checked.groups == ()


def test_trace_coverable_rejects_writes():
    reads = Trace(
        np.array([0, 8, 16], np.int64),
        np.array([0, 2, 0], np.uint8),
        np.zeros(3, np.uint8),
        name="reads",
    )
    writes = Trace(
        np.array([0, 8, 16], np.int64),
        np.array([0, 1, 0], np.uint8),
        np.zeros(3, np.uint8),
        name="writes",
    )
    assert trace_coverable(reads)
    assert not trace_coverable(writes)
    assert not trace_coverable(object())
