"""Property tests: one-pass stack-distance counters == ReferenceEngine.

The stack-distance engine's whole value proposition is *exact*
equality: every member cell of a pass group must be bit-identical to a
reference-engine run of the same geometry.  Hypothesis drives the
geometry axes (sets x assoc x block x sub-block), warm-up modes, and
randomized read/ifetch streams; the assertion compares every
:class:`~repro.core.stats.CacheStats` counter, not just the ratios.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheGeometry
from repro.engine import CheckedEngine, ReferenceEngine
from repro.errors import ConfigurationError
from repro.stackdist import MemberSpec, run_group_pass
from repro.trace.record import Trace

REFERENCE = ReferenceEngine()

_COUNTERS = (
    "accesses",
    "misses",
    "block_misses",
    "sub_block_misses",
    "accesses_by_kind",
    "misses_by_kind",
    "bytes_accessed",
    "bytes_fetched",
    "redundant_bytes_fetched",
    "transaction_words",
    "evictions",
    "evicted_sub_blocks_referenced",
    "evicted_sub_blocks_total",
    "writebacks",
    "prefetches",
)


def _trace(addrs, kinds, sizes):
    return Trace(
        np.array(addrs, np.int64),
        np.array(kinds, np.uint8),
        np.array(sizes, np.uint8),
        name="prop",
    )


def _assert_members_match(
    trace, block_size, num_sets, members, word_size=2, flush_at_end=False
):
    """run_group_pass vs one ReferenceEngine run per member, all counters."""
    stats_list = run_group_pass(
        trace, block_size, num_sets, members,
        word_size=word_size, flush_at_end=flush_at_end,
    )
    assert len(stats_list) == len(members)
    for member, got in zip(members, stats_list):
        geometry = CacheGeometry(
            net_size=block_size * num_sets * member.ways,
            block_size=block_size,
            sub_block_size=member.sub_block_size,
            associativity=member.ways,
        )
        want = REFERENCE.run(
            geometry, trace,
            word_size=word_size,
            warmup=member.warmup,
            flush_at_end=flush_at_end,
        )
        for counter in _COUNTERS:
            assert getattr(want, counter) == getattr(got, counter), (
                f"{counter} diverged for member {member} "
                f"(block {block_size}, sets {num_sets}): reference "
                f"{getattr(want, counter)!r} != stackdist "
                f"{getattr(got, counter)!r}"
            )


@st.composite
def _pass_group_case(draw):
    """A (trace, block, sets, members) case over the paper's axes."""
    block_size = draw(st.sampled_from([4, 8, 16, 32]))
    num_sets = draw(st.sampled_from([1, 2, 4, 16]))
    n = draw(st.integers(min_value=0, max_value=120))
    addr_space = block_size * num_sets * 24
    addrs = draw(
        st.lists(
            st.integers(min_value=0, max_value=addr_space - 1),
            min_size=n, max_size=n,
        )
    )
    kinds = draw(
        st.lists(st.sampled_from([0, 2]), min_size=n, max_size=n)
    )
    sizes = draw(
        st.lists(st.sampled_from([0, 1, 2, 4]), min_size=n, max_size=n)
    )
    word_size = draw(st.sampled_from([1, 2]))
    subs = [
        s for s in (1, 2, 4, 8, 16) if word_size <= s <= block_size
    ]
    members = []
    # Power-of-two ways only: CacheGeometry requires a power-of-two
    # net_size = block * sets * ways.
    for ways in draw(
        st.lists(
            st.sampled_from([1, 2, 4, 8]),
            min_size=1, max_size=4, unique=True,
        )
    ):
        warmup = draw(
            st.one_of(
                st.just("fill"),
                st.integers(min_value=0, max_value=n + 2),
            )
        )
        members.append(
            MemberSpec(
                ways=ways,
                sub_block_size=draw(st.sampled_from(subs)),
                warmup=warmup,
            )
        )
    flush = draw(st.booleans())
    return (
        _trace(addrs, kinds, sizes),
        block_size, num_sets, members, word_size, flush,
    )


@settings(max_examples=60, deadline=None)
@given(case=_pass_group_case())
def test_pass_group_matches_reference(case):
    trace, block_size, num_sets, members, word_size, flush = case
    _assert_members_match(
        trace, block_size, num_sets, members,
        word_size=word_size, flush_at_end=flush,
    )


@settings(max_examples=25, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=511), min_size=1, max_size=60
    ),
    ways=st.sampled_from([1, 2, 4]),
)
def test_spot_check_against_checked_engine(addrs, ways):
    """The sanitizing engine agrees too (belt and braces)."""
    trace = _trace(addrs, [0] * len(addrs), [2] * len(addrs))
    member = MemberSpec(ways=ways, sub_block_size=4)
    (got,) = run_group_pass(trace, 8, 4, [member])
    geometry = CacheGeometry(8 * 4 * ways, 8, 4, associativity=ways)
    want = CheckedEngine().run(geometry, trace, warmup="fill")
    assert want.snapshot() == got.snapshot()


def test_write_trace_rejected():
    trace = _trace([0, 8], [0, 1], [0, 0])
    with pytest.raises(ConfigurationError, match="read/ifetch"):
        run_group_pass(trace, 8, 2, [MemberSpec(ways=1, sub_block_size=4)])


def test_empty_trace_all_members_zero():
    trace = _trace([], [], [])
    members = [
        MemberSpec(ways=1, sub_block_size=4),
        MemberSpec(ways=4, sub_block_size=8),
    ]
    for stats in run_group_pass(trace, 8, 2, members):
        assert stats.accesses == 0
        assert stats.misses == 0
