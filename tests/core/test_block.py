"""Block and bitmask helper tests."""

from repro.core.block import Block, mask_of_range, popcount


class TestHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 64) - 1) == 64

    def test_mask_of_range_single(self):
        assert mask_of_range(3, 3) == 0b1000

    def test_mask_of_range_span(self):
        assert mask_of_range(1, 3) == 0b1110

    def test_mask_of_range_from_zero(self):
        assert mask_of_range(0, 4) == 0b11111


class TestBlock:
    def test_new_block_is_empty(self):
        block = Block(tag=7)
        assert block.tag == 7
        assert block.valid == 0
        assert block.referenced == 0
        assert block.dirty == 0

    def test_holds(self):
        block = Block(0)
        block.valid = 0b0110
        assert block.holds(0b0100)
        assert block.holds(0b0110)
        assert not block.holds(0b0001)
        assert not block.holds(0b1110)

    def test_missing(self):
        block = Block(0)
        block.valid = 0b0110
        assert block.missing(0b1111) == 0b1001
        assert block.missing(0b0110) == 0

    def test_utilization(self):
        block = Block(0)
        block.referenced = 0b0011
        assert block.utilization(8) == 0.25
        assert block.utilization(2) == 1.0

    def test_repr(self):
        block = Block(0xAB)
        block.valid = 0b101
        assert "0xab" in repr(block)
