"""Replacement-policy unit tests."""

import pytest

from repro.core.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    make_replacement,
)
from repro.errors import ConfigurationError


class TestLRU:
    def test_victim_is_least_recent_fill(self):
        policy = LRUReplacement()
        state = policy.new_set(4)
        for way in range(4):
            policy.on_fill(state, way)
        assert policy.victim(state) == 0

    def test_hit_refreshes(self):
        policy = LRUReplacement()
        state = policy.new_set(4)
        for way in range(4):
            policy.on_fill(state, way)
        policy.on_hit(state, 0)
        assert policy.victim(state) == 1

    def test_repeated_hits_are_stable(self):
        policy = LRUReplacement()
        state = policy.new_set(2)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        policy.on_hit(state, 1)
        policy.on_hit(state, 1)
        assert policy.victim(state) == 0

    def test_refill_of_same_way_moves_to_front(self):
        policy = LRUReplacement()
        state = policy.new_set(2)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        policy.on_fill(state, 0)  # victim replaced in place
        assert policy.victim(state) == 1


class TestFIFO:
    def test_victim_is_oldest_fill(self):
        policy = FIFOReplacement()
        state = policy.new_set(3)
        for way in (2, 0, 1):
            policy.on_fill(state, way)
        assert policy.victim(state) == 2

    def test_hits_do_not_refresh(self):
        policy = FIFOReplacement()
        state = policy.new_set(2)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        policy.on_hit(state, 0)
        assert policy.victim(state) == 0


class TestRandom:
    def test_deterministic_for_seed(self):
        a = RandomReplacement(seed=42)
        b = RandomReplacement(seed=42)
        state_a = a.new_set(8)
        state_b = b.new_set(8)
        assert [a.victim(state_a) for _ in range(20)] == [
            b.victim(state_b) for _ in range(20)
        ]

    def test_victims_in_range(self):
        policy = RandomReplacement(seed=1)
        state = policy.new_set(4)
        assert all(0 <= policy.victim(state) < 4 for _ in range(100))

    def test_covers_all_ways(self):
        policy = RandomReplacement(seed=3)
        state = policy.new_set(4)
        assert {policy.victim(state) for _ in range(200)} == {0, 1, 2, 3}


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUReplacement), ("fifo", FIFOReplacement), ("random", RandomReplacement)],
    )
    def test_builds_by_name(self, name, cls):
        assert isinstance(make_replacement(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_replacement("LRU"), LRUReplacement)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_replacement("belady")
