"""Fetch-policy tests: demand, load-forward, and the run splitter."""

import pytest

from repro.core.block import popcount
from repro.core.fetch import (
    DemandFetch,
    LoadForwardFetch,
    contiguous_runs,
    make_fetch,
)
from repro.errors import ConfigurationError


class TestContiguousRuns:
    def test_empty_mask(self):
        assert contiguous_runs(0) == ()

    def test_single_run(self):
        assert contiguous_runs(0b111) == (3,)

    def test_split_runs(self):
        assert contiguous_runs(0b1101) == (1, 2)

    def test_high_isolated_bit(self):
        assert contiguous_runs(0b1000_0001) == (1, 1)

    def test_total_equals_popcount(self):
        for mask in range(256):
            assert sum(contiguous_runs(mask)) == popcount(mask)


class TestDemandFetch:
    def test_fetches_exactly_missing(self):
        plan = DemandFetch().plan(0b0100, 2, 0b0011, 8)
        assert plan.fetch_mask == 0b0100
        assert plan.transactions == (1,)
        assert plan.redundant_mask == 0

    def test_multi_sub_block_access(self):
        plan = DemandFetch().plan(0b0110, 1, 0, 8)
        assert plan.fetch_mask == 0b0110
        assert plan.transactions == (2,)

    def test_never_redundant(self):
        plan = DemandFetch().plan(0b1000, 3, 0b0111, 8)
        assert plan.redundant_mask == 0


class TestLoadForward:
    def test_fetches_from_target_to_end(self):
        plan = LoadForwardFetch().plan(0b0100, 2, 0, 8)
        assert plan.fetch_mask == 0b1111_1100
        assert plan.transactions == (6,)

    def test_target_at_end_fetches_one(self):
        plan = LoadForwardFetch().plan(0b1000_0000, 7, 0, 8)
        assert plan.fetch_mask == 0b1000_0000
        assert plan.transactions == (1,)

    def test_redundant_refetch_counted(self):
        # Sub-blocks 3 and 5 already valid; forward from 2 re-fetches
        # them (the paper's simple scheme) and reports them redundant.
        plan = LoadForwardFetch().plan(0b0100, 2, 0b0010_1000, 8)
        assert plan.fetch_mask == 0b1111_1100
        assert plan.redundant_mask == 0b0010_1000

    def test_optimized_skips_valid(self):
        plan = LoadForwardFetch(optimized=True).plan(0b0100, 2, 0b0010_1000, 8)
        assert plan.fetch_mask == 0b1101_0100
        assert plan.redundant_mask == 0
        assert plan.transactions == (1, 1, 2)

    def test_optimized_single_run_when_nothing_valid(self):
        plan = LoadForwardFetch(optimized=True).plan(0b0100, 2, 0, 8)
        assert plan.transactions == (6,)

    def test_names(self):
        assert LoadForwardFetch().name == "load-forward"
        assert LoadForwardFetch(optimized=True).name == "load-forward-optimized"


class TestFactory:
    def test_builds_by_name(self):
        assert isinstance(make_fetch("demand"), DemandFetch)
        assert isinstance(make_fetch("load-forward"), LoadForwardFetch)
        assert make_fetch("load_forward_optimized").optimized

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fetch("oracle")
