"""CacheStats serialization: lossless round-trip, property-tested.

``to_dict``/``from_dict`` is the one serialization used wherever full
stats cross a storage boundary (checkpoint cell records, the service's
result cache and JSON responses), so it must be exactly invertible for
*any* counter state — including through an actual JSON encode/decode,
which is what stringifies the enum and integer dict keys.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.misspath import MissPathStats
from repro.core.sim import simulate
from repro.core.stats import CacheStats
from repro.trace.record import AccessType

counts = st.integers(min_value=0, max_value=10 ** 12)

kind_maps = st.fixed_dictionaries(
    {
        AccessType.READ: counts,
        AccessType.WRITE: counts,
        AccessType.IFETCH: counts,
    }
)

transaction_maps = st.dictionaries(
    keys=st.integers(min_value=1, max_value=512),
    values=st.integers(min_value=1, max_value=10 ** 9),
    max_size=12,
)


@st.composite
def misspath_objects(draw):
    chain = tuple(
        name
        for name in ("victim", "miss", "stream", "l2")
        if draw(st.booleans())
    )
    misspath = MissPathStats(chain)
    misspath.demand_misses = draw(counts)
    misspath.memory_fetches = draw(counts)
    misspath.memory_bytes_fetched = draw(counts)
    for structure in misspath.structures.values():
        structure.probes = draw(counts)
        structure.hits = draw(counts)
        structure.fills = draw(counts)
        structure.evictions = draw(counts)
    return misspath


@st.composite
def stats_objects(draw):
    stats = CacheStats()
    for slot in CacheStats.__slots__:
        if slot == "accesses_by_kind" or slot == "misses_by_kind":
            setattr(stats, slot, draw(kind_maps))
        elif slot == "transaction_words":
            setattr(stats, slot, draw(transaction_maps))
        elif slot == "misspath":
            setattr(stats, slot, draw(st.none() | misspath_objects()))
        else:
            setattr(stats, slot, draw(counts))
    return stats


def as_tuple(stats: CacheStats):
    return tuple(getattr(stats, slot) for slot in CacheStats.__slots__)


class TestRoundTripProperty:
    @given(stats_objects())
    def test_every_counter_survives_a_json_round_trip(self, stats):
        payload = json.loads(json.dumps(stats.to_dict()))
        restored = CacheStats.from_dict(payload)
        assert as_tuple(restored) == as_tuple(stats)

    @given(stats_objects())
    def test_derived_metrics_agree_after_round_trip(self, stats):
        restored = CacheStats.from_dict(stats.to_dict())
        assert restored.miss_ratio == stats.miss_ratio
        assert restored.traffic_ratio() == stats.traffic_ratio()
        assert (
            restored.mean_eviction_utilization
            == stats.mean_eviction_utilization
        )


class TestRealRunRoundTrip:
    def test_simulated_stats_round_trip(self, tiny_trace):
        stats = simulate(
            SubBlockCache(CacheGeometry(64, 16, 8)), tiny_trace
        )
        restored = CacheStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert as_tuple(restored) == as_tuple(stats)
        assert restored.transaction_words == stats.transaction_words
        assert restored.accesses_by_kind == stats.accesses_by_kind


class TestStrictness:
    def test_missing_key_rejected(self):
        payload = CacheStats().to_dict()
        payload.pop("evictions")
        with pytest.raises(ValueError, match="missing \\['evictions'\\]"):
            CacheStats.from_dict(payload)

    def test_unknown_key_rejected(self):
        payload = CacheStats().to_dict()
        payload["hit_streak"] = 7
        with pytest.raises(ValueError, match="unknown \\['hit_streak'\\]"):
            CacheStats.from_dict(payload)

    def test_unknown_access_kind_rejected(self):
        payload = CacheStats().to_dict()
        payload["accesses_by_kind"] = {"psychic": 1}
        with pytest.raises(ValueError, match="unknown access kind"):
            CacheStats.from_dict(payload)
