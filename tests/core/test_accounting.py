"""Edge-case tests for the shared stats-accounting kernels.

Both engines route every miss and eviction through
:mod:`repro.core.accounting`; these tests pin the corner cases the
differential suites rarely reach — empty fetch plans, blocks evicted
untouched, and the redundant-byte arithmetic of simple load-forward.
"""

from __future__ import annotations

from repro.core.accounting import account_eviction, account_fetch, plan_costs
from repro.core.fetch import DemandFetch, FetchPlan, LoadForwardFetch
from repro.core.stats import CacheStats


class TestZeroLengthPlans:
    def test_empty_plan_costs_nothing(self):
        words, fetched, redundant = plan_costs(
            FetchPlan(fetch_mask=0, transactions=()), 8, 2
        )
        assert words == ()
        assert fetched == 0
        assert redundant == 0

    def test_empty_plan_leaves_stats_untouched(self):
        stats = CacheStats()
        account_fetch(stats, FetchPlan(0, ()), 8, 2)
        assert stats.bytes_fetched == 0
        assert stats.redundant_bytes_fetched == 0
        assert stats.transaction_words == {}

    def test_optimized_load_forward_with_all_valid_tail_is_empty(self):
        # Target sub-block 2 of 4; sub-blocks 2 and 3 already valid.
        # The optimized policy has nothing left to fetch.
        plan = LoadForwardFetch(optimized=True).plan(
            needed_missing=0b0100,
            first_needed=2,
            valid_mask=0b1100,
            sub_blocks_per_block=4,
        )
        # (A real cache never asks when needed_missing is all valid;
        # the kernel must still be total over the empty plan.)
        assert plan.transactions == ()
        assert plan.fetch_mask == 0


class TestEvictionAccounting:
    def test_never_referenced_block(self):
        stats = CacheStats()
        account_eviction(
            stats,
            referenced_mask=0,
            dirty_mask=0,
            sub_blocks_per_block=4,
            sub_block_size=8,
        )
        assert stats.evictions == 1
        assert stats.evicted_sub_blocks_referenced == 0
        assert stats.evicted_sub_blocks_total == 4
        assert stats.mean_eviction_utilization == 0.0
        assert stats.writebacks == 0
        assert stats.bytes_written_back == 0

    def test_dirty_block_writes_back_only_dirty_sub_blocks(self):
        stats = CacheStats()
        account_eviction(
            stats,
            referenced_mask=0b1011,
            dirty_mask=0b0011,
            sub_blocks_per_block=4,
            sub_block_size=8,
        )
        assert stats.writebacks == 1
        assert stats.bytes_written_back == 2 * 8
        assert stats.evicted_sub_blocks_referenced == 3
        assert stats.mean_eviction_utilization == 0.75

    def test_utilization_accumulates_across_evictions(self):
        stats = CacheStats()
        account_eviction(stats, 0b1111, 0, 4, 8)  # fully used
        account_eviction(stats, 0b0000, 0, 4, 8)  # never referenced
        assert stats.evictions == 2
        assert stats.mean_eviction_utilization == 0.5


class TestLoadForwardRedundancy:
    def test_simple_scheme_counts_redundant_bytes(self):
        # Target sub-block 1 of 4; sub-block 2 is already valid.  The
        # paper's simple scheme fetches 1..3 as one transaction anyway
        # and re-loads the valid sub-block redundantly.
        plan = LoadForwardFetch(optimized=False).plan(
            needed_missing=0b0010,
            first_needed=1,
            valid_mask=0b0100,
            sub_blocks_per_block=4,
        )
        assert plan.transactions == (3,)
        assert plan.redundant_mask == 0b0100

        words, fetched, redundant = plan_costs(plan, 8, 2)
        assert words == (12,)  # 3 sub-blocks * 8 B / 2 B-per-word
        assert fetched == 3 * 8
        assert redundant == 1 * 8

        stats = CacheStats()
        account_fetch(stats, plan, 8, 2)
        assert stats.bytes_fetched == 24
        assert stats.redundant_bytes_fetched == 8
        assert stats.transaction_words == {12: 1}

    def test_optimized_scheme_splits_and_fetches_nothing_redundant(self):
        plan = LoadForwardFetch(optimized=True).plan(
            needed_missing=0b0010,
            first_needed=1,
            valid_mask=0b0100,
            sub_blocks_per_block=4,
        )
        assert plan.fetch_mask == 0b1010  # skips the valid sub-block
        assert plan.transactions == (1, 1)
        assert plan.redundant_mask == 0

        stats = CacheStats()
        account_fetch(stats, plan, 8, 2)
        assert stats.redundant_bytes_fetched == 0
        assert stats.transaction_words == {4: 2}

    def test_demand_fetch_never_redundant(self):
        plan = DemandFetch().plan(
            needed_missing=0b1001,
            first_needed=0,
            valid_mask=0b0110,
            sub_blocks_per_block=4,
        )
        assert plan.redundant_mask == 0
        assert plan.transactions == (1, 1)
        words, fetched, redundant = plan_costs(plan, 4, 2)
        assert words == (2, 2)
        assert fetched == 8
        assert redundant == 0
