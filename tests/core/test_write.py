"""Write-policy extension tests."""

import pytest

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.write import WritePolicy, make_write_policy
from repro.errors import ConfigurationError
from repro.trace.record import AccessType

WRITE = AccessType.WRITE
READ = AccessType.READ


def make_cache(policy: WritePolicy) -> SubBlockCache:
    return SubBlockCache(CacheGeometry(64, 16, 8), write_policy=policy)


class TestPolicyEnum:
    def test_allocates(self):
        assert not WritePolicy.WRITE_THROUGH_NO_ALLOCATE.allocates
        assert WritePolicy.WRITE_THROUGH_ALLOCATE.allocates
        assert WritePolicy.WRITE_BACK.allocates

    def test_writes_through(self):
        assert WritePolicy.WRITE_THROUGH_NO_ALLOCATE.writes_through
        assert WritePolicy.WRITE_THROUGH_ALLOCATE.writes_through
        assert not WritePolicy.WRITE_BACK.writes_through

    def test_factory(self):
        assert make_write_policy("write-back") is WritePolicy.WRITE_BACK
        assert (
            make_write_policy("WRITE_THROUGH_ALLOCATE")
            is WritePolicy.WRITE_THROUGH_ALLOCATE
        )

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_write_policy("write-sometimes")


class TestWriteThroughNoAllocate:
    def test_write_miss_does_not_allocate(self):
        cache = make_cache(WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
        cache.access(0x100, WRITE)
        assert cache.contents() == {}
        assert cache.stats.bytes_fetched == 0

    def test_write_traffic_is_written_bytes(self):
        # Only the written word crosses the bus, not a whole sub-block.
        cache = make_cache(WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
        cache.access(0x100, WRITE)          # one 2-byte word
        cache.access(0x200, WRITE, size=4)
        assert cache.stats.bytes_written_through == 2 + 4

    def test_write_hit_stays_resident(self):
        cache = make_cache(WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
        cache.access(0x100, READ)
        cache.access(0x100, WRITE)
        assert cache.access(0x100, READ) is True

    def test_traffic_ratio_can_include_writes(self):
        cache = make_cache(WritePolicy.WRITE_THROUGH_NO_ALLOCATE)
        cache.access(0x100, WRITE)
        assert cache.stats.traffic_ratio() == 0.0
        assert cache.stats.traffic_ratio(include_writes=True) > 0.0


class TestWriteThroughAllocate:
    def test_write_miss_allocates_and_fetches(self):
        cache = make_cache(WritePolicy.WRITE_THROUGH_ALLOCATE)
        cache.access(0x100, WRITE)
        assert len(cache.contents()) == 1
        assert cache.stats.bytes_fetched == 8   # fetch-on-write, one sub-block
        assert cache.stats.bytes_written_through == 2  # the written word

    def test_subsequent_read_hits(self):
        cache = make_cache(WritePolicy.WRITE_THROUGH_ALLOCATE)
        cache.access(0x100, WRITE)
        assert cache.access(0x100, READ) is True


class TestWriteBack:
    def test_write_dirties_without_immediate_traffic(self):
        cache = make_cache(WritePolicy.WRITE_BACK)
        cache.access(0x100, WRITE)
        assert cache.stats.bytes_written_through == 0
        assert cache.stats.bytes_written_back == 0

    def test_eviction_writes_back_dirty_sub_blocks(self):
        cache = SubBlockCache(
            CacheGeometry(32, 16, 8, associativity=2),
            write_policy=WritePolicy.WRITE_BACK,
        )
        cache.access(0x000, WRITE)
        cache.access(0x010, READ)
        cache.access(0x020, READ)  # evicts the dirty block (LRU)
        assert cache.stats.writebacks == 1
        assert cache.stats.bytes_written_back == 8

    def test_clean_eviction_writes_nothing(self):
        cache = SubBlockCache(
            CacheGeometry(32, 16, 8, associativity=2),
            write_policy=WritePolicy.WRITE_BACK,
        )
        cache.access(0x000, READ)
        cache.access(0x010, READ)
        cache.access(0x020, READ)
        assert cache.stats.writebacks == 0

    def test_flush_writes_back_dirty_data(self):
        cache = make_cache(WritePolicy.WRITE_BACK)
        cache.access(0x100, WRITE)
        cache.access(0x108, WRITE)
        cache.flush()
        assert cache.stats.writebacks == 1
        assert cache.stats.bytes_written_back == 16

    def test_read_only_metrics_unaffected_by_writes(self):
        # The paper filters writes; write policy must not leak into the
        # fetch-side traffic ratio.
        wb = make_cache(WritePolicy.WRITE_BACK)
        wt = make_cache(WritePolicy.WRITE_THROUGH_ALLOCATE)
        for cache in (wb, wt):
            cache.access(0x100, WRITE)
            cache.access(0x108, READ)
        assert wb.stats.traffic_ratio() == wt.stats.traffic_ratio()
