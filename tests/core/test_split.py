"""Split instruction/data cache tests."""

import pytest

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.split import SplitCache
from repro.trace.record import AccessType


def make_split() -> SplitCache:
    return SplitCache(
        icache=SubBlockCache(CacheGeometry(512, 16, 8)),
        dcache=SubBlockCache(CacheGeometry(512, 16, 8)),
    )


class TestRouting:
    def test_ifetch_goes_to_icache(self):
        split = make_split()
        split.access(0x100, AccessType.IFETCH)
        assert split.icache.stats.accesses == 1
        assert split.dcache.stats.accesses == 0

    def test_reads_and_writes_go_to_dcache(self):
        split = make_split()
        split.access(0x100, AccessType.READ)
        split.access(0x200, AccessType.WRITE)
        assert split.dcache.stats.accesses == 2
        assert split.icache.stats.accesses == 0

    def test_no_cross_interference(self):
        split = make_split()
        split.access(0x100, AccessType.IFETCH)
        # Data access to the same address misses independently.
        assert split.access(0x100, AccessType.READ) is False


class TestCombinedStats:
    def test_aggregation(self):
        split = make_split()
        split.access(0x100, AccessType.IFETCH)
        split.access(0x100, AccessType.IFETCH)
        split.access(0x200, AccessType.READ)
        stats = split.stats
        assert stats.accesses == 3
        assert stats.misses == 2
        assert stats.miss_ratio == pytest.approx(2 / 3)

    def test_traffic_aggregation(self):
        split = make_split()
        split.access(0x100, AccessType.IFETCH)
        split.access(0x200, AccessType.READ)
        assert split.stats.bytes_fetched == 16
        assert split.stats.traffic_ratio() == pytest.approx(16 / 4)

    def test_reset_clears_both_sides(self):
        split = make_split()
        split.access(0x100, AccessType.IFETCH)
        split.access(0x200, AccessType.READ)
        split.stats.reset()
        assert split.stats.accesses == 0
        assert split.icache.stats.accesses == 0

    def test_snapshot_keys(self):
        split = make_split()
        split.access(0x100, AccessType.READ)
        snapshot = split.stats.snapshot()
        assert set(snapshot) == {"accesses", "misses", "miss_ratio", "traffic_ratio"}


class TestSizes:
    def test_net_and_gross_sizes_sum(self):
        split = make_split()
        assert split.net_size == 1024
        assert split.gross_size == 2 * split.icache.geometry.gross_size

    def test_is_full_requires_both_sides(self, z8000_grep_trace):
        split = make_split()
        for access in z8000_grep_trace:
            split.access(access.addr, access.kind, access.size)
            if split.is_full:
                break
        assert split.is_full == (split.icache.is_full and split.dcache.is_full)

    def test_flush_empties_both(self):
        split = make_split()
        split.access(0x100, AccessType.IFETCH)
        split.access(0x200, AccessType.READ)
        split.flush()
        assert split.icache.contents() == {}
        assert split.dcache.contents() == {}
