"""Geometry and cost-model tests, validated against the paper."""

import pytest

from repro.core.config import CacheGeometry, is_power_of_two, log2_int
from repro.errors import ConfigurationError


class TestPowerOfTwoHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-2)
        assert not is_power_of_two(24)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(1024) == 10

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_int(12)


class TestValidation:
    def test_sub_block_larger_than_block_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(64, 8, 16)

    def test_block_larger_than_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(64, 128, 8)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(100, 16, 8)

    def test_bad_associativity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(64, 16, 8, associativity=0)
        with pytest.raises(ConfigurationError):
            CacheGeometry(64, 16, 8, associativity=3)

    def test_bad_address_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(64, 16, 8, address_bits=0)


class TestDerivedShape:
    def test_basic_counts(self):
        geometry = CacheGeometry(1024, 16, 8, associativity=4)
        assert geometry.num_blocks == 64
        assert geometry.ways == 4
        assert geometry.num_sets == 16
        assert geometry.sub_blocks_per_block == 2

    def test_associativity_clamps_to_block_count(self):
        # A 64-byte cache with 16-byte blocks holds only 4 blocks; the
        # paper still calls it 4-way (it is fully associative).
        geometry = CacheGeometry(64, 32, 8, associativity=4)
        assert geometry.num_blocks == 2
        assert geometry.ways == 2
        assert geometry.num_sets == 1

    def test_conventional_cache_has_one_sub_block(self):
        geometry = CacheGeometry(256, 16, 16)
        assert geometry.sub_blocks_per_block == 1


class TestPaperGrossSizes:
    """Every gross size printed in Table 7 must reproduce exactly."""

    TABLE7_GROSS = {
        (64, 16, 8): 79,
        (64, 16, 4): 80,
        (64, 16, 2): 82,
        (64, 8, 8): 94,
        (64, 8, 4): 95,
        (64, 8, 2): 97,
        (64, 4, 4): 126,
        (64, 4, 2): 128,
        (64, 2, 2): 192,
        (256, 32, 32): 284,
        (256, 32, 16): 285,
        (256, 32, 8): 287,
        (256, 32, 4): 291,
        (256, 32, 2): 299,
        (256, 16, 16): 314,
        (256, 16, 8): 316,
        (256, 16, 4): 320,
        (256, 16, 2): 328,
        (256, 8, 8): 376,
        (256, 8, 4): 380,
        (256, 8, 2): 388,
        (256, 4, 4): 504,
        (256, 4, 2): 512,
        (256, 2, 2): 768,
        (1024, 64, 16): 1084,
        (1024, 64, 8): 1092,
        (1024, 64, 4): 1108,
        (1024, 32, 32): 1136,
        (1024, 32, 16): 1140,
        (1024, 32, 8): 1148,
        (1024, 32, 4): 1164,
        (1024, 32, 2): 1196,
        (1024, 16, 16): 1256,
        (1024, 16, 8): 1264,
        (1024, 16, 4): 1280,
        (1024, 16, 2): 1312,
        (1024, 8, 8): 1504,
        (1024, 8, 4): 1520,
        (1024, 8, 2): 1552,
        (1024, 4, 4): 2016,
        (1024, 4, 2): 2048,
        (1024, 2, 2): 3072,
    }

    @pytest.mark.parametrize("shape,expected", sorted(TABLE7_GROSS.items()))
    def test_gross_size_matches_paper(self, shape, expected):
        net, block, sub = shape
        assert CacheGeometry(net, block, sub).gross_size == expected

    def test_minimum_cache_is_190_bytes(self):
        # Section 2.2: 16 blocks * [29 tag + 2 valid + 64 data] / 8.
        geometry = CacheGeometry(128, 8, 4, associativity=2)
        assert geometry.gross_size == 190

    def test_vax_minimum_cache_is_95_bytes(self):
        # Section 5: the 8,4 64-byte cache "requires only 95 bytes".
        assert CacheGeometry(64, 8, 4).gross_size == 95


class TestCostModelStructure:
    def test_doubling_block_size_halves_tag_area(self):
        # Section 4.2.1: the (2,2) 512-byte cache occupies 50% more
        # area than the (4,2) one.
        small_blocks = CacheGeometry(512, 2, 2)
        large_blocks = CacheGeometry(512, 4, 2)
        assert small_blocks.gross_size == 1536
        assert large_blocks.gross_size == 1024

    def test_doubling_sub_block_size_barely_changes_size(self):
        # Section 4.2.1: going from a 32,4 to a 32,8 cache decreases
        # the total size by only 1.4 percent.
        with_small_subs = CacheGeometry(1024, 32, 4)
        with_large_subs = CacheGeometry(1024, 32, 8)
        shrink = 1 - with_large_subs.gross_size / with_small_subs.gross_size
        assert 0.005 < shrink < 0.02

    def test_tag_overhead_decreases_with_block_size(self):
        overheads = [
            CacheGeometry(1024, block, 2).tag_overhead
            for block in (2, 4, 8, 16, 32)
        ]
        assert overheads == sorted(overheads, reverse=True)

    def test_gross_bits_consistent_with_size(self):
        geometry = CacheGeometry(256, 16, 8)
        assert geometry.gross_size == geometry.gross_bits / 8


class TestAddressingHelpers:
    def test_round_trip_decomposition(self):
        geometry = CacheGeometry(1024, 16, 8)
        addr = 0xBEEF
        block_addr = geometry.block_address(addr)
        assert block_addr == addr // 16
        assert geometry.set_index(addr) == block_addr % geometry.num_sets
        assert geometry.tag(addr) == block_addr // geometry.num_sets
        assert geometry.sub_block_index(addr) == (addr % 16) // 8

    def test_label(self):
        assert CacheGeometry(64, 16, 8).label == "16,8"

    def test_str_mentions_sizes(self):
        text = str(CacheGeometry(64, 16, 8))
        assert "64B" in text and "16,8" in text and "79" in text
