"""MissPathStats serialization: lossless round-trip + conservation.

Mirrors the ``CacheStats`` suite (``test_stats_serialization.py``):
``to_dict``/``from_dict`` is the form chain counters take through
checkpoint cell records, the service cache, and JSON responses, so it
must be exactly invertible for *any* counter state — and serialization
must never manufacture or destroy a conservation-law violation, since
the checked engine's verdict may be recomputed on either side of a
storage boundary.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.conservation import check_misspath_conservation
from repro.core.misspath import MissPathStats, StructureStats
from repro.core.sim import simulate

counts = st.integers(min_value=0, max_value=10 ** 12)

chains = st.sets(
    st.sampled_from(["victim", "miss", "stream", "l2"])
).map(
    lambda names: tuple(
        name
        for name in ("victim", "miss", "stream", "l2")
        if name in names
    )
)


@st.composite
def arbitrary_stats(draw):
    """Any counter state at all — round-tripping must not care."""
    stats = MissPathStats(draw(chains))
    stats.demand_misses = draw(counts)
    stats.memory_fetches = draw(counts)
    stats.memory_bytes_fetched = draw(counts)
    for structure in stats.structures.values():
        structure.probes = draw(counts)
        structure.hits = draw(counts)
        structure.fills = draw(counts)
        structure.evictions = draw(counts)
    return stats


@st.composite
def law_abiding_stats(draw):
    """States satisfying the chain conservation laws by construction.

    Probes cascade front to back (each structure sees exactly the
    misses everything before it failed to service), hits never exceed
    probes, and memory is charged for exactly the misses nothing
    serviced.
    """
    stats = MissPathStats(draw(chains))
    remaining = draw(st.integers(min_value=0, max_value=10 ** 9))
    stats.demand_misses = remaining
    for structure in stats.structures.values():
        structure.probes = remaining
        structure.hits = draw(st.integers(min_value=0, max_value=remaining))
        structure.fills = draw(counts)
        structure.evictions = draw(counts)
        remaining -= structure.hits
    stats.memory_fetches = remaining
    stats.memory_bytes_fetched = (
        draw(st.integers(min_value=1, max_value=10 ** 12))
        if remaining
        else 0
    )
    return stats


class TestRoundTripProperty:
    @given(arbitrary_stats())
    def test_every_counter_survives_a_json_round_trip(self, stats):
        payload = json.loads(json.dumps(stats.to_dict()))
        restored = MissPathStats.from_dict(payload)
        assert restored == stats
        assert restored.chain == stats.chain
        assert restored.to_dict() == stats.to_dict()

    @given(arbitrary_stats())
    def test_derived_metrics_agree_after_round_trip(self, stats):
        restored = MissPathStats.from_dict(stats.to_dict())
        assert restored.structure_hits == stats.structure_hits
        assert restored.l2_misses == stats.l2_misses
        assert restored.hits_summary() == stats.hits_summary()


class TestConservationProperty:
    @given(law_abiding_stats())
    def test_law_abiding_states_pass_and_stay_clean(self, stats):
        assert check_misspath_conservation(stats) == []
        restored = MissPathStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert check_misspath_conservation(restored) == []

    @given(arbitrary_stats())
    def test_verdict_is_serialization_invariant(self, stats):
        restored = MissPathStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert check_misspath_conservation(restored) == (
            check_misspath_conservation(stats)
        )


class TestRealRunRoundTrip:
    def test_chained_run_round_trips_with_l2_stats(self, tiny_trace):
        cache = SubBlockCache(
            CacheGeometry(64, 16, 8),
            miss_path={
                "victim_entries": 2,
                "miss_entries": 2,
                "stream_buffers": 2,
                "l2_net_size": 256,
            },
        )
        stats = simulate(cache, tiny_trace)
        misspath = stats.misspath
        assert misspath is not None
        assert misspath.l2_stats is not None  # the L2 leg is exercised
        assert check_misspath_conservation(misspath, l1_stats=stats) == []
        restored = MissPathStats.from_dict(
            json.loads(json.dumps(misspath.to_dict()))
        )
        assert restored == misspath
        assert restored.l2_stats.to_dict() == misspath.l2_stats.to_dict()
        assert check_misspath_conservation(restored, l1_stats=stats) == []


class TestStrictness:
    def test_missing_key_rejected(self):
        payload = MissPathStats(("victim",)).to_dict()
        payload.pop("demand_misses")
        with pytest.raises(ValueError, match="missing \\['demand_misses'\\]"):
            MissPathStats.from_dict(payload)

    def test_unknown_key_rejected(self):
        payload = MissPathStats(()).to_dict()
        payload["hit_streak"] = 7
        with pytest.raises(ValueError, match="unknown \\['hit_streak'\\]"):
            MissPathStats.from_dict(payload)

    def test_chain_structure_mismatch_rejected(self):
        payload = MissPathStats(("victim", "l2")).to_dict()
        payload["structures"] = {"victim": StructureStats().to_dict()}
        with pytest.raises(ValueError, match="do not match"):
            MissPathStats.from_dict(payload)

    def test_malformed_structure_entry_rejected(self):
        payload = MissPathStats(("stream",)).to_dict()
        payload["structures"]["stream"] = {"probes": 1}
        with pytest.raises(ValueError, match="not a StructureStats dump"):
            MissPathStats.from_dict(payload)
