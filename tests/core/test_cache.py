"""Behavioural unit tests for the sub-block cache."""

import pytest

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.fetch import LoadForwardFetch
from repro.core.replacement import FIFOReplacement
from repro.errors import ConfigurationError
from repro.trace.record import AccessType


def make_cache(net=64, block=16, sub=8, **kwargs) -> SubBlockCache:
    return SubBlockCache(CacheGeometry(net, block, sub), **kwargs)


class TestConstruction:
    def test_word_size_cannot_exceed_sub_block(self):
        with pytest.raises(ConfigurationError):
            make_cache(sub=2, word_size=4)

    def test_bad_word_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cache(word_size=0)

    def test_repr_mentions_policies(self):
        assert "lru" in repr(make_cache())
        assert "demand" in repr(make_cache())


class TestBasicHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_sub_block_hits(self):
        cache = make_cache()  # 8-byte sub-blocks
        cache.access(0x100)
        assert cache.access(0x106) is True

    def test_other_sub_block_misses(self):
        cache = make_cache()
        cache.access(0x100)
        assert cache.access(0x108) is False
        assert cache.stats.sub_block_misses == 1
        assert cache.stats.block_misses == 1

    def test_conventional_cache_has_no_sub_block_misses(self):
        cache = make_cache(block=8, sub=8)
        for addr in range(0, 256, 2):
            cache.access(addr)
        assert cache.stats.sub_block_misses == 0

    def test_miss_counts_once_per_access(self):
        cache = make_cache(block=8, sub=2)
        cache.access(0x100, size=8)  # touches 4 missing sub-blocks
        assert cache.stats.misses == 1
        assert cache.stats.accesses == 1

    def test_access_spanning_two_blocks(self):
        cache = make_cache(net=64, block=8, sub=2)
        cache.access(0x106, size=4)  # bytes 0x106..0x109 span blocks
        assert cache.stats.misses == 1
        resident = cache.contents()
        assert 0x106 // 8 in resident
        assert 0x108 // 8 in resident


class TestTrafficAccounting:
    def test_demand_fetch_moves_one_sub_block(self):
        cache = make_cache()
        cache.access(0x100)
        assert cache.stats.bytes_fetched == 8
        assert cache.stats.transaction_words == {4: 1}

    def test_bytes_accessed_accumulates(self):
        cache = make_cache()
        cache.access(0x100)
        cache.access(0x100, size=4)
        assert cache.stats.bytes_accessed == 2 + 4

    def test_traffic_ratio_below_one_with_reuse(self):
        cache = make_cache()
        for _ in range(10):
            cache.access(0x100)
        assert cache.stats.traffic_ratio() == pytest.approx(8 / 20)

    def test_one_word_sub_blocks_never_amplify_traffic(self):
        # Section 4.2.1: caches with a sub-block size of one word
        # always have traffic ratios <= 1.
        cache = make_cache(net=32, block=4, sub=2)
        for addr in range(0, 4096, 2):
            cache.access(addr)
        assert cache.stats.traffic_ratio() <= 1.0

    def test_large_sub_blocks_can_amplify_traffic(self):
        cache = make_cache(net=32, block=16, sub=16)
        for addr in range(0, 4096, 32):  # one word per sub-block
            cache.access(addr)
        assert cache.stats.traffic_ratio() > 1.0


class TestReplacementIntegration:
    def test_lru_eviction_order(self):
        cache = make_cache(net=32, block=16, sub=16)  # 2 blocks, 1 set
        cache.access(0x000)
        cache.access(0x010)
        cache.access(0x000)  # refresh block 0
        cache.access(0x020)  # evicts block 1 (LRU)
        resident = set(cache.contents())
        assert resident == {0x000 // 16, 0x020 // 16}

    def test_fifo_eviction_order(self):
        cache = make_cache(
            net=32, block=16, sub=16, replacement=FIFOReplacement()
        )
        cache.access(0x000)
        cache.access(0x010)
        cache.access(0x000)  # hit does not refresh under FIFO
        cache.access(0x020)  # evicts block 0 (first in)
        assert set(cache.contents()) == {0x010 // 16, 0x020 // 16}

    def test_eviction_clears_sub_block_validity(self):
        cache = make_cache(net=32, block=16, sub=8)
        cache.access(0x000)
        cache.access(0x008)
        cache.access(0x010)
        cache.access(0x020)  # evicts block 0
        assert cache.access(0x000) is False  # must re-fetch

    def test_never_more_resident_blocks_than_frames(self, random_trace):
        cache = make_cache(net=64, block=8, sub=4)
        for access in random_trace:
            cache.access(access.addr, access.kind, access.size)
        assert len(cache.contents()) <= cache.geometry.num_blocks


class TestSetMapping:
    def test_conflicting_blocks_share_a_set(self):
        # 4 sets, 4-way: 5 blocks mapping to set 0 overflow it.
        cache = SubBlockCache(CacheGeometry(256, 16, 16, associativity=4))
        num_sets = cache.geometry.num_sets
        for i in range(5):
            cache.access(i * 16 * num_sets)
        assert len(cache.contents()) == 4
        assert cache.stats.evictions == 1

    def test_blocks_in_distinct_sets_do_not_conflict(self):
        cache = SubBlockCache(CacheGeometry(256, 16, 16, associativity=4))
        for i in range(cache.geometry.num_sets):
            cache.access(i * 16)
        assert cache.stats.evictions == 0


class TestLoadForwardIntegration:
    def test_forward_fetch_validates_rest_of_block(self):
        cache = make_cache(net=64, block=16, sub=2, fetch=LoadForwardFetch())
        cache.access(0x104)  # sub-block 2 of block 0x100
        assert cache.access(0x106) is True  # forward part loaded
        assert cache.access(0x10E) is True
        assert cache.access(0x100) is False  # backward part was not

    def test_redundant_traffic_recorded(self):
        cache = make_cache(net=64, block=16, sub=2, fetch=LoadForwardFetch())
        cache.access(0x108)  # loads sub-blocks 4..7
        cache.access(0x100)  # loads 0..7, re-fetching 4..7 redundantly
        assert cache.stats.redundant_bytes_fetched == 8

    def test_optimized_scheme_avoids_redundant_traffic(self):
        cache = make_cache(
            net=64, block=16, sub=2, fetch=LoadForwardFetch(optimized=True)
        )
        cache.access(0x108)
        cache.access(0x100)
        assert cache.stats.redundant_bytes_fetched == 0
        assert cache.stats.bytes_fetched == 8 + 8


class TestKindAccounting:
    def test_per_kind_counters(self):
        cache = make_cache()
        cache.access(0x100, AccessType.IFETCH)
        cache.access(0x100, AccessType.READ)
        cache.access(0x200, AccessType.READ)
        assert cache.stats.accesses_by_kind[AccessType.IFETCH] == 1
        assert cache.stats.accesses_by_kind[AccessType.READ] == 2
        assert cache.stats.misses_by_kind[AccessType.IFETCH] == 1
        assert cache.stats.misses_by_kind[AccessType.READ] == 1
        assert cache.stats.miss_ratio_of(AccessType.READ) == 0.5


class TestFlushAndUtilization:
    def test_flush_empties_cache(self):
        cache = make_cache()
        cache.access(0x100)
        cache.flush()
        assert cache.contents() == {}
        assert cache.access(0x100) is False

    def test_utilization_tracks_referenced_sub_blocks(self):
        cache = make_cache(net=32, block=16, sub=2)  # 8 sub-blocks/block
        cache.access(0x100)  # touch 1 of 8
        cache.flush()
        assert cache.stats.mean_eviction_utilization == pytest.approx(1 / 8)

    def test_full_utilization_for_fully_used_block(self):
        cache = make_cache(net=32, block=16, sub=2)
        for offset in range(0, 16, 2):
            cache.access(0x100 + offset)
        cache.flush()
        assert cache.stats.mean_eviction_utilization == pytest.approx(1.0)


class TestPrefetch:
    def test_prefetch_loads_without_counting_access(self):
        cache = make_cache()
        assert cache.prefetch(0x100) is True
        assert cache.stats.accesses == 0
        assert cache.stats.misses == 0
        assert cache.stats.prefetches == 1
        assert cache.access(0x100) is True

    def test_prefetch_of_resident_sub_block_is_free(self):
        cache = make_cache()
        cache.access(0x100)
        fetched_before = cache.stats.bytes_fetched
        assert cache.prefetch(0x100) is False
        assert cache.stats.bytes_fetched == fetched_before

    def test_prefetch_traffic_counted(self):
        cache = make_cache()
        cache.prefetch(0x100)
        assert cache.stats.bytes_fetched == 8

    def test_prefetch_can_evict(self):
        cache = make_cache(net=32, block=16, sub=16)
        cache.access(0x000)
        cache.access(0x010)
        cache.prefetch(0x020)
        assert cache.stats.evictions == 1


class TestIsFull:
    def test_not_full_until_every_frame_used(self):
        cache = make_cache(net=32, block=16, sub=16)
        assert not cache.is_full
        cache.access(0x000)
        assert not cache.is_full
        cache.access(0x010)
        assert cache.is_full

    def test_stays_full_after_evictions(self):
        cache = make_cache(net=32, block=16, sub=16)
        for i in range(10):
            cache.access(i * 16)
        assert cache.is_full
