"""Sector-cache (360/85) tests."""

import pytest

from repro.core.sector import (
    model85_cache,
    sector_cache,
    set_associative_equivalent,
)


class TestModel85Geometry:
    def test_shape(self):
        cache = model85_cache()
        geometry = cache.geometry
        assert geometry.net_size == 16 * 1024
        assert geometry.block_size == 1024
        assert geometry.sub_block_size == 64
        assert geometry.sub_blocks_per_block == 16

    def test_fully_associative(self):
        geometry = model85_cache().geometry
        assert geometry.num_sets == 1
        assert geometry.ways == 16


class TestSectorBehaviour:
    def test_sector_miss_loads_only_target_sub_block(self):
        cache = model85_cache()
        cache.access(0)
        assert cache.stats.bytes_fetched == 64
        assert cache.access(32) is True  # same 64-byte sub-block
        assert cache.access(64) is False  # same sector, next sub-block

    def test_sixteen_sectors_thrash_on_seventeen_regions(self):
        cache = model85_cache()
        # Touch 17 distinct 1024-byte regions round-robin: every access
        # misses because only 16 tags exist.
        for _repeat in range(3):
            for region in range(17):
                cache.access(region * 1024)
        assert cache.stats.hits == 0

    def test_set_associative_equivalent_handles_the_same_pattern(self):
        cache = set_associative_equivalent(4)
        # One hot word in each of 17 separate 1024-byte regions, offset
        # so the 64-byte blocks land in distinct sets (the scattered-
        # hot-data pattern that ruins the sector cache).
        for _repeat in range(3):
            for region in range(17):
                cache.access(region * 1024 + region * 64)
        # After the cold pass everything hits: miss ratio 17/51 versus
        # the sector cache's 100%.
        assert cache.stats.misses == 17

    def test_custom_sector_cache(self):
        cache = sector_cache(sectors=4, sector_size=256, sub_block_size=32)
        assert cache.geometry.num_blocks == 4
        assert cache.geometry.ways == 4


class TestEquivalentGeometry:
    @pytest.mark.parametrize("ways", [4, 8, 16])
    def test_same_net_size(self, ways):
        cache = set_associative_equivalent(ways)
        assert cache.geometry.net_size == 16 * 1024
        assert cache.geometry.ways == ways
        assert cache.geometry.block_size == 64
        assert cache.geometry.sub_block_size == 64

    def test_sector_cache_has_less_tag_overhead(self):
        # The whole point of the 360/85 design: 16 tags instead of 256.
        sector = model85_cache().geometry
        modern = set_associative_equivalent(4).geometry
        assert sector.gross_size < modern.gross_size
