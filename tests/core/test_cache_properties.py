"""Property-based tests for the cache core (hypothesis).

The centrepiece is a differential test against an independent,
deliberately naive reference model of a sub-block LRU cache: for any
random geometry and access sequence, the production simulator must
produce the identical hit/miss sequence and fetch-byte count.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.fetch import LoadForwardFetch


class ReferenceSubBlockCache:
    """Straight-line reference model: sets of (tag, valid-set) entries,
    LRU order kept as an explicit list, demand fetch only."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # Per set: list of [tag, set-of-valid-sub-indices], MRU first.
        self.sets: List[List[List]] = [[] for _ in range(geometry.num_sets)]
        self.bytes_fetched = 0

    def access(self, addr: int, size: int) -> bool:
        geometry = self.geometry
        hit = True
        for byte in range(addr, addr + size):
            block_addr = byte // geometry.block_size
            sub_index = (byte % geometry.block_size) // geometry.sub_block_size
            if not self._touch(block_addr, sub_index):
                hit = False
        return hit

    def _touch(self, block_addr: int, sub_index: int) -> bool:
        geometry = self.geometry
        set_index = block_addr % geometry.num_sets
        tag = block_addr // geometry.num_sets
        entries = self.sets[set_index]
        for position, entry in enumerate(entries):
            if entry[0] == tag:
                entries.insert(0, entries.pop(position))
                if sub_index in entry[1]:
                    return True
                entry[1].add(sub_index)
                self.bytes_fetched += geometry.sub_block_size
                return False
        if len(entries) == geometry.ways:
            entries.pop()
        entries.insert(0, [tag, {sub_index}])
        self.bytes_fetched += geometry.sub_block_size
        return False


geometries = st.builds(
    lambda net_exp, block_exp, sub_exp, assoc_exp: CacheGeometry(
        2 ** net_exp,
        2 ** min(block_exp, net_exp),
        2 ** min(sub_exp, block_exp, net_exp),
        associativity=2 ** assoc_exp,
    ),
    net_exp=st.integers(5, 10),
    block_exp=st.integers(1, 6),
    sub_exp=st.integers(1, 6),
    assoc_exp=st.integers(0, 3),
)

word_accesses = st.lists(
    st.tuples(st.integers(0, 2047), st.sampled_from([1, 2, 4])),
    min_size=1,
    max_size=300,
)


class TestDifferentialAgainstReference:
    @given(geometry=geometries, accesses=word_accesses)
    @settings(max_examples=150, deadline=None)
    def test_hit_miss_sequence_matches_reference(self, geometry, accesses):
        cache = SubBlockCache(geometry, word_size=1)
        reference = ReferenceSubBlockCache(geometry)
        for addr, size in accesses:
            expected = reference.access(addr, size)
            actual = cache.access(addr, size=size)
            assert actual == expected, (geometry, addr, size)
        assert cache.stats.bytes_fetched == reference.bytes_fetched


class TestStatsInvariants:
    @given(geometry=geometries, accesses=word_accesses)
    @settings(max_examples=60, deadline=None)
    def test_counter_consistency(self, geometry, accesses):
        cache = SubBlockCache(geometry, word_size=1)
        for addr, size in accesses:
            cache.access(addr, size=size)
        stats = cache.stats
        assert stats.accesses == len(accesses)
        assert 0 <= stats.misses <= stats.accesses
        assert 0.0 <= stats.miss_ratio <= 1.0
        assert stats.bytes_accessed == sum(size for _, size in accesses)
        # Fetch traffic equals the recorded transactions exactly.
        transaction_bytes = sum(
            words * cache.word_size * count
            for words, count in stats.transaction_words.items()
        )
        assert stats.bytes_fetched == transaction_bytes

    @given(geometry=geometries, accesses=word_accesses)
    @settings(max_examples=60, deadline=None)
    def test_resident_state_invariants(self, geometry, accesses):
        cache = SubBlockCache(geometry, word_size=1)
        for addr, size in accesses:
            cache.access(addr, size=size)
        contents = cache.contents()
        assert len(contents) <= geometry.num_blocks
        full_mask = (1 << geometry.sub_blocks_per_block) - 1
        touched_blocks = {
            byte // geometry.block_size
            for addr, size in accesses
            for byte in range(addr, addr + size)
        }
        for block_addr, valid in contents.items():
            assert 0 < valid <= full_mask
            assert block_addr in touched_blocks

    @given(accesses=word_accesses)
    @settings(max_examples=40, deadline=None)
    def test_second_touch_always_hits(self, accesses):
        cache = SubBlockCache(CacheGeometry(64, 16, 8), word_size=1)
        for addr, size in accesses:
            cache.access(addr, size=size)
            assert cache.access(addr, size=size) is True

    @given(geometry=geometries, accesses=word_accesses)
    @settings(max_examples=40, deadline=None)
    def test_demand_fetch_is_never_redundant(self, geometry, accesses):
        cache = SubBlockCache(geometry, word_size=1)
        for addr, size in accesses:
            cache.access(addr, size=size)
        assert cache.stats.redundant_bytes_fetched == 0

    @given(geometry=geometries, accesses=word_accesses)
    @settings(max_examples=40, deadline=None)
    def test_conventional_cache_never_sub_block_misses(self, geometry, accesses):
        conventional = CacheGeometry(
            geometry.net_size,
            geometry.block_size,
            geometry.block_size,
            associativity=geometry.associativity,
        )
        cache = SubBlockCache(conventional, word_size=1)
        for addr, size in accesses:
            cache.access(addr, size=size)
        assert cache.stats.sub_block_misses == 0


class TestLoadForwardProperties:
    @given(accesses=word_accesses)
    @settings(max_examples=40, deadline=None)
    def test_load_forward_never_misses_more_than_demand(self, accesses):
        geometry = CacheGeometry(128, 16, 2)
        demand = SubBlockCache(geometry, word_size=1)
        forward = SubBlockCache(
            geometry, fetch=LoadForwardFetch(), word_size=1
        )
        for addr, size in accesses:
            demand.access(addr, size=size)
            forward.access(addr, size=size)
        assert forward.stats.misses <= demand.stats.misses

    @given(accesses=word_accesses)
    @settings(max_examples=40, deadline=None)
    def test_optimized_never_fetches_more_than_redundant(self, accesses):
        geometry = CacheGeometry(128, 16, 2)
        redundant = SubBlockCache(
            geometry, fetch=LoadForwardFetch(optimized=False), word_size=1
        )
        optimized = SubBlockCache(
            geometry, fetch=LoadForwardFetch(optimized=True), word_size=1
        )
        for addr, size in accesses:
            redundant.access(addr, size=size)
            optimized.access(addr, size=size)
        assert optimized.stats.bytes_fetched <= redundant.stats.bytes_fetched
        # Both schemes validate the same sub-blocks, so they agree on
        # hits and misses exactly.
        assert optimized.stats.misses == redundant.stats.misses


class TestFlushProperties:
    @given(geometry=geometries, accesses=word_accesses)
    @settings(max_examples=40, deadline=None)
    def test_flush_accounts_every_resident_block(self, geometry, accesses):
        cache = SubBlockCache(geometry, word_size=1)
        for addr, size in accesses:
            cache.access(addr, size=size)
        resident = len(cache.contents())
        evictions_before = cache.stats.evictions
        cache.flush()
        assert cache.stats.evictions == evictions_before + resident
        assert cache.contents() == {}
