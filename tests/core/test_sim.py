"""Simulation-driver tests: warm start and run_config defaults."""

import pytest

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.sim import run_config, simulate
from repro.errors import ConfigurationError
from repro.trace.record import Trace


def sequential_trace(n, stride=2, start=0):
    addrs = [start + i * stride for i in range(n)]
    return Trace(addrs, [0] * n, 2)


class TestColdStart:
    def test_all_accesses_counted(self, tiny_trace):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        stats = simulate(cache, tiny_trace, warmup=0)
        assert stats.accesses == len(tiny_trace)

    def test_returns_cache_stats_object(self, tiny_trace):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        assert simulate(cache, tiny_trace) is cache.stats


class TestCountWarmup:
    def test_skips_first_n(self, tiny_trace):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        stats = simulate(cache, tiny_trace, warmup=4)
        assert stats.accesses == len(tiny_trace) - 4

    def test_warmup_longer_than_trace_measures_nothing(self, tiny_trace):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        stats = simulate(cache, tiny_trace, warmup=1000)
        assert stats.accesses == len(tiny_trace)  # countdown never hit 0

    def test_negative_warmup_rejected(self, tiny_trace):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        with pytest.raises(ConfigurationError):
            simulate(cache, tiny_trace, warmup=-1)

    def test_bad_warmup_value_rejected(self, tiny_trace):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        with pytest.raises(ConfigurationError):
            simulate(cache, tiny_trace, warmup="lukewarm")


class TestFillWarmup:
    def test_excludes_initial_fill_misses(self):
        # 64-byte cache (4 blocks); a 32-block sequential sweep fills
        # it after 4 block misses; warm stats must exclude those.
        trace = sequential_trace(256, stride=2)
        cold = SubBlockCache(CacheGeometry(64, 16, 16))
        warm = SubBlockCache(CacheGeometry(64, 16, 16))
        cold_stats = simulate(cold, trace, warmup=0)
        warm_stats = simulate(warm, trace, warmup="fill")
        assert warm_stats.accesses < cold_stats.accesses
        assert warm_stats.misses < cold_stats.misses

    def test_warm_ratio_not_larger_for_looping_trace(self):
        loop = sequential_trace(64, stride=2) + sequential_trace(64, stride=2)
        cold = SubBlockCache(CacheGeometry(1024, 16, 8))
        warm = SubBlockCache(CacheGeometry(1024, 16, 8))
        cold_ratio = simulate(cold, loop, warmup=0).miss_ratio
        warm_ratio = simulate(warm, loop, warmup="fill").miss_ratio
        assert warm_ratio <= cold_ratio

    def test_never_filled_cache_keeps_all_stats(self):
        trace = sequential_trace(4, stride=2)  # too short to fill
        cache = SubBlockCache(CacheGeometry(1024, 16, 8))
        stats = simulate(cache, trace, warmup="fill")
        assert stats.accesses == 4

    def test_never_filled_cache_keeps_misses_too(self):
        # Degenerate fill warm-up: the reset never fires, so the run is
        # indistinguishable from a cold start across every counter.
        trace = sequential_trace(6, stride=32)  # 6 blocks of 64
        warm = SubBlockCache(CacheGeometry(1024, 32, 16))
        cold = SubBlockCache(CacheGeometry(1024, 32, 16))
        warm_stats = simulate(warm, trace, warmup="fill")
        cold_stats = simulate(cold, trace, warmup=0)
        assert warm_stats.misses == cold_stats.misses == 6
        assert warm_stats.bytes_fetched == cold_stats.bytes_fetched

    def test_fill_on_last_access_measures_nothing(self):
        # The cache fills exactly on the final access: the reset fires
        # after it, leaving warm statistics that cover zero accesses.
        geometry = CacheGeometry(64, 16, 16)  # 4 blocks
        trace = sequential_trace(4, stride=16)  # 4 distinct blocks
        cache = SubBlockCache(geometry)
        stats = simulate(cache, trace, warmup="fill")
        assert cache.is_full
        assert stats.accesses == 0
        assert stats.misses == 0
        assert stats.miss_ratio == 0.0

    def test_fill_reset_happens_once(self):
        # After the fill-triggered reset, later evictions must not
        # reset again: the second pass over a conflicting footprint is
        # fully measured.
        geometry = CacheGeometry(64, 16, 16, associativity=1)
        first = sequential_trace(4, stride=16)  # fills the 4 blocks
        conflict = sequential_trace(8, stride=16, start=0)  # 4 evictions
        trace = first + conflict
        cache = SubBlockCache(geometry)
        stats = simulate(cache, trace, warmup="fill")
        assert stats.accesses == len(conflict)

    def test_fill_warmup_with_flush_at_end(self):
        # flush_at_end evicts whatever is resident *after* the warm-up
        # reset, so utilization stats cover only the measured phase.
        geometry = CacheGeometry(64, 16, 16)
        filling = sequential_trace(4, stride=16)
        cache = SubBlockCache(geometry)
        stats = simulate(cache, filling, warmup="fill", flush_at_end=True)
        # Warm stats covered zero accesses, but the flush still records
        # the four resident blocks' evictions.
        assert stats.accesses == 0
        assert stats.evictions == 4
        assert stats.evicted_sub_blocks_total == 4  # one sub-block each

    def test_fill_warmup_empty_trace(self):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        stats = simulate(cache, Trace([], [], []), warmup="fill")
        assert stats.accesses == 0 and stats.misses == 0


class TestFlushAtEnd:
    def test_flush_records_resident_blocks(self, tiny_trace):
        cache = SubBlockCache(CacheGeometry(64, 16, 8))
        stats = simulate(cache, tiny_trace, flush_at_end=True)
        assert stats.evictions >= len(cache.contents()) == 0


class TestRunConfig:
    def test_defaults_follow_paper(self, z8000_grep_trace):
        stats = run_config(CacheGeometry(256, 16, 8), z8000_grep_trace)
        assert 0.0 < stats.miss_ratio < 1.0
        assert stats.traffic_ratio() > 0.0

    def test_deterministic(self, z8000_grep_trace):
        geometry = CacheGeometry(256, 16, 8)
        first = run_config(geometry, z8000_grep_trace)
        second = run_config(geometry, z8000_grep_trace)
        assert first.miss_ratio == second.miss_ratio
        assert first.traffic_ratio() == second.traffic_ratio()
