"""Unit suites for the miss-path chain structures and their stats.

Each structure is exercised in isolation through the MissPath protocol
(probe/fill/evict), then the assembled chain is checked for probe
order, short-circuiting, fill announcement, and L1-eviction capture.
Hypothesis drives random chains over random traces and asserts the
conservation laws of :func:`check_misspath_conservation` on the result.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.conservation import check_misspath_conservation
from repro.core.misspath import (
    MISS_PATH_KEYS,
    BackingL2,
    MissCache,
    MissPathChain,
    MissPathConfig,
    MissPathStats,
    StreamBufferSet,
    VictimCache,
    build_miss_path,
)
from repro.core.sim import run_config, simulate
from repro.core.stats import CacheStats
from repro.errors import ConfigurationError
from repro.trace.record import Trace

GEOMETRY = CacheGeometry(64, 16, 8)
FULL_CHAIN = MissPathConfig(
    victim_entries=4,
    miss_entries=4,
    stream_buffers=2,
    stream_depth=4,
    l2_net_size=1024,
)


class TestMissPathConfig:
    def test_default_is_the_empty_chain(self):
        config = MissPathConfig()
        assert not config.enabled
        assert config.chain_names == ()
        assert config.key() == "none"
        assert build_miss_path(config, GEOMETRY) is None
        assert build_miss_path(None, GEOMETRY) is None

    def test_chain_names_follow_probe_order(self):
        assert FULL_CHAIN.chain_names == ("victim", "miss", "stream", "l2")
        assert MissPathConfig(l2_net_size=512).chain_names == ("l2",)
        assert MissPathConfig(
            stream_buffers=1, victim_entries=1
        ).chain_names == ("victim", "stream")

    def test_unknown_key_rejected_loudly(self):
        # The satellite requirement by name: a typo'd ``victim_entires``
        # must fail parsing, never silently configure a bare chain.
        with pytest.raises(ConfigurationError, match="victim_entires"):
            MissPathConfig.from_dict({"victim_entires": 4})
        with pytest.raises(ConfigurationError, match="unknown miss-path"):
            MissPathConfig.coerce({"victim_entries": 4, "extra": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            MissPathConfig.from_dict(["victim_entries"])  # type: ignore[arg-type]

    @pytest.mark.parametrize(
        "field,value",
        [
            ("victim_entries", -1),
            ("miss_entries", -2),
            ("stream_buffers", -1),
            ("l2_net_size", -64),
            ("stream_depth", 0),
            ("l2_associativity", 0),
            ("victim_entries", True),
            ("stream_depth", "4"),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            MissPathConfig(**{field: value})

    def test_round_trip_and_coerce(self):
        payload = FULL_CHAIN.to_dict()
        assert set(payload) == MISS_PATH_KEYS
        assert MissPathConfig.from_dict(payload) == FULL_CHAIN
        assert MissPathConfig.coerce(payload) == FULL_CHAIN
        assert MissPathConfig.coerce(FULL_CHAIN) is FULL_CHAIN
        assert MissPathConfig.coerce(None) is None

    def test_key_is_canonical_and_stable(self):
        assert FULL_CHAIN.key() == "vc4+mc4+sb2x4+l2:1024/0/0@4"
        assert MissPathConfig(victim_entries=8).key() == "vc8"
        assert MissPathConfig(
            stream_buffers=4, stream_depth=8
        ).key() == "sb4x8"
        assert MissPathConfig(
            l2_net_size=4096, l2_block_size=64, l2_sub_block_size=16,
            l2_associativity=2,
        ).key() == "l2:4096/64/16@2"

    def test_l2_geometry_inherits_l1_shape(self):
        config = MissPathConfig(l2_net_size=1024)
        geometry = config.l2_geometry(GEOMETRY)
        assert geometry.block_size == GEOMETRY.block_size
        assert geometry.sub_block_size == GEOMETRY.block_size
        assert geometry.net_size == 1024
        explicit = MissPathConfig(
            l2_net_size=1024, l2_block_size=32, l2_sub_block_size=8
        ).l2_geometry(GEOMETRY)
        assert (explicit.block_size, explicit.sub_block_size) == (32, 8)
        with pytest.raises(ConfigurationError, match="no backing L2"):
            MissPathConfig(victim_entries=1).l2_geometry(GEOMETRY)

    def test_config_is_hashable(self):
        assert len({FULL_CHAIN, MissPathConfig(), FULL_CHAIN}) == 2


class TestVictimCache:
    def test_hit_requires_every_needed_sub_block(self):
        victim = VictimCache(entries=2)
        victim.evict(block_addr=5, mask=0b01)
        assert not victim.probe(5, 0b10)  # needs the missing half
        assert not victim.probe(5, 0b11)
        assert victim.probe(5, 0b01)

    def test_hit_swaps_the_block_out(self):
        victim = VictimCache(entries=2)
        victim.evict(7, 0b11)
        assert victim.probe(7, 0b01)
        assert victim.contents() == {}
        assert not victim.probe(7, 0b01)  # gone after the swap

    def test_capacity_evicts_lru(self):
        victim = VictimCache(entries=2)
        for block in (1, 2, 3):
            victim.evict(block, 0b11)
        assert victim.contents() == {2: 0b11, 3: 0b11}
        assert victim.stats.evictions == 1

    def test_reevicting_merges_masks(self):
        victim = VictimCache(entries=2)
        victim.evict(9, 0b01)
        victim.evict(9, 0b10)
        assert victim.contents() == {9: 0b11}
        assert victim.stats.evictions == 0

    def test_empty_mask_evictions_ignored(self):
        victim = VictimCache(entries=2)
        victim.evict(4, 0)
        assert victim.contents() == {}
        assert victim.stats.fills == 0


class TestMissCache:
    def test_tag_only_hit_supplies_any_mask(self):
        miss = MissCache(entries=2)
        miss.fill(3, 0b01)
        assert miss.probe(3, 0b10)  # no data, optimistic full-block hit
        assert miss.probe(3, 0b11)  # and the entry persists across hits

    def test_capacity_evicts_lru(self):
        miss = MissCache(entries=2)
        for block in (1, 2, 3):
            miss.fill(block, 0b1)
        assert miss.contents() == [2, 3]
        assert miss.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        miss = MissCache(entries=2)
        miss.fill(1, 0b1)
        miss.fill(2, 0b1)
        assert miss.probe(1, 0b1)
        miss.fill(3, 0b1)  # evicts 2, not the refreshed 1
        assert miss.contents() == [1, 3]


class TestStreamBufferSet:
    def test_fill_prefetches_successors(self):
        stream = StreamBufferSet(buffers=1, depth=3)
        stream.fill(10, 0b1)
        assert stream.contents() == [[11, 12, 13]]
        assert stream.stats.fills == 3

    def test_hit_consumes_through_match_and_refills(self):
        stream = StreamBufferSet(buffers=1, depth=3)
        stream.fill(10, 0b1)
        assert stream.probe(12, 0b1)  # skips 11, consumes 12
        assert stream.contents() == [[13, 14, 15]]
        assert stream.probe(13, 0b1)
        assert stream.contents() == [[14, 15, 16]]

    def test_nonsequential_miss_reallocates_lru_buffer(self):
        stream = StreamBufferSet(buffers=2, depth=2)
        stream.fill(10, 0b1)   # buffer 0: [11, 12]
        stream.fill(100, 0b1)  # buffer 1: [101, 102]
        assert stream.probe(11, 0b1)  # buffer 0 becomes most recent
        stream.fill(200, 0b1)  # flushes buffer 1, the LRU one
        assert stream.contents() == [[12, 13], [201, 202]]
        assert stream.stats.evictions == 1

    def test_miss_on_unbuffered_address(self):
        stream = StreamBufferSet(buffers=1, depth=2)
        stream.fill(10, 0b1)
        assert not stream.probe(10, 0b1)  # the missed block itself
        assert not stream.probe(50, 0b1)


class TestBackingL2:
    def test_probe_spans_the_needed_sub_blocks(self):
        l2 = BackingL2(
            MissPathConfig(l2_net_size=1024), GEOMETRY, word_size=2
        )
        assert not l2.probe(0, 0b11)  # cold: one L2 fetch
        assert l2.last_fetch_bytes > 0
        assert l2.probe(0, 0b01)  # warm: resident now
        assert l2.last_fetch_bytes == 0
        assert l2.cache.stats.accesses == 2

    def test_word_size_must_fit_l2_sub_block(self):
        with pytest.raises(ConfigurationError, match="word_size"):
            BackingL2(
                MissPathConfig(l2_net_size=64, l2_block_size=2),
                GEOMETRY,
                word_size=4,
            )


class TestMissPathChain:
    def test_requires_a_configured_structure(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            MissPathChain(MissPathConfig(), GEOMETRY)

    def test_probe_order_short_circuits_at_first_hit(self):
        chain = MissPathChain(
            MissPathConfig(victim_entries=2, miss_entries=2), GEOMETRY
        )
        chain.on_l1_eviction(5, 0b11)
        chain.service_miss(5, 0b01, nbytes=8)  # victim hit stops the walk
        victim = chain.stats.structures["victim"]
        miss = chain.stats.structures["miss"]
        assert (victim.probes, victim.hits) == (1, 1)
        assert (miss.probes, miss.hits) == (0, 0)
        assert chain.stats.memory_fetches == 0

    def test_memory_miss_fills_probed_structures(self):
        chain = MissPathChain(
            MissPathConfig(miss_entries=2, stream_buffers=1), GEOMETRY
        )
        chain.service_miss(7, 0b11, nbytes=16)
        assert chain.stats.memory_fetches == 1
        assert chain.stats.memory_bytes_fetched == 16
        assert chain.stats.structures["miss"].fills == 1
        assert chain.stats.structures["stream"].fills == 4  # one per depth
        # The very next miss on the same block hits the miss cache.
        chain.service_miss(7, 0b11, nbytes=16)
        assert chain.stats.structures["miss"].hits == 1
        assert chain.stats.memory_fetches == 1

    def test_structure_hit_does_not_fill_downstream(self):
        chain = MissPathChain(
            MissPathConfig(victim_entries=2, miss_entries=2), GEOMETRY
        )
        chain.on_l1_eviction(3, 0b11)
        chain.service_miss(3, 0b11, nbytes=16)  # victim services it
        assert chain.stats.structures["miss"].fills == 0

    def test_l2_service_fills_tag_side_structures(self):
        chain = MissPathChain(
            MissPathConfig(miss_entries=1, l2_net_size=1024), GEOMETRY
        )
        chain.service_miss(1, 0b11, nbytes=16)  # L2 cold miss -> memory
        assert chain.stats.memory_fetches == 1
        assert chain.stats.structures["miss"].fills == 1
        chain.service_miss(2, 0b11, nbytes=16)  # displaces tag 1 from MC
        # Block 1 is L2-resident now: the L2 hit services the miss AND
        # announces the fill back up to the probed-and-missed miss cache.
        chain.service_miss(1, 0b11, nbytes=16)
        assert chain.stats.structures["l2"].hits == 1
        assert chain.stats.memory_fetches == 2
        assert chain.stats.structures["miss"].fills == 3

    def test_memory_bytes_follow_l2_traffic_when_chained(self):
        chain = MissPathChain(
            MissPathConfig(l2_net_size=1024), GEOMETRY, word_size=2
        )
        chain.service_miss(0, 0b11, nbytes=16)
        assert chain.stats.memory_bytes_fetched == (
            chain.stats.l2_stats.bytes_fetched
        )

    def test_stats_objects_are_shared(self):
        chain = MissPathChain(FULL_CHAIN, GEOMETRY)
        for structure in chain.structures:
            assert structure.stats is chain.stats.structures[structure.name]
        assert chain.stats.l2_stats is chain.l2.cache.stats


class TestCacheIntegration:
    def test_l1_counters_identical_with_and_without_chain(self, tiny_trace):
        bare = run_config(GEOMETRY, tiny_trace, warmup=0)
        chained = run_config(
            GEOMETRY, tiny_trace, warmup=0, miss_path=FULL_CHAIN
        )
        snapshot = dict(bare.snapshot())
        assert dict(chained.snapshot()) == snapshot
        assert chained.misspath is not None
        assert bare.misspath is None

    def test_demand_misses_match_l1_miss_events(self, random_trace):
        stats = run_config(
            GEOMETRY, random_trace, warmup=0, miss_path=FULL_CHAIN
        )
        assert stats.misspath.demand_misses == (
            stats.block_misses + stats.sub_block_misses
        )
        assert check_misspath_conservation(stats.misspath, stats) == []

    def test_victim_cache_captures_l1_evictions(self):
        # Two blocks ping-ponging in a direct-mapped set: every miss
        # after the first two should hit the victim cache.
        geometry = CacheGeometry(32, 16, 16, associativity=1)
        addrs = [0, 32, 0, 32, 0, 32]
        trace = Trace(addrs, [0] * len(addrs), 2, name="pingpong")
        stats = run_config(
            geometry, trace, warmup=0,
            miss_path=MissPathConfig(victim_entries=2),
        )
        victim = stats.misspath.structures["victim"]
        assert victim.hits == 4
        assert stats.misspath.memory_fetches == 2

    def test_warmup_resets_chain_counters_in_place(self, random_trace):
        cache = SubBlockCache(GEOMETRY, miss_path=FULL_CHAIN)
        stats = simulate(cache, random_trace, warmup=1000)
        misspath = stats.misspath
        assert misspath is cache.stats.misspath  # same object, reset live
        assert check_misspath_conservation(misspath, stats) == []
        assert misspath.demand_misses == (
            stats.block_misses + stats.sub_block_misses
        )

    def test_flush_at_end_feeds_the_victim_cache(self):
        cache = SubBlockCache(
            GEOMETRY, miss_path=MissPathConfig(victim_entries=8)
        )
        trace = Trace([0, 16, 32], [0, 0, 0], 2, name="fill")
        stats = simulate(cache, trace, warmup=0, flush_at_end=True)
        assert stats.misspath.structures["victim"].fills == stats.evictions


class TestMissPathStatsSerialization:
    def test_round_trip_through_a_real_run(self, random_trace):
        stats = run_config(
            GEOMETRY, random_trace, warmup=0, miss_path=FULL_CHAIN
        )
        rebuilt = CacheStats.from_dict(stats.to_dict())
        assert rebuilt.misspath is not None
        assert rebuilt.misspath.to_dict() == stats.misspath.to_dict()
        assert check_misspath_conservation(rebuilt.misspath, rebuilt) == []

    def test_chainless_stats_omit_the_key(self, tiny_trace):
        stats = run_config(GEOMETRY, tiny_trace, warmup=0)
        assert "misspath" not in stats.to_dict()

    def test_from_dict_rejects_malformed_dumps(self):
        dump = MissPathStats(("victim",)).to_dict()
        with pytest.raises(ValueError, match="not a MissPathStats"):
            MissPathStats.from_dict({**dump, "extra": 1})
        with pytest.raises(ValueError, match="do not match"):
            MissPathStats.from_dict({**dump, "structures": {}})
        bad_structure = {
            **dump,
            "structures": {"victim": {"probes": 0}},
        }
        with pytest.raises(ValueError, match="not a StructureStats"):
            MissPathStats.from_dict(bad_structure)

    def test_hits_summary_flattens_the_chain(self):
        stats = MissPathStats(("victim", "l2"))
        stats.structures["victim"].hits = 3
        stats.structures["l2"].hits = 2
        stats.memory_fetches = 5
        assert stats.hits_summary() == {
            "victim": 3, "l2": 2, "memory_fetches": 5
        }


class TestConservationChecker:
    def _clean(self):
        stats = MissPathStats(("victim", "miss"))
        stats.demand_misses = 10
        stats.structures["victim"].probes = 10
        stats.structures["victim"].hits = 4
        stats.structures["miss"].probes = 6
        stats.structures["miss"].hits = 1
        stats.memory_fetches = 5
        stats.memory_bytes_fetched = 80
        return stats

    def test_clean_stats_pass(self):
        assert check_misspath_conservation(self._clean()) == []

    def test_each_rule_family_fires(self):
        stats = self._clean()
        stats.memory_bytes_fetched = -1
        assert any(
            v.startswith("misspath-negative")
            for v in check_misspath_conservation(stats)
        )

        stats = self._clean()
        stats.structures["victim"].hits = 11
        assert any(
            v.startswith("misspath-bounds")
            for v in check_misspath_conservation(stats)
        )

        stats = self._clean()
        stats.structures["miss"].probes = 10
        assert any(
            v.startswith("misspath-chain")
            for v in check_misspath_conservation(stats)
        )

        stats = self._clean()
        stats.memory_fetches = 3
        assert any(
            v.startswith("misspath-service")
            for v in check_misspath_conservation(stats)
        )

        stats = self._clean()
        stats.memory_fetches = 0
        stats.structures["miss"].hits = 6
        assert any(
            v.startswith("misspath-memory")
            for v in check_misspath_conservation(stats)
        )

    def test_l1_link_rule(self, tiny_trace):
        stats = run_config(
            GEOMETRY, tiny_trace, warmup=0, miss_path=FULL_CHAIN
        )
        assert check_misspath_conservation(stats.misspath, stats) == []
        stats.misspath.demand_misses += 1
        violations = check_misspath_conservation(stats.misspath, stats)
        assert any(v.startswith("misspath-l1-link") for v in violations)


# -- Property-based: random chains obey the conservation laws -----------

chain_configs = st.builds(
    MissPathConfig,
    victim_entries=st.integers(0, 6),
    miss_entries=st.integers(0, 6),
    stream_buffers=st.integers(0, 3),
    stream_depth=st.integers(1, 6),
    l2_net_size=st.sampled_from([0, 256, 1024]),
    l2_associativity=st.sampled_from([1, 2, 4]),
)

word_accesses = st.lists(
    st.tuples(
        st.integers(0, 1023),
        st.sampled_from([0, 1, 2]),
        st.sampled_from([1, 2, 4]),
    ),
    max_size=200,
)


class TestChainProperties:
    @given(config=chain_configs, accesses=word_accesses)
    @settings(max_examples=60, deadline=None)
    def test_conservation_holds_for_random_chains(self, config, accesses):
        trace = Trace(
            [a for a, _, _ in accesses],
            [k for _, k, _ in accesses],
            [s for _, _, s in accesses],
            name="hyp",
        )
        stats = run_config(
            GEOMETRY, trace, warmup=0, word_size=2,
            miss_path=config if config.enabled else None,
        )
        if not config.enabled:
            assert stats.misspath is None
            return
        assert check_misspath_conservation(stats.misspath, stats) == []

    @given(config=chain_configs, accesses=word_accesses)
    @settings(max_examples=30, deadline=None)
    def test_serialization_round_trips(self, config, accesses):
        if not config.enabled:
            return
        trace = Trace(
            [a for a, _, _ in accesses],
            [k for _, k, _ in accesses],
            [s for _, _, s in accesses],
            name="hyp",
        )
        stats = run_config(GEOMETRY, trace, warmup=0, miss_path=config)
        rebuilt = MissPathStats.from_dict(stats.misspath.to_dict())
        assert rebuilt.to_dict() == stats.misspath.to_dict()

    @given(config=chain_configs, accesses=word_accesses)
    @settings(max_examples=30, deadline=None)
    def test_chain_never_perturbs_l1(self, config, accesses):
        trace = Trace(
            [a for a, _, _ in accesses],
            [k for _, k, _ in accesses],
            [s for _, _, s in accesses],
            name="hyp",
        )
        bare = run_config(GEOMETRY, trace, warmup=0)
        chained = run_config(
            GEOMETRY, trace, warmup=0,
            miss_path=config if config.enabled else None,
        )
        assert dict(chained.snapshot()) == dict(bare.snapshot())
        assert chained.transaction_words == bare.transaction_words
