"""Assembler diagnostic tests: every error names its line and token.

:class:`~repro.errors.AssemblyError` carries ``lineno`` and ``token``
attributes so tooling (and the static analyzer's users) can point at
the offending source instead of grepping a bare message.
"""

import pytest

from repro.errors import AssemblyError
from repro.workloads.assembler import assemble


def assembly_error(source: str) -> AssemblyError:
    with pytest.raises(AssemblyError) as excinfo:
        assemble(source)
    return excinfo.value


class TestDuplicateSymbols:
    def test_duplicate_label_names_line_and_token(self):
        error = assembly_error("start:\n    halt\nstart:\n    halt\n")
        assert error.lineno == 3
        assert error.token == "start"
        assert "duplicate label" in str(error)
        assert "line 3" in str(error)

    def test_duplicate_data_symbol(self):
        error = assembly_error(".words tab 1\n.space tab 4\n    halt\n")
        assert error.lineno == 2
        assert error.token == "tab"

    def test_label_colliding_with_data_symbol(self):
        error = assembly_error(".words buf 1\nbuf:\n    halt\n")
        assert error.token == "buf"


class TestUnknownOpcodes:
    def test_unknown_mnemonic_names_line_and_token(self):
        error = assembly_error("    li r0, 1\n    frobnicate r0\n    halt\n")
        assert error.lineno == 2
        assert error.token == "frobnicate"
        assert "unknown mnemonic" in str(error)


class TestBadRegisters:
    def test_bad_register_names_line_and_token(self):
        error = assembly_error("    li r9, 1\n    halt\n")
        assert error.lineno == 1
        assert error.token == "r9"
        assert "not a register" in str(error)

    def test_non_register_operand(self):
        error = assembly_error("    li r0, 1\n    mov r0, banana\n    halt\n")
        assert error.lineno == 2
        assert error.token == "banana"


class TestUndefinedSymbols:
    def test_undefined_branch_target(self):
        error = assembly_error("    li r0, 1\n    jmp nowhere\n    halt\n")
        assert error.lineno == 2
        assert error.token == "nowhere"
        assert "undefined symbol" in str(error)

    def test_undefined_data_symbol_in_load(self):
        error = assembly_error("    ld r0, r1, missing\n    halt\n")
        assert error.lineno == 1
        assert error.token == "missing"

    def test_bad_offset_in_symbol_arithmetic(self):
        error = assembly_error(".words tab 1\n    li r0, tab+x\n    halt\n")
        assert error.lineno == 2
        assert error.token == "tab+x"
        assert "bad offset" in str(error)


class TestDirectiveAndOperandErrors:
    def test_bad_space_count(self):
        error = assembly_error(".space buf many\n    halt\n")
        assert error.lineno == 1
        assert error.token == "many"

    def test_bad_word_value(self):
        error = assembly_error(".words tab 1 two\n    halt\n")
        assert error.lineno == 1
        assert error.token == "two"

    def test_wrong_operand_count_names_mnemonic(self):
        error = assembly_error("    add r0\n    halt\n")
        assert error.lineno == 1
        assert error.token == "add"
        assert "operand" in str(error)

    def test_branch_missing_target(self):
        error = assembly_error("    beq r0, r1\n    halt\n")
        assert error.lineno == 1
        assert error.token == "beq"

    def test_bad_label_syntax(self):
        error = assembly_error("9lives:\n    halt\n")
        assert error.lineno == 1
        assert error.token == "9lives"

    def test_attributes_default_to_none(self):
        error = AssemblyError("word_size must be 2 or 4")
        assert error.lineno is None
        assert error.token is None
