"""Assembler tests: syntax, layout, symbols, and error reporting."""

import pytest

from repro.errors import AssemblyError
from repro.workloads.assembler import assemble
from repro.workloads.isa import Op


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("halt\n")
        assert len(program.instructions) == 1
        assert program.instructions[0].op == Op.HALT
        assert program.instructions[0].words == 1

    def test_immediate_instructions_take_two_words(self):
        program = assemble("li r0, 5\nhalt\n", word_size=2)
        assert program.instructions[0].words == 2
        assert program.instructions[1].addr == 0x100 + 4

    def test_word_size_scales_addresses(self):
        narrow = assemble("li r0, 5\nhalt\n", word_size=2)
        wide = assemble("li r0, 5\nhalt\n", word_size=4)
        assert narrow.instructions[1].addr == 0x104
        assert wide.instructions[1].addr == 0x108

    def test_comments_and_blank_lines(self):
        program = assemble("; nothing\n\nnop ; trailing\nhalt\n")
        assert len(program.instructions) == 2

    def test_registers_and_aliases(self):
        program = assemble("mov sp, fp\nhalt\n")
        assert program.instructions[0].a == 7
        assert program.instructions[0].b == 6

    def test_hex_and_negative_immediates(self):
        program = assemble("li r0, 0x20\naddi r0, -3\nhalt\n")
        assert program.instructions[0].imm == 0x20
        assert program.instructions[1].imm == -3

    def test_at_word_token(self):
        assert assemble("addi r1, @word\nhalt\n", word_size=2).instructions[0].imm == 2
        assert assemble("addi r1, @word\nhalt\n", word_size=4).instructions[0].imm == 4


class TestLabelsAndBranches:
    def test_branch_resolves_to_instruction_address(self):
        source = "start:\n  nop\n  jmp start\n  halt\n"
        program = assemble(source)
        assert program.instructions[1].imm == program.instructions[0].addr

    def test_forward_reference(self):
        source = "jmp end\nnop\nend: halt\n"
        program = assemble(source)
        assert program.instructions[0].imm == program.instructions[2].addr

    def test_label_on_same_line_as_instruction(self):
        program = assemble("loop: jmp loop\n")
        assert program.instructions[0].imm == program.instructions[0].addr

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x: nop\nx: halt\n")


class TestDataDirectives:
    def test_space_reserves_zeroed_words(self):
        program = assemble("halt\n.space buf 4\n", word_size=2)
        base = program.symbols["buf"]
        assert base == program.data_base
        assert program.data_limit - base == 8

    def test_words_initialize_memory(self):
        program = assemble("halt\n.words tab 10 20 30\n", word_size=2)
        base = program.symbols["tab"]
        assert [program.data[base + 2 * i] for i in range(3)] == [10, 20, 30]

    def test_data_symbols_usable_as_immediates(self):
        program = assemble("li r0, tab\nhalt\n.words tab 1\n")
        assert program.instructions[0].imm == program.symbols["tab"]

    def test_symbol_plus_offset(self):
        program = assemble("li r0, tab+4\nhalt\n.words tab 1 2 3\n")
        assert program.instructions[0].imm == program.symbols["tab"] + 4

    def test_data_placed_after_code(self):
        program = assemble("nop\nhalt\n.space buf 2\n", word_size=2)
        assert program.data_base == 0x100 + 2 * 2
        assert program.code_bytes == 4

    def test_duplicate_data_symbol_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("halt\n.words x 1\n.space x 2\n")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r0\n")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="not a register"):
            assemble("mov r9, r0\n")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError, match="undefined symbol"):
            assemble("jmp nowhere\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r0\n")

    def test_bad_word_size(self):
        with pytest.raises(AssemblyError):
            assemble("halt\n", word_size=3)

    def test_errors_cite_line_numbers(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus r0\n")
