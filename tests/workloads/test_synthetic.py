"""Statistical workload generator tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.trace.record import AccessType
from repro.trace.stats import profile_trace
from repro.workloads.synthetic import SyntheticProfile, generate_synthetic


SMALL = SyntheticProfile(
    code_words=1000, n_procs=8, global_words=500, stream_words=400, n_streams=2
)


class TestValidation:
    def test_code_smaller_than_procs_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticProfile(code_words=4, n_procs=8)

    def test_empty_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticProfile(global_words=0)

    def test_bad_data_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticProfile(data_fraction=1.5)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_synthetic(SMALL, -1)


class TestBasicShape:
    def test_exact_length(self):
        assert len(generate_synthetic(SMALL, 5000)) == 5000

    def test_zero_length(self):
        assert len(generate_synthetic(SMALL, 0)) == 0

    def test_deterministic_per_seed(self):
        a = generate_synthetic(SMALL, 3000, seed=9)
        b = generate_synthetic(SMALL, 3000, seed=9)
        assert a == b

    def test_seeds_differ(self):
        a = generate_synthetic(SMALL, 3000, seed=1)
        b = generate_synthetic(SMALL, 3000, seed=2)
        assert a != b

    def test_word_size_scales_addresses(self):
        narrow = generate_synthetic(SMALL, 3000, word_size=2, seed=5)
        wide = generate_synthetic(SMALL, 3000, word_size=4, seed=5)
        assert set(narrow.sizes.tolist()) == {2}
        assert set(wide.sizes.tolist()) == {4}
        assert wide.address_span() > narrow.address_span()

    def test_name_carried(self):
        assert generate_synthetic(SMALL, 10, name="FGO1").name == "FGO1"


class TestLocalityCharacter:
    def test_contains_all_access_kinds(self):
        trace = generate_synthetic(SMALL, 8000, seed=3)
        for kind in (AccessType.IFETCH, AccessType.READ, AccessType.WRITE):
            assert trace.count(kind) > 0

    def test_instruction_runs_are_sequential(self):
        profile = profile_trace(generate_synthetic(SMALL, 8000, seed=3))
        assert profile.mean_run_length > 1.5

    def test_forward_bias(self):
        profile = profile_trace(generate_synthetic(SMALL, 8000, seed=3))
        assert profile.forward_bias > 0.5

    def test_bigger_profiles_have_bigger_working_sets(self):
        big = SyntheticProfile(
            code_words=20000, n_procs=30, global_words=20000,
            stream_words=8000, n_streams=3,
        )
        small_ws = profile_trace(generate_synthetic(SMALL, 10000, seed=4)).unique_words
        big_ws = profile_trace(generate_synthetic(big, 10000, seed=4)).unique_words
        assert big_ws > small_ws

    def test_more_reuse_lowers_miss_ratio(self):
        from repro.core import CacheGeometry, run_config
        from repro.trace.filters import reads_only

        low = SyntheticProfile(
            code_words=4000, n_procs=8, global_words=4000,
            stream_words=400, n_streams=2, p_loop=0.1, loop_iters=2,
        )
        high = SyntheticProfile(
            code_words=4000, n_procs=8, global_words=4000,
            stream_words=400, n_streams=2, p_loop=0.6, loop_iters=40,
        )
        geometry = CacheGeometry(1024, 16, 8)
        low_miss = run_config(
            geometry, reads_only(generate_synthetic(low, 30000, seed=6))
        ).miss_ratio
        high_miss = run_config(
            geometry, reads_only(generate_synthetic(high, 30000, seed=6))
        ).miss_ratio
        assert high_miss < low_miss

    @given(seed=st.integers(0, 50), length=st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_and_length_work(self, seed, length):
        trace = generate_synthetic(SMALL, length, seed=seed)
        assert len(trace) == length
        if length:
            assert trace.addrs.min() >= 0
