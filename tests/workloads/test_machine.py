"""Interpreter tests: semantics, trace emission, and error handling."""

import pytest

from repro.errors import MachineError
from repro.trace.record import AccessType
from repro.workloads.assembler import assemble
from repro.workloads.machine import Machine


def run(source, word_size=2, **kwargs):
    machine = Machine(assemble(source, word_size=word_size), **kwargs)
    result = machine.run()
    return machine, result


class TestArithmetic:
    def test_li_mov_add(self):
        machine, _ = run("li r0, 5\nli r1, 7\nadd r0, r1\nmov r2, r0\nhalt\n")
        assert machine.registers[0] == 12
        assert machine.registers[2] == 12

    def test_sub_mul_div_mod(self):
        machine, _ = run(
            "li r0, 17\nli r1, 5\nmov r2, r0\nmod r2, r1\n"
            "mov r3, r0\ndiv r3, r1\nsub r0, r1\nmul r1, r1\nhalt\n"
        )
        assert machine.registers[2] == 2
        assert machine.registers[3] == 3
        assert machine.registers[0] == 12
        assert machine.registers[1] == 25

    def test_negative_division_truncates_toward_zero(self):
        machine, _ = run("li r0, -7\nli r1, 2\ndiv r0, r1\nhalt\n")
        assert machine.registers[0] == -3

    def test_bitwise_and_shifts(self):
        machine, _ = run(
            "li r0, 12\nli r1, 10\nand r0, r1\n"
            "li r2, 3\nli r3, 2\nshl r2, r3\n"
            "li r4, 32\nli r5, 3\nshr r4, r5\nhalt\n"
        )
        assert machine.registers[0] == 8
        assert machine.registers[2] == 12
        assert machine.registers[4] == 4

    def test_division_by_zero_raises(self):
        with pytest.raises(MachineError, match="division"):
            run("li r0, 1\nli r1, 0\ndiv r0, r1\nhalt\n")


class TestMemoryOps:
    def test_store_then_load(self):
        machine, _ = run(
            "li r0, buf\nli r1, 42\nst r1, r0, 0\nld r2, r0, 0\nhalt\n"
            ".space buf 1\n"
        )
        assert machine.registers[2] == 42

    def test_load_with_offset(self):
        machine, _ = run(
            "li r0, tab\nld r1, r0, @word\nhalt\n.words tab 5 6 7\n"
        )
        assert machine.registers[1] == 6

    def test_byte_ops(self):
        machine, _ = run(
            "li r0, buf\nli r1, 0xAB\nstb r1, r0, 0\nldb r2, r0, 0\nhalt\n"
            ".space buf 1\n"
        )
        assert machine.registers[2] == 0xAB

    def test_byte_ops_within_word(self):
        machine, _ = run(
            "li r0, buf\nli r1, 1\nstb r1, r0, 0\nli r1, 2\nstb r1, r0, 1\n"
            "ldb r2, r0, 0\nldb r3, r0, 1\nhalt\n.space buf 1\n"
        )
        assert (machine.registers[2], machine.registers[3]) == (1, 2)

    def test_uninitialized_memory_reads_zero(self):
        machine, _ = run("li r0, buf\nld r1, r0, 0\nhalt\n.space buf 1\n")
        assert machine.registers[1] == 0


class TestControlFlow:
    def test_loop_counts(self):
        machine, _ = run(
            "li r0, 0\nli r1, 10\nloop: addi r0, 1\nblt r0, r1, loop\nhalt\n"
        )
        assert machine.registers[0] == 10

    def test_branch_variants(self):
        machine, _ = run(
            "li r0, 3\nli r1, 3\nbeq r0, r1, eq\nli r2, 0\njmp out\n"
            "eq: li r2, 1\nout: halt\n"
        )
        assert machine.registers[2] == 1

    def test_call_and_ret(self):
        machine, _ = run(
            "li r0, 5\ncall double\nhalt\ndouble: add r0, r0\nret\n"
        )
        assert machine.registers[0] == 10

    def test_nested_calls_restore_correctly(self):
        machine, _ = run(
            "li r0, 1\ncall a\nhalt\n"
            "a: addi r0, 10\ncall b\naddi r0, 100\nret\n"
            "b: addi r0, 1000\nret\n"
        )
        assert machine.registers[0] == 1111

    def test_push_pop(self):
        machine, _ = run("li r0, 9\npush r0\nli r0, 0\npop r1\nhalt\n")
        assert machine.registers[1] == 9

    def test_stack_overflow_detected(self):
        with pytest.raises(MachineError, match="stack overflow"):
            run("loop: push r0\njmp loop\n", stack_words=16)

    def test_falling_off_code_raises(self):
        with pytest.raises(MachineError):
            run("nop\n")  # no halt


class TestTraceEmission:
    def test_every_instruction_word_is_fetched(self):
        _, result = run("li r0, 1\nnop\nhalt\n")
        ifetches = [a for a in result.trace if a.kind is AccessType.IFETCH]
        # li = 2 words, nop = 1, halt = 1.
        assert len(ifetches) == 4

    def test_data_refs_recorded_with_kind(self):
        _, result = run(
            "li r0, buf\nli r1, 1\nst r1, r0, 0\nld r2, r0, 0\nhalt\n"
            ".space buf 1\n"
        )
        kinds = [a.kind for a in result.trace]
        assert AccessType.WRITE in kinds
        assert AccessType.READ in kinds

    def test_stack_ops_emit_memory_traffic(self):
        _, result = run("li r0, 1\npush r0\npop r1\nhalt\n")
        writes = [a for a in result.trace if a.kind is AccessType.WRITE]
        reads = [a for a in result.trace if a.kind is AccessType.READ]
        assert len(writes) == 1 and len(reads) == 1
        assert writes[0].addr == reads[0].addr

    def test_trace_sizes_match_word_size(self):
        _, narrow = run("nop\nhalt\n", word_size=2)
        assert set(narrow.trace.sizes.tolist()) == {2}
        machine4 = Machine(assemble("nop\nhalt\n", word_size=4))
        assert set(machine4.run().trace.sizes.tolist()) == {4}

    def test_ifetch_addresses_are_sequential_for_straightline(self):
        _, result = run("nop\nnop\nnop\nhalt\n")
        addrs = result.trace.addrs.tolist()
        assert addrs == [0x100, 0x102, 0x104, 0x106]


class TestBudgets:
    def test_step_budget_stops_infinite_loop(self):
        machine = Machine(assemble("loop: jmp loop\n"))
        result = machine.run(max_steps=100)
        assert result.halted is False
        assert result.steps == 100

    def test_ref_budget_truncates_trace(self):
        machine = Machine(assemble("loop: jmp loop\n"))
        result = machine.run(max_refs=50)
        assert not result.halted
        assert len(result.trace) <= 52  # one instruction may overshoot

    def test_halted_flag_set_on_clean_exit(self):
        _, result = run("halt\n")
        assert result.halted
        assert result.steps == 1

    def test_strict_budget_raises_on_runaway_program(self):
        machine = Machine(assemble("loop: jmp loop\n"))
        with pytest.raises(MachineError, match="step budget of 100") as excinfo:
            machine.run(max_steps=100, strict_budget=True)
        assert excinfo.value.steps == 100
        assert "runaway" in str(excinfo.value)

    def test_strict_budget_is_quiet_on_clean_halt(self):
        machine = Machine(assemble("nop\nhalt\n"))
        result = machine.run(max_steps=100, strict_budget=True)
        assert result.halted

    def test_machine_error_names_the_program_and_steps(self):
        machine = Machine(assemble("li r0, 1\nli r1, 0\ndiv r0, r1\nhalt\n"))
        with pytest.raises(MachineError, match="after 3 steps") as excinfo:
            machine.run()
        assert excinfo.value.steps == 3


class TestHelpers:
    def test_read_write_words(self):
        machine = Machine(assemble("halt\n.space buf 3\n"))
        base = machine.program.symbols["buf"]
        machine.write_words(base, [7, 8, 9])
        assert machine.read_words(base, 3) == [7, 8, 9]
