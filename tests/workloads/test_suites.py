"""Suite-registry tests: the paper's Tables 2-5 workloads."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.architectures import ARCHITECTURES, get_architecture
from repro.workloads.suites import (
    Z8000_FIGURE_TRACES,
    Z8000_LOADFORWARD_TRACES,
    clear_trace_cache,
    suite_names,
    suite_specs,
    suite_trace,
    suite_traces,
)


class TestArchitectures:
    def test_all_architectures_present(self):
        assert set(ARCHITECTURES) == {"pdp11", "z8000", "vax", "s370", "mainframe"}

    def test_word_sizes_match_paper(self):
        # Section 3.3: 2-byte paths for Z8000/PDP-11, 4-byte for
        # VAX/System-370.
        assert get_architecture("pdp11").word_size == 2
        assert get_architecture("z8000").word_size == 2
        assert get_architecture("vax").word_size == 4
        assert get_architecture("s370").word_size == 4

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ConfigurationError):
            get_architecture("m68k")


class TestSuiteStructure:
    def test_suite_names(self):
        assert suite_names() == ["mainframe", "pdp11", "s370", "vax", "z8000"]

    def test_paper_trace_names_present(self):
        assert [s.name for s in suite_specs("pdp11")] == [
            "OPSYS", "PLOT", "SIMP", "TRACE", "ROFF", "ED",
        ]
        assert [s.name for s in suite_specs("s370")] == [
            "FGO1", "FCOMP1", "PGO1", "PGO2",
        ]
        assert len(suite_specs("z8000")) == 9
        assert len(suite_specs("vax")) == 6
        assert len(suite_specs("mainframe")) == 6

    def test_figure_subset_is_last_five_of_table3(self):
        z8000_names = [s.name for s in suite_specs("z8000")]
        assert list(Z8000_FIGURE_TRACES) == z8000_names[-5:]

    def test_loadforward_subset(self):
        assert Z8000_LOADFORWARD_TRACES == ("CPP", "C1", "C2")

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            suite_specs("cray")


class TestTraceGeneration:
    def test_trace_has_requested_length_and_name(self):
        trace = suite_trace("z8000", "GREP", length=3000)
        assert len(trace) == 3000
        assert trace.name == "GREP"

    def test_unknown_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="no trace"):
            suite_trace("z8000", "EMACS", length=100)

    def test_cache_returns_same_object(self):
        a = suite_trace("z8000", "GREP", length=3000)
        b = suite_trace("z8000", "GREP", length=3000)
        assert a is b

    def test_clear_cache(self):
        a = suite_trace("z8000", "GREP", length=3000)
        clear_trace_cache()
        b = suite_trace("z8000", "GREP", length=3000)
        assert a is not b
        assert a == b  # still deterministic

    def test_suite_traces_subset_ordering(self):
        traces = suite_traces("z8000", length=1000, names=("SORT", "GREP"))
        assert [t.name for t in traces] == ["SORT", "GREP"]

    def test_suite_traces_missing_name_rejected(self):
        with pytest.raises(ConfigurationError, match="lacks"):
            suite_traces("z8000", length=100, names=("GREP", "VI"))

    def test_word_sizes_follow_architecture(self):
        z_trace = suite_trace("z8000", "GREP", length=500)
        v_trace = suite_trace("vax", "qsort", length=500)
        assert set(z_trace.sizes.tolist()) == {2}
        assert set(v_trace.sizes.tolist()) == {4}
