"""Trace-generation front-end tests."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import program_trace, synthetic_trace
from repro.workloads.synthetic import SyntheticProfile


class TestProgramTrace:
    def test_exact_length(self):
        trace = program_trace("fib", 5000, n=12)
        assert len(trace) == 5000

    def test_restarts_concatenate_runs(self):
        # fib(10) emits only a few thousand references; a longer budget
        # forces restarts with stepped seeds.
        trace = program_trace("fib", 30000, n=10)
        assert len(trace) == 30000

    def test_name_defaults_to_program(self):
        assert program_trace("fib", 100, n=10).name == "fib"

    def test_explicit_name(self):
        assert program_trace("fib", 100, name="OPSYS", n=10).name == "OPSYS"

    def test_unknown_program_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown program"):
            program_trace("doom", 100)

    def test_deterministic(self):
        a = program_trace("bubble", 4000, n=24, seed=3)
        b = program_trace("bubble", 4000, n=24, seed=3)
        assert a == b

    def test_word_size_propagates(self):
        trace = program_trace("fib", 1000, word_size=4, n=10)
        assert set(trace.sizes.tolist()) == {4}


class TestSyntheticTrace:
    def test_wraps_generator(self):
        profile = SyntheticProfile(
            code_words=500, n_procs=4, global_words=200,
            stream_words=100, n_streams=1,
        )
        trace = synthetic_trace(profile, 2000, seed=1, name="PGO1")
        assert len(trace) == 2000
        assert trace.name == "PGO1"
