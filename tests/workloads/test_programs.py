"""Program-library tests: every workload computes the right answer.

These are end-to-end checks of the trace substrate: a trace is only as
good as the program that produced it, so each program's verifier (which
compares machine memory against a Python-computed expectation) must
pass on both word sizes.
"""

import pytest

from repro.trace.record import AccessType
from repro.workloads.assembler import assemble
from repro.workloads.machine import Machine
from repro.workloads.programs import PROGRAMS

SMALL_PARAMS = {
    "bubble": {"n": 24},
    "qsort": {"n": 40},
    "strsearch": {"tlen": 300, "plen": 3},
    "wordcount": {"tlen": 300},
    "matmul": {"n": 6},
    "sieve": {"n": 200},
    "fib": {"n": 10},
    "format_text": {"tlen": 300},
    "linklist": {"n": 30, "repeats": 3},
    "tree": {"n": 40, "m": 80},
    "tokenize": {"tlen": 300, "tsize": 64},
    "editor": {"initial": 120, "m": 40},
    "hanoi": {"n": 8},
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("word_size", [2, 4])
def test_program_computes_correct_answer(name, word_size):
    spec = PROGRAMS[name](**SMALL_PARAMS[name])
    machine = Machine(assemble(spec.source, word_size=word_size))
    result = machine.run(max_steps=5_000_000)
    assert result.halted, f"{name} did not halt"
    assert spec.verify(machine), f"{name} produced a wrong answer"


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_traces_mix_fetches_and_data(name):
    spec = PROGRAMS[name](**SMALL_PARAMS[name])
    machine = Machine(assemble(spec.source, word_size=2))
    trace = machine.run(max_steps=5_000_000).trace
    assert trace.count(AccessType.IFETCH) > 0
    assert trace.count(AccessType.READ) > 0
    # Instruction fetches dominate, as on real machines.
    assert trace.count(AccessType.IFETCH) >= 0.3 * len(trace)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_deterministic_for_same_seed(name):
    spec_a = PROGRAMS[name](**SMALL_PARAMS[name])
    spec_b = PROGRAMS[name](**SMALL_PARAMS[name])
    assert spec_a.source == spec_b.source


def test_different_seeds_change_data():
    a = PROGRAMS["bubble"](n=24, seed=1)
    b = PROGRAMS["bubble"](n=24, seed=2)
    assert a.source != b.source


def test_verifier_fails_on_tampered_memory():
    spec = PROGRAMS["bubble"](n=16)
    machine = Machine(assemble(spec.source, word_size=2))
    machine.run()
    arr = machine.program.symbols["arr"]
    machine.write_words(arr, [999])  # corrupt the sorted output
    assert spec.verify(machine) is False


def test_tokenize_rejects_overfull_table():
    with pytest.raises(ValueError, match="table too small"):
        PROGRAMS["tokenize"](tlen=5000, tsize=8)
