"""Property-based tests for the toy machine (hypothesis).

Random straight-line programs exercise the assembler/interpreter pair
end to end: whatever arithmetic hypothesis generates, the machine's
registers must match a Python evaluation of the same operations, and
the emitted trace must account for exactly the executed instruction
words.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.trace.record import AccessType
from repro.workloads.assembler import assemble
from repro.workloads.machine import Machine

# (mnemonic, python function) for two-register arithmetic that is total
# on the generated operand ranges.
_BINOPS = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("and", lambda a, b: a & b),
    ("or", lambda a, b: a | b),
    ("xor", lambda a, b: a ^ b),
]

_ops = st.lists(
    st.tuples(
        st.sampled_from(range(len(_BINOPS))),
        st.integers(0, 5),  # rd
        st.integers(0, 5),  # rs
    ),
    min_size=0,
    max_size=25,
)
_inits = st.lists(st.integers(0, 1000), min_size=6, max_size=6)


def _build_program(inits: List[int], ops: List[Tuple[int, int, int]]) -> str:
    lines = [f"li r{i}, {value}" for i, value in enumerate(inits)]
    for op_index, rd, rs in ops:
        lines.append(f"{_BINOPS[op_index][0]} r{rd}, r{rs}")
    lines.append("halt")
    return "\n".join(lines)


class TestRandomStraightLinePrograms:
    @given(inits=_inits, ops=_ops)
    @settings(max_examples=100, deadline=None)
    def test_registers_match_python_semantics(self, inits, ops):
        source = _build_program(inits, ops)
        machine = Machine(assemble(source, word_size=2))
        machine.run()

        expected = list(inits)
        for op_index, rd, rs in ops:
            expected[rd] = _BINOPS[op_index][1](expected[rd], expected[rs])
        assert machine.registers[:6] == expected

    @given(inits=_inits, ops=_ops)
    @settings(max_examples=50, deadline=None)
    def test_trace_counts_every_instruction_word(self, inits, ops):
        source = _build_program(inits, ops)
        program = assemble(source, word_size=2)
        machine = Machine(program)
        result = machine.run()
        assert result.halted
        expected_words = sum(inst.words for inst in program.instructions)
        assert len(result.trace) == expected_words
        assert all(a.kind is AccessType.IFETCH for a in result.trace)

    @given(inits=_inits, ops=_ops, word_size=st.sampled_from([2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_word_size_does_not_change_semantics(self, inits, ops, word_size):
        source = _build_program(inits, ops)
        machine = Machine(assemble(source, word_size=word_size))
        machine.run()
        reference = Machine(assemble(source, word_size=2))
        reference.run()
        # r6/r7 (fp/sp) are layout-dependent; the computation is not.
        assert machine.registers[:6] == reference.registers[:6]

    @given(
        inits=_inits,
        ops=_ops,
        budget=st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_step_budget_is_respected(self, inits, ops, budget):
        source = _build_program(inits, ops)
        machine = Machine(assemble(source, word_size=2))
        result = machine.run(max_steps=budget)
        assert result.steps <= budget
