"""Minimum-cache and instruction-buffer tests (Section 2.2)."""

import pytest

from repro.core.sim import simulate
from repro.errors import ConfigurationError
from repro.extensions.instruction_buffer import InstructionBuffer, minimum_cache
from repro.trace.filters import only_kind, reads_only
from repro.trace.record import AccessType


class TestMinimumCache:
    def test_paper_geometry_32bit(self):
        cache = minimum_cache(word_size=4)
        geometry = cache.geometry
        assert geometry.net_size == 128  # 32 words of 4 bytes
        assert geometry.num_blocks == 16
        assert geometry.block_size == 8  # 2 words
        assert geometry.sub_block_size == 4  # only the requested word
        assert geometry.ways == 2

    def test_paper_cost_estimate(self):
        # Section 2.2: "about 190 bytes of RAM".
        assert minimum_cache(word_size=4).geometry.gross_size == 190

    def test_random_replacement_is_seeded(self, z8000_grep_trace):
        trace = reads_only(z8000_grep_trace)
        first = simulate(minimum_cache(word_size=2, seed=7), trace).miss_ratio
        second = simulate(minimum_cache(word_size=2, seed=7), trace).miss_ratio
        assert first == second

    def test_cuts_references_substantially(self, z8000_grep_trace):
        # Section 5: a minimum cache cuts memory references by about a
        # third on the 16-bit workloads; ours does at least that well.
        stats = simulate(
            minimum_cache(word_size=2), reads_only(z8000_grep_trace)
        )
        assert stats.miss_ratio < 0.67
        assert stats.traffic_ratio() < 1.0


class TestInstructionBufferValidation:
    def test_bad_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionBuffer(blocks=0)

    def test_block_smaller_than_word_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionBuffer(block_size=2, word_size=4)


class TestSequentialBuffer:
    def test_sequential_run_hits_after_first(self):
        buf = InstructionBuffer(blocks=1, block_size=8, word_size=4)
        assert buf.access(0x100) is False
        assert buf.access(0x104) is True
        assert buf.access(0x108) is False  # next block

    def test_does_not_reduce_bytes_from_memory(self, z8000_grep_trace):
        # Section 2.2: buffers without branch-target recognition do not
        # reduce memory bytes — traffic ratio >= 1 on looping code.
        buf = InstructionBuffer(blocks=1, block_size=8, word_size=2)
        for access in only_kind(z8000_grep_trace, AccessType.IFETCH):
            buf.access(access.addr)
        assert buf.stats.traffic_ratio() >= 1.0

    def test_backward_jump_misses(self):
        buf = InstructionBuffer(blocks=4, block_size=8, word_size=4)
        buf.access(0x100)
        buf.access(0x108)
        # 0x100 is still resident but a sequential-only buffer cannot
        # recognize the branch target.
        assert buf.access(0x100) is False


class TestBranchAwareBuffer:
    def test_loop_fits(self):
        buf = InstructionBuffer(
            blocks=4, block_size=8, word_size=4, recognize_branch_targets=True
        )
        loop = [0x100, 0x104, 0x108, 0x10C]
        for _ in range(10):
            for addr in loop:
                buf.access(addr)
        assert buf.stats.misses == 2  # only the two cold block loads

    def test_eviction_when_working_set_exceeds_buffers(self):
        buf = InstructionBuffer(
            blocks=2, block_size=8, word_size=4, recognize_branch_targets=True
        )
        for addr in (0x100, 0x200, 0x300):
            buf.access(addr)
        assert buf.stats.evictions == 1
        assert buf.access(0x100) is False  # evicted

    def test_beats_sequential_buffer_on_loops(self, z8000_grep_trace):
        ifetches = only_kind(z8000_grep_trace, AccessType.IFETCH)
        sequential = InstructionBuffer(blocks=4, block_size=16, word_size=2)
        aware = InstructionBuffer(
            blocks=4, block_size=16, word_size=2, recognize_branch_targets=True
        )
        for access in ifetches:
            sequential.access(access.addr)
            aware.access(access.addr)
        assert aware.stats.miss_ratio < sequential.stats.miss_ratio
