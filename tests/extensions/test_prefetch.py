"""Sequential-prefetch extension tests."""

import pytest

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.sim import simulate
from repro.errors import ConfigurationError
from repro.extensions.prefetch import simulate_with_prefetch
from repro.trace.filters import reads_only
from repro.trace.record import Trace


def make_cache(word_size=2):
    return SubBlockCache(CacheGeometry(1024, 16, 8), word_size=word_size)


def sequential_trace(n=2000):
    return Trace([i * 2 for i in range(n)], [0] * n, 2)


class TestPolicies:
    def test_unknown_policy_rejected(self, z8000_grep_trace):
        with pytest.raises(ConfigurationError):
            simulate_with_prefetch(make_cache(), z8000_grep_trace, policy="psychic")

    def test_always_prefetches_most(self, z8000_grep_trace):
        trace = reads_only(z8000_grep_trace)
        counts = {}
        for policy in ("always", "on-miss", "tagged"):
            cache = make_cache()
            simulate_with_prefetch(cache, trace, policy=policy, warmup=0)
            counts[policy] = cache.stats.prefetches
        assert counts["always"] >= counts["tagged"] >= counts["on-miss"]

    def test_sequential_stream_prefetch_eliminates_most_misses(self):
        trace = sequential_trace()
        demand = make_cache()
        simulate(demand, trace, warmup=0)
        prefetching = make_cache()
        simulate_with_prefetch(prefetching, trace, policy="tagged", warmup=0)
        assert prefetching.stats.misses < demand.stats.misses / 2

    def test_prefetching_reduces_misses_on_real_workload(self, z8000_grep_trace):
        trace = reads_only(z8000_grep_trace)
        demand = make_cache()
        simulate(demand, trace, warmup=0)
        prefetching = make_cache()
        simulate_with_prefetch(prefetching, trace, policy="tagged", warmup=0)
        assert prefetching.stats.miss_ratio <= demand.stats.miss_ratio

    def test_pollution_shows_up_as_extra_traffic(self, z8000_grep_trace):
        # The paper's trade-off: prefetching risks fetching data never
        # used — traffic must not decrease.
        trace = reads_only(z8000_grep_trace)
        demand = make_cache()
        simulate(demand, trace, warmup=0)
        prefetching = make_cache()
        simulate_with_prefetch(prefetching, trace, policy="always", warmup=0)
        assert (
            prefetching.stats.bytes_fetched >= demand.stats.bytes_fetched
        )


class TestWarmup:
    def test_fill_warmup_resets_stats(self):
        trace = sequential_trace(4000)
        cache = make_cache()
        stats = simulate_with_prefetch(cache, trace, policy="tagged", warmup="fill")
        assert stats.accesses < 4000

    def test_count_warmup(self):
        trace = sequential_trace(1000)
        cache = make_cache()
        stats = simulate_with_prefetch(cache, trace, policy="tagged", warmup=500)
        assert stats.accesses == 500
