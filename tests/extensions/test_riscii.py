"""RISC II instruction cache, remote PC, and code-compaction tests."""

import pytest

from repro.core.sim import simulate
from repro.errors import ConfigurationError
from repro.extensions.riscii import (
    RemoteProgramCounter,
    compact_code,
    riscii_icache,
)
from repro.trace.filters import only_kind
from repro.trace.record import AccessType, Trace


@pytest.fixture(scope="module")
def instruction_trace():
    from repro.workloads.suites import suite_trace

    return only_kind(suite_trace("vax", "c2", length=20_000), AccessType.IFETCH)


class TestIcacheGeometry:
    def test_implemented_chip_shape(self):
        cache = riscii_icache()
        geometry = cache.geometry
        assert geometry.net_size == 512
        assert geometry.block_size == 8
        assert geometry.num_blocks == 64
        assert geometry.ways == 1  # direct-mapped

    def test_miss_declines_with_size(self, instruction_trace):
        misses = []
        for size in (512, 1024, 2048, 4096):
            stats = simulate(riscii_icache(size), instruction_trace, warmup="fill")
            misses.append(stats.miss_ratio)
        assert misses == sorted(misses, reverse=True)


class TestRemotePC:
    def test_sequential_stream_predicted_perfectly(self):
        rpc = RemoteProgramCounter(word_size=4)
        for addr in range(0x100, 0x200, 4):
            rpc.observe(addr)
        assert rpc.accuracy == 1.0

    def test_learns_a_loop_backedge(self):
        rpc = RemoteProgramCounter(word_size=4)
        loop = list(range(0x100, 0x120, 4))
        for _ in range(20):
            for addr in loop:
                rpc.observe(addr)
        # After the first iteration the back edge is in the table.
        assert rpc.accuracy > 0.9

    def test_random_jumps_predicted_poorly(self):
        import random

        rng = random.Random(0)
        rpc = RemoteProgramCounter(word_size=4)
        for _ in range(500):
            rpc.observe(rng.randrange(1024) * 4)
        assert rpc.accuracy < 0.2

    def test_workload_accuracy_is_high(self, instruction_trace):
        # Section 2.3: the chip predicted 89.9% of next addresses; our
        # synthetic instruction streams land in the same regime.
        rpc = RemoteProgramCounter(word_size=4)
        for access in instruction_trace:
            rpc.observe(access.addr)
        assert rpc.accuracy > 0.6

    def test_access_time_reduction_scales_with_accuracy(self):
        rpc = RemoteProgramCounter(word_size=4)
        for addr in range(0x100, 0x200, 4):
            rpc.observe(addr)
        assert rpc.access_time_reduction(hit_gain=0.47) == pytest.approx(0.47)

    def test_bad_table_size_rejected(self):
        with pytest.raises(ConfigurationError):
            RemoteProgramCounter(table_entries=48)


class TestCodeCompaction:
    def test_contracts_instruction_addresses_only(self):
        trace = Trace([1000, 2000, 3000], [2, 0, 2], 4)
        compacted = compact_code(trace, reduction=0.5)
        assert compacted.addrs[1] == 2000  # data untouched
        assert compacted.addrs[2] < 3000

    def test_word_alignment_preserved(self, instruction_trace):
        compacted = compact_code(instruction_trace, word_size=4)
        assert (compacted.addrs % 4 == 0).all()

    def test_improves_miss_ratio(self, instruction_trace):
        # Section 2.3: 20% compaction improved miss ratios by 27%; the
        # direction (and rough scale) must reproduce.
        plain = simulate(riscii_icache(512), instruction_trace, warmup="fill")
        compacted_trace = compact_code(instruction_trace, reduction=0.20)
        compact = simulate(riscii_icache(512), compacted_trace, warmup="fill")
        assert compact.miss_ratio < plain.miss_ratio

    def test_zero_reduction_is_identity_on_aligned_trace(self, instruction_trace):
        same = compact_code(instruction_trace, reduction=0.0)
        assert same == instruction_trace

    def test_bad_reduction_rejected(self, instruction_trace):
        with pytest.raises(ConfigurationError):
            compact_code(instruction_trace, reduction=1.0)
