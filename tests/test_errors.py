"""Exception hierarchy contract tests."""

import pytest

from repro.errors import (
    AssemblyError,
    ConfigurationError,
    MachineError,
    ReproError,
    TraceFormatError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        ConfigurationError,
        TraceFormatError,
        MachineError,
        AssemblyError,
    ):
        assert issubclass(exc_type, ReproError)


def test_configuration_error_is_value_error():
    assert issubclass(ConfigurationError, ValueError)


def test_trace_format_error_is_value_error():
    assert issubclass(TraceFormatError, ValueError)


def test_machine_error_is_runtime_error():
    assert issubclass(MachineError, RuntimeError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise AssemblyError("bad source")
