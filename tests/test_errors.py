"""Exception hierarchy contract tests."""

import pytest

from repro.errors import (
    AssemblyError,
    CellTimeoutError,
    ChecksumError,
    ConfigurationError,
    MachineError,
    ReproError,
    TraceFormatError,
    TransientError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        ConfigurationError,
        TraceFormatError,
        MachineError,
        AssemblyError,
        TransientError,
        CellTimeoutError,
        ChecksumError,
    ):
        assert issubclass(exc_type, ReproError)


def test_configuration_error_is_value_error():
    assert issubclass(ConfigurationError, ValueError)


def test_trace_format_error_is_value_error():
    assert issubclass(TraceFormatError, ValueError)


def test_machine_error_is_runtime_error():
    assert issubclass(MachineError, RuntimeError)


def test_transient_error_is_runtime_error():
    assert issubclass(TransientError, RuntimeError)


def test_cell_timeout_error_is_timeout_error():
    # `except TimeoutError` written by callers catches our timeouts too.
    assert issubclass(CellTimeoutError, TimeoutError)


def test_checksum_error_is_a_trace_format_error():
    # Integrity failures are a species of malformed input: code that
    # already handles TraceFormatError handles tampering for free.
    assert issubclass(ChecksumError, TraceFormatError)


def test_machine_error_carries_step_count():
    assert MachineError("boom", steps=42).steps == 42
    assert MachineError("boom").steps is None


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise AssemblyError("bad source")
