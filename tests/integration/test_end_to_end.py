"""End-to-end pipeline test: the full reproduction path in miniature.

Exercises every layer in one flow — generate a suite, sweep a grid,
format the table, build and render the figure, export CSV, and compare
shapes against the published data — at a trace length small enough to
run in seconds.
"""

import pytest

from repro.analysis import (
    TABLE7,
    ascii_figure,
    compare_shapes,
    figure_series,
    format_table7,
    series_to_csv,
    sweep,
    table7_experiment,
)
from repro.analysis.sweep import geometry_grid
from repro.trace import read_din, reads_only, write_din
from repro.workloads import Z8000_FIGURE_TRACES, suite_traces

LEN = 10_000


@pytest.fixture(scope="module")
def z8000_points():
    return table7_experiment("z8000", length=LEN)


class TestFullPipeline:
    def test_table_formatting_covers_all_points(self, z8000_points):
        text = format_table7("z8000", z8000_points)
        for point in z8000_points:
            assert point.geometry.label in text

    def test_shape_report_positive_even_at_short_length(self, z8000_points):
        measured = {
            (p.geometry.net_size, p.geometry.block_size, p.geometry.sub_block_size):
                p.miss_ratio
            for p in z8000_points
        }
        published = {k: v.miss_ratio for k, v in TABLE7["z8000"].items()}
        report = compare_shapes(measured, published)
        assert report.n == len(TABLE7["z8000"])
        assert report.spearman > 0.7  # even 10k-reference traces rank well

    def test_figure_pipeline_renders(self, z8000_points):
        by_net = {}
        for point in z8000_points:
            by_net.setdefault(point.geometry.net_size, []).append(point)
        series = figure_series(by_net)
        plot = ascii_figure(series, title="e2e")
        assert "e2e" in plot and "b16" in plot
        csv = series_to_csv(series)
        assert csv.startswith("net_size,series,solid,")
        assert len(csv.splitlines()) == 1 + sum(len(s.points) for s in series)

    def test_trace_round_trip_through_din_preserves_results(self, tmp_path):
        trace = reads_only(
            suite_traces("z8000", length=LEN, names=("GREP",))[0]
        )
        path = tmp_path / "grep.din"
        write_din(trace, path)
        reloaded = read_din(path, size=2)
        grid = geometry_grid([256])
        original = sweep([trace], grid, word_size=2, filter_writes=False)
        replayed = sweep([reloaded], grid, word_size=2, filter_writes=False)
        for a, b in zip(original, replayed):
            assert a.miss_ratio == b.miss_ratio
            assert a.traffic_ratio == b.traffic_ratio

    def test_sweep_is_deterministic_across_calls(self):
        traces = [
            reads_only(t)
            for t in suite_traces("z8000", length=LEN, names=Z8000_FIGURE_TRACES[:2])
        ]
        grid = geometry_grid([128])
        first = sweep(traces, grid, word_size=2, filter_writes=False)
        second = sweep(traces, grid, word_size=2, filter_writes=False)
        assert [p.miss_ratio for p in first] == [p.miss_ratio for p in second]
