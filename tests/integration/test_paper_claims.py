"""Integration tests: the paper's qualitative claims must reproduce.

These are the shape targets from DESIGN.md Section 5 — each test
re-derives one of the paper's conclusions on this library's workload
substrate at a reduced trace length.
"""

import statistics

import pytest

from repro.analysis.sweep import sweep
from repro.core.config import CacheGeometry
from repro.core.fetch import LoadForwardFetch
from repro.core.sector import model85_cache, set_associative_equivalent
from repro.core.sim import simulate
from repro.trace.filters import reads_only
from repro.workloads.suites import (
    Z8000_FIGURE_TRACES,
    Z8000_LOADFORWARD_TRACES,
    suite_traces,
)

LEN = 40_000


@pytest.fixture(scope="module")
def z8000():
    return [reads_only(t) for t in suite_traces("z8000", LEN, Z8000_FIGURE_TRACES)]


@pytest.fixture(scope="module")
def pdp11():
    return [reads_only(t) for t in suite_traces("pdp11", LEN)]


@pytest.fixture(scope="module")
def vax():
    return [reads_only(t) for t in suite_traces("vax", LEN)]


@pytest.fixture(scope="module")
def s370():
    return [reads_only(t) for t in suite_traces("s370", LEN)]


def suite_miss(traces, geometry, word, **kwargs):
    point = sweep(traces, [geometry], word_size=word, filter_writes=False, **kwargs)[0]
    return point


class TestClaim1MissDeclinesWithCacheSize:
    """Section 3.1: miss ratio declines monotonically with cache size."""

    def test_pdp11(self, pdp11):
        misses = [
            suite_miss(pdp11, CacheGeometry(net, 16, 8), 2).miss_ratio
            for net in (64, 128, 256, 512, 1024)
        ]
        assert misses == sorted(misses, reverse=True)

    def test_s370(self, s370):
        misses = [
            suite_miss(s370, CacheGeometry(net, 16, 8), 4).miss_ratio
            for net in (64, 256, 1024)
        ]
        assert misses == sorted(misses, reverse=True)


class TestClaim2SubBlockTradeoff:
    """Section 4.2: shrinking the sub-block raises miss ratio and cuts
    traffic ratio, at fixed block and net size."""

    @pytest.mark.parametrize("net,block", [(256, 16), (1024, 32)])
    def test_pdp11_tradeoff(self, pdp11, net, block):
        misses, traffics = [], []
        sub = block
        while sub >= 2:
            point = suite_miss(pdp11, CacheGeometry(net, block, sub), 2)
            misses.append(point.miss_ratio)
            traffics.append(point.traffic_ratio)
            sub //= 2
        assert misses == sorted(misses)  # grows as sub shrinks
        assert traffics == sorted(traffics, reverse=True)  # falls


class TestClaim3TrafficAmplification:
    """Section 4.2.1: one-word sub-blocks never amplify traffic; small
    caches with large sub-blocks can."""

    def test_word_sub_blocks_bounded(self, pdp11):
        for block in (2, 4, 8, 16):
            point = suite_miss(pdp11, CacheGeometry(64, block, 2), 2)
            assert point.traffic_ratio <= 1.0

    def test_small_cache_large_sub_block_amplifies(self, s370):
        point = suite_miss(s370, CacheGeometry(64, 16, 16), 4)
        assert point.traffic_ratio > 1.0


class TestClaim5ArchitectureOrdering:
    """Section 4.2.5: Z8000 < PDP-11 < VAX-11 < System/370 miss ratios."""

    def test_reference_configuration(self, z8000, pdp11, vax, s370):
        geometry = CacheGeometry(1024, 16, 8)
        ordered = [
            suite_miss(z8000, geometry, 2).miss_ratio,
            suite_miss(pdp11, geometry, 2).miss_ratio,
            suite_miss(vax, geometry, 4).miss_ratio,
            suite_miss(s370, geometry, 4).miss_ratio,
        ]
        assert ordered == sorted(ordered)


class TestClaim6SectorCache:
    """Section 4.1: the 360/85 mapping performs ~3x worse than 4-way
    set-associative, and most sub-blocks are never referenced."""

    @pytest.fixture(scope="class")
    def mainframe(self):
        return [reads_only(t) for t in suite_traces("mainframe", 60_000)]

    def test_sector_loses_by_a_wide_margin(self, mainframe):
        sector_misses, assoc_misses = [], []
        for trace in mainframe:
            sector_misses.append(
                simulate(model85_cache(), trace, warmup="fill").miss_ratio
            )
            assoc_misses.append(
                simulate(
                    set_associative_equivalent(4), trace, warmup="fill"
                ).miss_ratio
            )
        ratio = statistics.mean(sector_misses) / statistics.mean(assoc_misses)
        assert ratio > 2.0  # the paper measured ~2.9x

    def test_most_sector_sub_blocks_never_referenced(self, mainframe):
        utils = []
        for trace in mainframe:
            cache = model85_cache()
            simulate(cache, trace, warmup="fill", flush_at_end=True)
            utils.append(cache.stats.mean_eviction_utilization)
        assert statistics.mean(utils) < 0.5  # paper: 0.28 referenced


class TestClaim7NibbleModeDoublesOptimalSubBlock:
    """Section 4.3: under the a + b*w bus model the sub-block size that
    minimizes (scaled) traffic grows."""

    def test_optimum_shifts_up(self, pdp11):
        block = 16
        subs = [2, 4, 8, 16]
        points = [
            suite_miss(pdp11, CacheGeometry(512, block, sub), 2) for sub in subs
        ]
        standard_best = subs[min(range(4), key=lambda i: points[i].traffic_ratio)]
        scaled_best = subs[
            min(range(4), key=lambda i: points[i].scaled_traffic_ratio)
        ]
        assert scaled_best >= 2 * standard_best


class TestClaim8LoadForward:
    """Section 4.4: load-forward roughly keeps the big-block miss ratio
    while cutting traffic versus full-block fetch; few redundant loads."""

    @pytest.fixture(scope="class")
    def lf_traces(self):
        return [
            reads_only(t)
            for t in suite_traces("z8000", LEN, Z8000_LOADFORWARD_TRACES)
        ]

    def test_traffic_cut_for_small_miss_cost(self, lf_traces):
        geometry_full = CacheGeometry(256, 16, 16)
        geometry_lf = CacheGeometry(256, 16, 2)
        full = suite_miss(lf_traces, geometry_full, 2)
        forward = sweep(
            lf_traces, [geometry_lf], word_size=2,
            fetch=LoadForwardFetch(), filter_writes=False,
        )[0]
        assert forward.traffic_ratio < full.traffic_ratio
        assert forward.miss_ratio < 1.8 * full.miss_ratio

    def test_load_forward_beats_demand_small_sub_on_miss(self, lf_traces):
        geometry = CacheGeometry(256, 16, 2)
        demand = suite_miss(lf_traces, geometry, 2)
        forward = sweep(
            lf_traces, [geometry], word_size=2,
            fetch=LoadForwardFetch(), filter_writes=False,
        )[0]
        assert forward.miss_ratio < demand.miss_ratio


class TestClaim9SecondOrderEffects:
    """Strecker via Section 3.1: replacement policy and associativity
    beyond 4 are second-order effects."""

    def test_replacement_policies_comparable(self, z8000):
        geometry = CacheGeometry(1024, 16, 8)
        ratios = [
            sweep(z8000, [geometry], word_size=2,
                  replacement=name, filter_writes=False)[0].miss_ratio
            for name in ("lru", "fifo", "random")
        ]
        assert max(ratios) < 2.5 * min(ratios) + 0.01

    def test_associativity_beyond_four_gains_little(self, pdp11):
        misses = {}
        for ways in (1, 2, 4, 8):
            geometry = CacheGeometry(1024, 16, 8, associativity=ways)
            misses[ways] = suite_miss(pdp11, geometry, 2).miss_ratio
        gain_1_to_4 = misses[1] - misses[4]
        gain_4_to_8 = misses[4] - misses[8]
        assert misses[1] >= misses[2] >= misses[4]
        assert gain_4_to_8 < gain_1_to_4
