"""Property-based tests for the trace layer (hypothesis)."""

import io

from hypothesis import given, settings, strategies as st

from repro.trace.filters import interleave, mask_addresses, reads_only, truncate
from repro.trace.reader import read_din
from repro.trace.record import AccessType, Trace
from repro.trace.writer import write_din

traces = st.builds(
    lambda addrs, kinds: Trace(addrs, kinds[: len(addrs)] + [0] * max(0, len(addrs) - len(kinds)), 2, name="t"),
    addrs=st.lists(st.integers(0, 1 << 20), max_size=200),
    kinds=st.lists(st.integers(0, 2), max_size=200),
)


class TestRoundtrips:
    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_din_roundtrip_preserves_trace(self, trace):
        buffer = io.StringIO()
        write_din(trace, buffer)
        buffer.seek(0)
        assert read_din(buffer, size=2, name="t") == trace

    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_from_accesses_roundtrip(self, trace):
        assert Trace.from_accesses(list(trace), name="t") == trace


class TestFilterProperties:
    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_reads_only_removes_exactly_the_writes(self, trace):
        filtered = reads_only(trace)
        assert filtered.count(AccessType.WRITE) == 0
        assert len(filtered) == len(trace) - trace.count(AccessType.WRITE)

    @given(trace=traces, limit=st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_truncate_is_prefix(self, trace, limit):
        cut = truncate(trace, limit)
        assert len(cut) == min(limit, len(trace))
        assert cut == trace[: len(cut)]

    @given(trace=traces, bits=st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_mask_bounds_addresses(self, trace, bits):
        masked = mask_addresses(trace, bits)
        if len(masked):
            assert masked.addrs.max() < (1 << bits)
        assert len(masked) == len(trace)

    @given(a=traces, b=traces, quantum=st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_interleave_preserves_multiset(self, a, b, quantum):
        merged = interleave([a, b], quantum=quantum)
        assert len(merged) == len(a) + len(b)
        assert sorted(merged.addrs.tolist()) == sorted(
            a.addrs.tolist() + b.addrs.tolist()
        )

    @given(a=traces, quantum=st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_interleave_single_trace_is_identity(self, a, quantum):
        assert interleave([a], quantum=quantum) == a


class TestConcatenationProperties:
    @given(a=traces, b=traces)
    @settings(max_examples=40, deadline=None)
    def test_concat_lengths_add(self, a, b):
        assert len(a + b) == len(a) + len(b)

    @given(a=traces, b=traces, c=traces)
    @settings(max_examples=30, deadline=None)
    def test_concat_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)
