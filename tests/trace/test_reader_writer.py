"""Trace file-format tests: din text and npz binary."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.trace.reader import read_din, read_npz
from repro.trace.record import Trace
from repro.trace.writer import write_din, write_npz


class TestDinFormat:
    def test_roundtrip_stream(self, tiny_trace):
        buffer = io.StringIO()
        write_din(tiny_trace, buffer)
        buffer.seek(0)
        back = read_din(buffer, size=2, name="tiny")
        assert back == tiny_trace

    def test_roundtrip_file(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.din"
        write_din(tiny_trace, path)
        back = read_din(path, size=2)
        assert back.addrs.tolist() == tiny_trace.addrs.tolist()
        assert back.name == "trace"  # stem becomes the name

    def test_parse_basic(self):
        trace = read_din(io.StringIO("2 100\n0 1f4\n1 200\n"), size=4)
        assert trace.kinds.tolist() == [2, 0, 1]
        assert trace.addrs.tolist() == [0x100, 0x1F4, 0x200]
        assert trace.sizes.tolist() == [4, 4, 4]

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n2 10\n   \n# more\n0 20\n"
        assert len(read_din(io.StringIO(text))) == 2

    def test_bad_label_rejected(self):
        with pytest.raises(TraceFormatError, match="label"):
            read_din(io.StringIO("7 100\n"))

    def test_bad_address_rejected(self):
        with pytest.raises(TraceFormatError, match="address"):
            read_din(io.StringIO("0 zz\n"))

    def test_wrong_field_count_rejected(self):
        with pytest.raises(TraceFormatError):
            read_din(io.StringIO("0 100 extra\n"))

    def test_error_reports_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            read_din(io.StringIO("0 100\nbogus\n"))


class TestNpzFormat:
    def test_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(tiny_trace, path)
        back = read_npz(path)
        assert back == tiny_trace
        assert back.name == "tiny"

    def test_preserves_mixed_sizes(self, tmp_path):
        trace = Trace([0, 4], [0, 2], [2, 4], name="mixed")
        path = tmp_path / "mixed.npz"
        write_npz(trace, path)
        assert read_npz(path).sizes.tolist() == [2, 4]

    def test_rejects_foreign_npz(self, tmp_path):
        import numpy as np

        path = tmp_path / "foreign.npz"
        np.savez(path, unrelated=np.arange(4))
        with pytest.raises(TraceFormatError):
            read_npz(path)
