"""Trace file-format tests: din text and npz binary."""

import io

import pytest

from repro.errors import ChecksumError, TraceFormatError
from repro.trace.reader import MAX_ADDRESS, read_din, read_din_report, read_npz
from repro.trace.record import Trace
from repro.trace.writer import write_din, write_npz


class TestDinFormat:
    def test_roundtrip_stream(self, tiny_trace):
        buffer = io.StringIO()
        write_din(tiny_trace, buffer)
        buffer.seek(0)
        back = read_din(buffer, size=2, name="tiny")
        assert back == tiny_trace

    def test_roundtrip_file(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.din"
        write_din(tiny_trace, path)
        back = read_din(path, size=2)
        assert back.addrs.tolist() == tiny_trace.addrs.tolist()
        assert back.name == "trace"  # stem becomes the name

    def test_parse_basic(self):
        trace = read_din(io.StringIO("2 100\n0 1f4\n1 200\n"), size=4)
        assert trace.kinds.tolist() == [2, 0, 1]
        assert trace.addrs.tolist() == [0x100, 0x1F4, 0x200]
        assert trace.sizes.tolist() == [4, 4, 4]

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n2 10\n   \n# more\n0 20\n"
        assert len(read_din(io.StringIO(text))) == 2

    def test_bad_label_rejected(self):
        with pytest.raises(TraceFormatError, match="label"):
            read_din(io.StringIO("7 100\n"))

    def test_bad_address_rejected(self):
        with pytest.raises(TraceFormatError, match="address"):
            read_din(io.StringIO("0 zz\n"))

    def test_wrong_field_count_rejected(self):
        with pytest.raises(TraceFormatError):
            read_din(io.StringIO("0 100 extra\n"))

    def test_error_reports_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            read_din(io.StringIO("0 100\nbogus\n"))

    def test_negative_address_rejected_with_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2.*negative"):
            read_din(io.StringIO("0 100\n0 -20\n"))

    def test_oversized_address_rejected(self):
        huge = f"0 {MAX_ADDRESS:x}\n"
        with pytest.raises(TraceFormatError, match="address-space limit"):
            read_din(io.StringIO(huge))


class TestDinLenientMode:
    TEXT = "0 100\nbogus\n7 100\n0 zz\n0 -4\n2 200\n"

    def test_strict_remains_the_default(self):
        with pytest.raises(TraceFormatError):
            read_din(io.StringIO(self.TEXT))

    def test_lenient_skips_and_keeps_the_good_lines(self):
        trace = read_din(io.StringIO(self.TEXT), lenient=True)
        assert trace.addrs.tolist() == [0x100, 0x200]
        assert trace.kinds.tolist() == [0, 2]

    def test_report_counts_and_names_lines(self):
        report = read_din_report(io.StringIO(self.TEXT), lenient=True)
        assert report.n_skipped == 4
        assert [lineno for lineno, _ in report.skipped] == [2, 3, 4, 5]
        assert "label" in report.skipped[1][1]
        assert "negative" in report.skipped[3][1]

    def test_clean_input_reports_nothing_skipped(self):
        report = read_din_report(io.StringIO("0 100\n2 200\n"), lenient=True)
        assert report.n_skipped == 0
        assert len(report.trace) == 2


class TestNpzFormat:
    def test_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(tiny_trace, path)
        back = read_npz(path)
        assert back == tiny_trace
        assert back.name == "tiny"

    def test_preserves_mixed_sizes(self, tmp_path):
        trace = Trace([0, 4], [0, 2], [2, 4], name="mixed")
        path = tmp_path / "mixed.npz"
        write_npz(trace, path)
        assert read_npz(path).sizes.tolist() == [2, 4]

    def test_rejects_foreign_npz(self, tmp_path):
        import numpy as np

        path = tmp_path / "foreign.npz"
        np.savez(path, unrelated=np.arange(4))
        with pytest.raises(TraceFormatError):
            read_npz(path)


class TestNpzChecksum:
    def test_tampered_content_raises_checksum_error(self, tiny_trace, tmp_path):
        import numpy as np

        path = tmp_path / "trace.npz"
        write_npz(tiny_trace, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["addrs"] = arrays["addrs"].copy()
        arrays["addrs"][0] += 2  # bit-flip the payload, keep the checksum
        np.savez_compressed(path, **arrays)
        with pytest.raises(ChecksumError, match="checksum"):
            read_npz(path)

    def test_verification_can_be_disabled(self, tiny_trace, tmp_path):
        import numpy as np

        path = tmp_path / "trace.npz"
        write_npz(tiny_trace, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["checksum"] = np.array("0" * 64)
        np.savez_compressed(path, **arrays)
        assert len(read_npz(path, verify=False)) == len(tiny_trace)

    def test_legacy_file_without_checksum_still_loads(self, tiny_trace, tmp_path):
        import numpy as np

        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            addrs=tiny_trace.addrs,
            kinds=tiny_trace.kinds,
            sizes=tiny_trace.sizes,
            name=np.array(tiny_trace.name),
        )
        assert read_npz(path) == tiny_trace
