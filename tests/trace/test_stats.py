"""Locality-diagnostics tests."""

import numpy as np

from repro.trace.record import Trace
from repro.trace.stats import (
    profile_trace,
    run_length_histogram,
    working_set_curve,
)


class TestRunLengthHistogram:
    def test_pure_sequential(self):
        histogram = run_length_histogram(np.arange(10))
        assert histogram == {10: 1}

    def test_alternating(self):
        histogram = run_length_histogram(np.array([0, 5, 0, 5]))
        assert histogram == {1: 4}

    def test_mixed_runs(self):
        histogram = run_length_histogram(np.array([0, 1, 2, 9, 10, 4]))
        assert histogram == {3: 1, 2: 1, 1: 1}

    def test_empty(self):
        assert run_length_histogram(np.array([])) == {}


class TestProfileTrace:
    def test_empty_trace(self):
        profile = profile_trace(Trace([], [], []))
        assert profile.length == 0
        assert profile.unique_words == 0

    def test_fraction_fields(self, tiny_trace):
        profile = profile_trace(tiny_trace)
        assert profile.ifetch_fraction == 0.5
        assert profile.write_fraction == 0.1

    def test_unique_words(self):
        trace = Trace([0, 2, 0, 2, 4], [0] * 5, 2)
        assert profile_trace(trace, word=2).unique_words == 3

    def test_forward_bias_of_sequential_stream(self):
        trace = Trace(list(range(0, 100, 2)), [2] * 50, 2)
        profile = profile_trace(trace)
        assert profile.forward_bias == 1.0

    def test_workload_traces_have_forward_bias(self, z8000_grep_trace):
        # Section 4.4: program and data references exhibit forward bias.
        profile = profile_trace(z8000_grep_trace)
        assert profile.forward_bias > 0.5

    def test_workload_traces_have_sequential_runs(self, z8000_grep_trace):
        profile = profile_trace(z8000_grep_trace)
        assert profile.mean_run_length > 1.0


class TestWorkingSetCurve:
    def test_window_counts(self):
        trace = Trace([0, 0, 2, 2, 4, 6], [0] * 6, 2)
        assert working_set_curve(trace, window=2, word=2) == [1, 1, 2]

    def test_partial_window_dropped(self):
        trace = Trace([0, 2, 4], [0] * 3, 2)
        assert working_set_curve(trace, window=2, word=2) == [2]

    def test_larger_working_set_for_larger_workload(
        self, z8000_grep_trace, vax_c2_trace
    ):
        small = working_set_curve(z8000_grep_trace, window=4000, word=2)
        large = working_set_curve(vax_c2_trace, window=4000, word=4)
        assert sum(large) / len(large) > sum(small) / len(small)
