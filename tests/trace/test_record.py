"""Unit tests for trace records and the Trace container."""

import pytest

from repro.errors import TraceFormatError
from repro.trace.record import Access, AccessType, Trace


class TestAccessType:
    def test_din_codes(self):
        assert int(AccessType.READ) == 0
        assert int(AccessType.WRITE) == 1
        assert int(AccessType.IFETCH) == 2

    def test_is_fetch_or_read(self):
        assert AccessType.READ.is_fetch_or_read
        assert AccessType.IFETCH.is_fetch_or_read
        assert not AccessType.WRITE.is_fetch_or_read


class TestAccess:
    def test_fields(self):
        access = Access(0x1234, AccessType.READ, 2)
        assert access.addr == 0x1234
        assert access.kind is AccessType.READ
        assert access.size == 2

    def test_str(self):
        assert str(Access(0x10, AccessType.IFETCH, 4)) == "IFETCH@0x10/4"


class TestTraceConstruction:
    def test_scalar_size_broadcasts(self):
        trace = Trace([0, 2, 4], [0, 1, 2], 2)
        assert trace.sizes.tolist() == [2, 2, 2]

    def test_per_access_sizes(self):
        trace = Trace([0, 2], [0, 0], [2, 4])
        assert trace.sizes.tolist() == [2, 4]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceFormatError):
            Trace([0, 2], [0], 2)

    def test_negative_address_rejected(self):
        with pytest.raises(TraceFormatError):
            Trace([-4], [0], 2)

    def test_empty_trace(self):
        trace = Trace([], [], [])
        assert len(trace) == 0
        assert trace.total_bytes == 0
        assert trace.address_span() == 0

    def test_from_accesses_roundtrip(self, tiny_trace):
        rebuilt = Trace.from_accesses(list(tiny_trace), name="tiny")
        assert rebuilt == tiny_trace

    def test_from_accesses_empty(self):
        assert len(Trace.from_accesses([])) == 0


class TestTraceBehaviour:
    def test_iteration_yields_access_tuples(self, tiny_trace):
        first = next(iter(tiny_trace))
        assert isinstance(first, Access)
        assert first.kind is AccessType.IFETCH

    def test_len(self, tiny_trace):
        assert len(tiny_trace) == 10

    def test_indexing(self, tiny_trace):
        assert tiny_trace[2] == Access(0x200, AccessType.READ, 2)

    def test_slicing_preserves_name(self, tiny_trace):
        sliced = tiny_trace[:3]
        assert len(sliced) == 3
        assert sliced.name == "tiny"

    def test_equality(self, tiny_trace):
        assert tiny_trace == tiny_trace[:]
        assert tiny_trace != tiny_trace[:5]

    def test_concatenation(self, tiny_trace):
        both = tiny_trace + tiny_trace
        assert len(both) == 20
        assert both[10] == tiny_trace[0]

    def test_concatenation_keeps_left_name(self, tiny_trace):
        other = Trace([0], [0], 2, name="other")
        assert (tiny_trace + other).name == "tiny"

    def test_unhashable(self, tiny_trace):
        with pytest.raises(TypeError):
            hash(tiny_trace)

    def test_repr_contains_name_and_len(self, tiny_trace):
        assert "tiny" in repr(tiny_trace)
        assert "10" in repr(tiny_trace)


class TestTraceStatsHelpers:
    def test_total_bytes(self, tiny_trace):
        assert tiny_trace.total_bytes == 20

    def test_count_by_kind(self, tiny_trace):
        assert tiny_trace.count(AccessType.IFETCH) == 5
        assert tiny_trace.count(AccessType.READ) == 4
        assert tiny_trace.count(AccessType.WRITE) == 1

    def test_unique_addresses(self, tiny_trace):
        assert tiny_trace.unique_addresses() == 6

    def test_address_span(self, tiny_trace):
        assert tiny_trace.address_span() == 0x300 - 0x100
