"""Trace transform tests."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.filters import (
    align_addresses,
    interleave,
    mask_addresses,
    only_kind,
    reads_only,
    truncate,
)
from repro.trace.record import AccessType, Trace


class TestReadsOnly:
    def test_drops_writes(self, tiny_trace):
        filtered = reads_only(tiny_trace)
        assert filtered.count(AccessType.WRITE) == 0
        assert len(filtered) == 9

    def test_preserves_order(self, tiny_trace):
        filtered = reads_only(tiny_trace)
        expected = [a.addr for a in tiny_trace if a.kind is not AccessType.WRITE]
        assert filtered.addrs.tolist() == expected

    def test_idempotent(self, tiny_trace):
        once = reads_only(tiny_trace)
        assert reads_only(once) == once


class TestOnlyKind:
    def test_ifetch_only(self, tiny_trace):
        ifetches = only_kind(tiny_trace, AccessType.IFETCH)
        assert len(ifetches) == 5
        assert set(ifetches.kinds.tolist()) == {int(AccessType.IFETCH)}


class TestTruncate:
    def test_limits_length(self, tiny_trace):
        assert len(truncate(tiny_trace, 4)) == 4

    def test_longer_than_trace_is_noop(self, tiny_trace):
        assert truncate(tiny_trace, 100) == tiny_trace

    def test_negative_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            truncate(tiny_trace, -1)


class TestMaskAddresses:
    def test_folds_into_space(self):
        trace = Trace([0x1FFFF, 0x10000, 0x00FF], [0, 0, 0], 2)
        masked = mask_addresses(trace, 16)
        assert masked.addrs.tolist() == [0xFFFF, 0x0000, 0x00FF]

    def test_bad_bits_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            mask_addresses(tiny_trace, 0)


class TestAlignAddresses:
    def test_rounds_down(self):
        trace = Trace([1, 5, 8], [0, 0, 0], 1)
        assert align_addresses(trace, 4).addrs.tolist() == [0, 4, 8]

    def test_bad_word_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            align_addresses(tiny_trace, 0)


class TestInterleave:
    def test_round_robin_quantum(self):
        a = Trace([0, 2, 4, 6], [0] * 4, 2, name="a")
        b = Trace([100, 102], [0] * 2, 2, name="b")
        merged = interleave([a, b], quantum=2)
        assert merged.addrs.tolist() == [0, 2, 100, 102, 4, 6]

    def test_preserves_all_accesses(self, tiny_trace, random_trace):
        merged = interleave([tiny_trace, random_trace], quantum=7)
        assert len(merged) == len(tiny_trace) + len(random_trace)
        assert sorted(merged.addrs.tolist()) == sorted(
            tiny_trace.addrs.tolist() + random_trace.addrs.tolist()
        )

    def test_empty_input(self):
        assert len(interleave([], quantum=5)) == 0

    def test_bad_quantum_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            interleave([tiny_trace], quantum=0)

    def test_name_joins_components(self):
        a = Trace([0], [0], 2, name="a")
        b = Trace([2], [0], 2, name="b")
        assert interleave([a, b], quantum=1).name == "a+b"
