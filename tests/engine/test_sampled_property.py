"""Property tests for the sampled estimator (Hypothesis).

Two guarantees are strong enough to randomize:

* **Degenerate bit-identity** — a plan whose single interval spans the
  whole trace must reproduce the reference engine with ``==`` on every
  counter, not approximately (the estimator's scale factor
  short-circuits to exact integers when cluster total == interval
  length).
* **Two-interval coverage** — with two intervals and a one-interval
  priming budget, every simulated window reaches back to the trace
  start, so each measured interval is *exactly* its cold full-trace
  slice; the witness term then bounds the cross-interval disagreement
  and the true miss count must land inside the reported interval.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheGeometry
from repro.core.replacement import make_replacement
from repro.engine import ReferenceEngine
from repro.engine.sampled import (
    DICT_COUNTERS,
    SCALAR_COUNTERS,
    run_sampled,
)
from repro.staticcheck.phases import SamplingConfig, analyze_trace
from repro.trace.record import Trace

GEOMETRY = CacheGeometry(128, 16, 8, associativity=2)
REFERENCE = ReferenceEngine()


@st.composite
def traces(draw, min_size=2, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    addrs = draw(
        st.lists(
            st.integers(min_value=0, max_value=1023),
            min_size=n, max_size=n,
        )
    )
    kinds = draw(st.lists(st.sampled_from([0, 2]), min_size=n, max_size=n))
    return Trace(
        [a * 2 for a in addrs], kinds, 2, name="prop"
    )


def exact_cold(trace):
    return REFERENCE.run(
        GEOMETRY, trace, replacement=make_replacement("lru"),
        word_size=2, warmup=0,
    )


def sampled_for(trace, interval, k):
    config = SamplingConfig(interval=interval, k=k)
    plan = analyze_trace(trace, interval, k)
    return run_sampled(GEOMETRY, trace, plan, config, word_size=2)


@settings(max_examples=40, deadline=None)
@given(trace=traces())
def test_degenerate_plan_is_bit_identical(trace):
    sampled = sampled_for(trace, len(trace), 1)
    exact = exact_cold(trace).to_dict()
    for name in SCALAR_COUNTERS:
        assert sampled.estimates[name] == exact[name], name
    for name in DICT_COUNTERS:
        assert dict(sampled.estimates[name]) == exact[name], name
    assert all(half == 0.0 for half in sampled.half_widths.values())


@settings(max_examples=40, deadline=None)
@given(trace=traces(), k=st.sampled_from([1, 2]))
def test_two_interval_plan_covers_the_truth(trace, k):
    interval = (len(trace) + 1) // 2
    sampled = sampled_for(trace, interval, k)
    exact = exact_cold(trace)
    lo, hi = sampled.ci("misses")
    assert lo <= exact.to_dict()["misses"] <= hi
    lo, hi = sampled.miss_ratio_ci
    assert lo <= exact.miss_ratio <= hi


@settings(max_examples=25, deadline=None)
@given(
    trace=traces(min_size=4, max_size=80),
    interval=st.integers(min_value=1, max_value=20),
    k=st.integers(min_value=1, max_value=4),
)
def test_estimates_are_well_formed(trace, interval, k):
    sampled = sampled_for(trace, interval, k)
    # The access stream itself is never estimated, only replayed.
    assert sampled.estimates["accesses"] == pytest.approx(len(trace))
    assert sampled.total_accesses == len(trace)
    for name in SCALAR_COUNTERS + DICT_COUNTERS:
        lo, hi = sampled.ci(name)
        assert 0.0 <= lo <= hi
        assert sampled.half_widths[name] >= 0.0


@settings(max_examples=15, deadline=None)
@given(
    trace=traces(min_size=6, max_size=60),
    interval=st.integers(min_value=2, max_value=15),
    k=st.integers(min_value=1, max_value=3),
)
def test_sampling_is_deterministic(trace, interval, k):
    assert (
        sampled_for(trace, interval, k).to_dict()
        == sampled_for(trace, interval, k).to_dict()
    )
