"""TraceView: interning, cached filtering, shared decode products."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CacheGeometry
from repro.engine import TraceView
from repro.trace.filters import reads_only
from repro.trace.record import AccessType, Trace


def test_of_interns_per_trace_identity(tiny_trace):
    assert TraceView.of(tiny_trace) is TraceView.of(tiny_trace)


def test_distinct_traces_get_distinct_views(tiny_trace, random_trace):
    assert TraceView.of(tiny_trace) is not TraceView.of(random_trace)


def test_wraps_only_traces():
    with pytest.raises(TypeError):
        TraceView([1, 2, 3])


def test_reads_only_cached_and_correct(random_trace):
    view = TraceView.of(random_trace)
    filtered = view.reads_only()
    assert filtered is view.reads_only()  # materialized exactly once
    expected = reads_only(random_trace)
    assert np.array_equal(filtered.addrs, expected.addrs)
    assert np.array_equal(filtered.kinds, expected.kinds)
    assert not (filtered.kinds == int(AccessType.WRITE)).any()


def test_decode_products_shared_across_compatible_geometries(random_trace):
    view = TraceView.of(random_trace)
    # Same (block, sub, word): the demand arrays are shared across net
    # sizes and associativities ("decode once, simulate many").
    g1 = CacheGeometry(64, 16, 8)
    g2 = CacheGeometry(1024, 16, 8, associativity=2)
    needed1, span1, starts1 = view.demand(g1, 2)
    needed2, span2, starts2 = view.demand(g2, 2)
    assert needed1 is needed2 and span1 is span2 and starts1 is starts2
    # Different sub-block size: different masks.
    needed3, _, _ = view.demand(CacheGeometry(64, 16, 4), 2)
    assert needed3 is not needed1


def test_set_and_tag_reconstruct_block_address(random_trace):
    geometry = CacheGeometry(256, 16, 8, associativity=2)
    view = TraceView.of(random_trace)
    set_idx, tag = view.set_and_tag(geometry)
    block0 = random_trace.addrs // geometry.block_size
    assert np.array_equal(tag * geometry.num_sets + set_idx, block0)
    assert int(set_idx.max()) < geometry.num_sets


def test_needed_masks_match_scalar_decode(tiny_trace):
    geometry = CacheGeometry(64, 16, 4)
    view = TraceView.of(tiny_trace)
    needed, span, _ = view.demand(geometry, 2)
    for i, access in enumerate(tiny_trace):
        size = access.size or 2
        first = access.addr % geometry.block_size
        last = first + size - 1
        assert bool(span[i]) == (last >= geometry.block_size)
        if not span[i]:
            first_sub = first // geometry.sub_block_size
            last_sub = last // geometry.sub_block_size
            expected = ((1 << (last_sub - first_sub + 1)) - 1) << first_sub
            assert int(needed[i]) == expected


def test_registry_is_bounded():
    maxsize = TraceView._registry.maxsize
    traces = [
        Trace([i], [0], [2], name=f"t{i}") for i in range(maxsize + 8)
    ]
    views = [TraceView.of(t) for t in traces]
    assert len(TraceView._registry) <= maxsize
    # The most recent entry is still interned.
    assert TraceView.of(traces[-1]) is views[-1]
