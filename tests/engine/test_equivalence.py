"""Differential equivalence: vectorized must match reference exactly.

This suite is the engine layer's contract.  Every test simulates the
same (geometry, trace, policies, warmup) on both engines and asserts
that every :class:`~repro.core.stats.CacheStats` counter — including
the by-kind splits and the transaction-words histogram — is *equal*,
not approximately equal.  The randomized sweep covers well over 200
distinct combinations drawn from a seeded generator, so a semantics
drift in either engine fails deterministically.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.core.config import CacheGeometry
from repro.core.fetch import DemandFetch, LoadForwardFetch
from repro.core.misspath import MissPathConfig
from repro.core.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
)
from repro.core.write import WritePolicy
from repro.engine import CheckedEngine, ReferenceEngine, TraceView, VectorizedEngine
from repro.trace.record import Trace

# REPRO_SANITIZE=1 swaps the reference side of every comparison for the
# checked engine (identical semantics, per-access invariant assertions),
# so this suite doubles as the sanitizer smoke pass in CI.
REFERENCE = (
    CheckedEngine() if os.environ.get("REPRO_SANITIZE") else ReferenceEngine()
)
VECTORIZED = VectorizedEngine()

# REPRO_MISSPATH_EMPTY=1 replays the reference side of every comparison
# through the miss-path plumbing — once with an empty (disabled) config
# and once with a small full chain — and asserts every L1 counter is
# byte-identical to the bare run.  This is the miss-path refactor's
# equivalence tripwire: the chain must never alter L1 behavior, so the
# whole 220+-combo suite doubles as its invariance proof.
MISSPATH_TRIPWIRE = bool(os.environ.get("REPRO_MISSPATH_EMPTY"))
_TRIPWIRE_CHAINS = (
    MissPathConfig(),
    MissPathConfig(
        victim_entries=2,
        miss_entries=2,
        stream_buffers=2,
        stream_depth=2,
        l2_net_size=2048,
    ),
)

#: Every CacheStats counter an engine can produce.
_COUNTERS = (
    "accesses",
    "misses",
    "block_misses",
    "sub_block_misses",
    "accesses_by_kind",
    "misses_by_kind",
    "bytes_accessed",
    "bytes_fetched",
    "redundant_bytes_fetched",
    "transaction_words",
    "evictions",
    "evicted_sub_blocks_referenced",
    "evicted_sub_blocks_total",
    "writebacks",
    "bytes_written_back",
    "bytes_written_through",
    "prefetches",
)


def assert_identical(geometry, trace, **kwargs):
    """Run both engines and compare every counter exactly."""
    seed = kwargs.pop("replacement_seed", None)
    ref_kwargs = dict(kwargs)
    vec_kwargs = dict(kwargs)
    if seed is not None:
        # Fresh, identically-seeded policies per engine: the comparison
        # covers the RNG stream, not just the aggregate counts.
        ref_kwargs["replacement"] = RandomReplacement(seed=seed)
        vec_kwargs["replacement"] = RandomReplacement(seed=seed)
    ref = REFERENCE.run(geometry, trace, **ref_kwargs)
    vec = VECTORIZED.run(geometry, trace, **vec_kwargs)
    for counter in _COUNTERS:
        assert getattr(ref, counter) == getattr(vec, counter), (
            f"{counter} diverged for {geometry} over {trace!r} "
            f"({kwargs}): reference {getattr(ref, counter)!r} "
            f"!= vectorized {getattr(vec, counter)!r}"
        )
    if MISSPATH_TRIPWIRE:
        for miss_path in _TRIPWIRE_CHAINS:
            chained_kwargs = dict(kwargs)
            if seed is not None:
                chained_kwargs["replacement"] = RandomReplacement(seed=seed)
            chained = REFERENCE.run(
                geometry, trace, miss_path=miss_path, **chained_kwargs
            )
            for counter in _COUNTERS:
                assert getattr(ref, counter) == getattr(chained, counter), (
                    f"{counter} perturbed by miss path {miss_path.key()!r} "
                    f"for {geometry} over {trace!r} ({kwargs}): bare "
                    f"{getattr(ref, counter)!r} != chained "
                    f"{getattr(chained, counter)!r}"
                )
            if miss_path.enabled:
                assert chained.misspath is not None
                assert chained.misspath.demand_misses == (
                    ref.block_misses + ref.sub_block_misses
                )
            else:
                assert chained.misspath is None
    return ref


def _random_trace(rng, n, addr_space, max_size, spanning):
    """A synthetic trace mixing sequential ifetch runs and random data."""
    addrs, kinds, sizes = [], [], []
    pc = rng.randrange(addr_space)
    for _ in range(n):
        if rng.random() < 0.5:
            if rng.random() < 0.6:
                pc += rng.choice((0, 0, 2, 2, 4))
            else:
                pc = rng.randrange(addr_space)
            addrs.append(pc % addr_space)
            kinds.append(2)
            sizes.append(rng.choice((0, 2)))
        else:
            addrs.append(rng.randrange(addr_space))
            kinds.append(rng.choice((0, 0, 1)))
            sizes.append(
                rng.choice((0, 1, 2, 4) + ((max_size,) if spanning else ()))
            )
    return Trace(
        np.array(addrs, np.int64),
        np.array(kinds, np.uint8),
        np.array(sizes, np.uint8),
        name="rnd",
    )


def _random_combo(rng):
    """One random (geometry, trace, policies, warmup) combination."""
    while True:
        net = rng.choice((32, 64, 128, 256, 1024))
        block = rng.choice((4, 8, 16, 32))
        if block > net:
            continue
        sub = rng.choice([s for s in (1, 2, 4, 8, 16) if s <= block])
        assoc = rng.choice((1, 2, 4, 256))
        word = rng.choice([w for w in (1, 2, 4) if w <= sub])
        try:
            geometry = CacheGeometry(
                net_size=net, block_size=block,
                sub_block_size=sub, associativity=assoc,
            )
        except Exception:
            continue
        break
    n = rng.choice((0, 1, 5, 50, 400))
    trace = _random_trace(
        rng, n, rng.choice((64, 256, 4096)), 13, spanning=rng.random() < 0.5
    )
    replacement_cls = rng.choice(
        (LRUReplacement, FIFOReplacement, RandomReplacement)
    )
    kwargs = dict(
        fetch=rng.choice((DemandFetch(), LoadForwardFetch())),
        write_policy=rng.choice(list(WritePolicy)),
        word_size=word,
        warmup=rng.choice(("fill", 0, 1, n // 2, n, n + 3)),
        flush_at_end=rng.random() < 0.3,
    )
    if replacement_cls is RandomReplacement:
        kwargs["replacement_seed"] = rng.randrange(1 << 16)
    else:
        kwargs["replacement"] = replacement_cls()
    return geometry, trace, kwargs


@pytest.mark.parametrize("chunk", range(4))
def test_randomized_equivalence(chunk):
    """220+ randomized combos, exact counter equality on each."""
    rng = random.Random(1000 + chunk)
    for _ in range(55):
        geometry, trace, kwargs = _random_combo(rng)
        assert_identical(geometry, trace, **kwargs)


def test_real_workload_equivalence(z8000_grep_trace):
    for geometry in (
        CacheGeometry(64, 8, 4),
        CacheGeometry(256, 16, 8, associativity=2),
        CacheGeometry(1024, 16, 8),
    ):
        assert_identical(geometry, z8000_grep_trace)


def test_traceview_input_matches_trace_input(tiny_trace, small_geometry):
    direct = VECTORIZED.run(small_geometry, tiny_trace)
    viewed = VECTORIZED.run(small_geometry, TraceView.of(tiny_trace))
    assert direct.snapshot() == viewed.snapshot()
    assert direct.transaction_words == viewed.transaction_words


def test_empty_trace(small_geometry):
    empty = Trace([], [], [], name="empty")
    stats = assert_identical(small_geometry, empty)
    assert stats.accesses == 0


def test_warmup_boundaries(tiny_trace, small_geometry):
    n = len(tiny_trace)
    for warmup in (0, 1, n - 1, n, n + 1, "fill"):
        assert_identical(small_geometry, tiny_trace, warmup=warmup)


def test_write_back_dirty_eviction(random_trace):
    geometry = CacheGeometry(64, 8, 4, associativity=1)
    stats = assert_identical(
        geometry, random_trace,
        write_policy=WritePolicy.WRITE_BACK, flush_at_end=True,
    )
    assert stats.writebacks > 0  # the combo actually exercised the path


def test_spanning_accesses_hit_both_paths(small_geometry):
    # Accesses that cross block boundaries take the engines' scalar
    # multi-block paths; keep a dense fixed case for exact coverage.
    trace = Trace(
        [0, 12, 12, 28, 30, 60, 60, 2],
        [0, 0, 0, 2, 0, 1, 0, 2],
        [8, 12, 12, 2, 20, 6, 6, 2],
        name="span",
    )
    stats = assert_identical(small_geometry, trace, warmup=0)
    assert stats.accesses == len(trace)


def test_random_replacement_stream_parity(random_trace):
    # Same seed, same victim sequence — the vectorized engine must
    # consume the policy RNG exactly as the reference loop does.
    geometry = CacheGeometry(128, 16, 8, associativity=4)
    assert_identical(
        geometry, random_trace, replacement_seed=7, warmup=0,
        flush_at_end=True,
    )


def test_load_forward_redundant_bytes(z8000_grep_trace):
    geometry = CacheGeometry(256, 16, 4, associativity=2)
    stats = assert_identical(
        geometry, z8000_grep_trace, fetch=LoadForwardFetch()
    )
    assert stats.bytes_fetched > 0
