"""Miss-path threading through the engine layer.

Pins the three contracts the refactor added to the engines:

* an *empty* chain is indistinguishable from no chain on every engine
  that accepts one (the always-on edition of the ``REPRO_MISSPATH_EMPTY``
  tripwire in ``test_equivalence.py``);
* the vectorized engine refuses an *enabled* chain loudly, and
  :func:`resolve_engine` degrades both ``auto`` and explicit
  ``vectorized`` requests to ``reference`` instead;
* a chained run still matches the bare run counter-for-counter — the
  chain only adds the ``misspath`` block.
"""

from __future__ import annotations

import pytest

from repro.core.config import CacheGeometry
from repro.core.misspath import MissPathConfig
from repro.engine import (
    CheckedEngine,
    ReferenceEngine,
    TraceView,
    VectorizedEngine,
    resolve_engine,
)
from repro.errors import ConfigurationError, EngineError

CHAIN = MissPathConfig(victim_entries=4, stream_buffers=2, l2_net_size=1024)
EMPTY = MissPathConfig()


class TestEmptyChainTripwire:
    @pytest.mark.parametrize(
        "engine_cls", [ReferenceEngine, CheckedEngine, VectorizedEngine]
    )
    @pytest.mark.parametrize("miss_path", [None, EMPTY, {}])
    def test_empty_chain_is_byte_identical_to_none(
        self, engine_cls, miss_path, z8000_grep_trace, reference_geometry
    ):
        bare = engine_cls().run(reference_geometry, z8000_grep_trace)
        routed = engine_cls().run(
            reference_geometry, z8000_grep_trace, miss_path=miss_path
        )
        assert dict(routed.snapshot()) == dict(bare.snapshot())
        assert routed.transaction_words == bare.transaction_words
        assert routed.misspath is None
        assert "misspath" not in routed.to_dict()


class TestVectorizedRejection:
    def test_enabled_chain_raises_engine_error(
        self, tiny_trace, small_geometry
    ):
        with pytest.raises(EngineError, match="miss-path chain"):
            VectorizedEngine().run(
                small_geometry, tiny_trace, miss_path=CHAIN
            )

    def test_mapping_form_is_validated_first(self, tiny_trace, small_geometry):
        with pytest.raises(ConfigurationError, match="unknown miss-path"):
            VectorizedEngine().run(
                small_geometry, tiny_trace, miss_path={"victim_entires": 4}
            )


class TestResolveEngineDegradation:
    def test_auto_degrades_to_reference_when_chained(self, tiny_trace):
        assert isinstance(resolve_engine("auto", tiny_trace), VectorizedEngine)
        assert isinstance(
            resolve_engine("auto", tiny_trace, miss_path=CHAIN),
            ReferenceEngine,
        )
        assert isinstance(
            resolve_engine("auto", TraceView.of(tiny_trace), miss_path=CHAIN),
            ReferenceEngine,
        )

    def test_explicit_vectorized_degrades_too(self, tiny_trace):
        assert isinstance(
            resolve_engine("vectorized", tiny_trace, miss_path=CHAIN),
            ReferenceEngine,
        )

    def test_empty_chain_keeps_vectorized(self, tiny_trace):
        for miss_path in (None, EMPTY, {}):
            assert isinstance(
                resolve_engine("auto", tiny_trace, miss_path=miss_path),
                VectorizedEngine,
            )
            assert isinstance(
                resolve_engine("vectorized", tiny_trace, miss_path=miss_path),
                VectorizedEngine,
            )

    def test_checked_accepts_chains_directly(self, tiny_trace):
        assert isinstance(
            resolve_engine("checked", tiny_trace, miss_path=CHAIN),
            CheckedEngine,
        )

    def test_malformed_mapping_rejected_at_resolution(self, tiny_trace):
        with pytest.raises(ConfigurationError, match="unknown miss-path"):
            resolve_engine("auto", tiny_trace, miss_path={"victim_entires": 4})


class TestChainedRunContracts:
    @pytest.mark.parametrize("engine_cls", [ReferenceEngine, CheckedEngine])
    def test_chained_l1_counters_match_bare(
        self, engine_cls, z8000_grep_trace
    ):
        geometry = CacheGeometry(256, 16, 8, associativity=2)
        bare = engine_cls().run(geometry, z8000_grep_trace)
        chained = engine_cls().run(
            geometry, z8000_grep_trace, miss_path=CHAIN
        )
        assert dict(chained.snapshot()) == dict(bare.snapshot())
        misspath = chained.misspath
        assert misspath is not None
        assert misspath.demand_misses == (
            bare.block_misses + bare.sub_block_misses
        )
        assert misspath.chain == ("victim", "stream", "l2")

    def test_chain_reduces_memory_traffic_on_a_real_workload(
        self, z8000_grep_trace
    ):
        geometry = CacheGeometry(256, 16, 8, associativity=2)
        bare = ReferenceEngine().run(geometry, z8000_grep_trace)
        chained = ReferenceEngine().run(
            geometry, z8000_grep_trace, miss_path=CHAIN
        )
        # The L1's own fetch accounting is untouched; the chain's memory
        # traffic is what a front-end with miss-side structures would move.
        assert chained.bytes_fetched == bare.bytes_fetched
        assert (
            chained.misspath.memory_bytes_fetched < bare.bytes_fetched
        )
