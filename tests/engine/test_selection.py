"""Engine construction, auto-selection, and failure-mode routing."""

from __future__ import annotations

import pytest

from repro.engine import (
    ENGINE_NAMES,
    CheckedEngine,
    ReferenceEngine,
    TraceView,
    VectorizedEngine,
    make_engine,
    resolve_engine,
)
from repro.errors import ConfigurationError, EngineError
from repro.runner.runner import RunnerConfig, _GuardedTrace, run_sweep


def test_engine_names_are_the_cli_choices():
    assert ENGINE_NAMES == ("auto", "reference", "vectorized", "checked")


def test_make_engine_by_name():
    assert isinstance(make_engine("reference"), ReferenceEngine)
    assert isinstance(make_engine("vectorized"), VectorizedEngine)
    assert isinstance(make_engine("checked"), CheckedEngine)


def test_make_engine_rejects_unknown_and_auto():
    with pytest.raises(ConfigurationError):
        make_engine("turbo")
    with pytest.raises(ConfigurationError):
        make_engine("auto")  # auto is a per-run choice, not an engine


def test_resolve_auto_prefers_vectorized_for_plain_traces(tiny_trace):
    assert isinstance(resolve_engine("auto", tiny_trace), VectorizedEngine)
    assert isinstance(
        resolve_engine("auto", TraceView.of(tiny_trace)), VectorizedEngine
    )


def test_resolve_degrades_proxies_to_reference(tiny_trace):
    guarded = _GuardedTrace(tiny_trace, "key", max_accesses=5)
    # Proxies are iteration-only: even an explicit vectorized request
    # runs the reference loop (the documented known-unsupported combo).
    assert isinstance(resolve_engine("auto", guarded), ReferenceEngine)
    assert isinstance(resolve_engine("vectorized", guarded), ReferenceEngine)


def test_resolve_respects_explicit_reference(tiny_trace):
    assert isinstance(resolve_engine("reference", tiny_trace), ReferenceEngine)


def test_resolve_rejects_unknown_name(tiny_trace):
    with pytest.raises(ConfigurationError):
        resolve_engine("warp", tiny_trace)


def test_vectorized_rejects_non_trace_input(small_geometry, tiny_trace):
    guarded = _GuardedTrace(tiny_trace, "key")
    with pytest.raises(EngineError):
        VectorizedEngine().run(small_geometry, guarded)


def test_vectorized_validates_like_the_reference_cache(
    small_geometry, tiny_trace
):
    with pytest.raises(ConfigurationError):
        VectorizedEngine().run(small_geometry, tiny_trace, word_size=0)
    with pytest.raises(ConfigurationError):
        VectorizedEngine().run(small_geometry, tiny_trace, word_size=64)
    with pytest.raises(ConfigurationError):
        VectorizedEngine().run(small_geometry, tiny_trace, warmup=-1)
    with pytest.raises(ConfigurationError):
        VectorizedEngine().run(small_geometry, tiny_trace, warmup="warm")


def test_run_sweep_rejects_unknown_engine(tiny_trace, small_geometry):
    with pytest.raises(ConfigurationError):
        run_sweep(
            [tiny_trace], [small_geometry],
            config=RunnerConfig(engine="warp"),
        )


class _ExplodingVectorized(VectorizedEngine):
    def _run(self, *args, **kwargs):  # simulate an internal engine bug
        raise RuntimeError("kaboom")


def test_strict_mode_surfaces_engine_error(
    monkeypatch, tiny_trace, small_geometry
):
    import repro.runner.runner as runner_module

    def broken_resolve(name, trace, **kwargs):
        engine = resolve_engine(name, trace, **kwargs)
        if isinstance(engine, VectorizedEngine):
            return _ExplodingVectorized()
        return engine

    monkeypatch.setattr(runner_module, "resolve_engine", broken_resolve)
    with pytest.raises(EngineError):
        run_sweep(
            [tiny_trace], [small_geometry],
            config=RunnerConfig(engine="vectorized"),
        )


def test_lenient_mode_falls_back_to_reference(
    monkeypatch, tiny_trace, small_geometry
):
    import repro.runner.runner as runner_module

    def broken_resolve(name, trace, **kwargs):
        engine = resolve_engine(name, trace, **kwargs)
        if isinstance(engine, VectorizedEngine):
            return _ExplodingVectorized()
        return engine

    monkeypatch.setattr(runner_module, "resolve_engine", broken_resolve)
    healthy, _ = run_sweep(
        [tiny_trace], [small_geometry],
        config=RunnerConfig(engine="reference"),
    )
    degraded, report = run_sweep(
        [tiny_trace], [small_geometry],
        config=RunnerConfig(engine="vectorized", lenient=True),
    )
    assert report.skipped == []  # fallback succeeded, nothing skipped
    assert degraded[0].miss_ratio == healthy[0].miss_ratio
    assert degraded[0].per_trace == healthy[0].per_trace
