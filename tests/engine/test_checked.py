"""The checked engine: equivalence plus seeded-fault detection.

Two obligations.  First, the sanitizer must be invisible when nothing
is wrong: identical stats to the reference engine, access for access.
Second — the reason it exists — each class of cache-model corruption
must trip its *own* sanitizer rule on the access that exposes it:
replacement-stack corruption, stale valid bits, and statistics counter
drift are seeded directly into a live cache and must raise
:class:`~repro.errors.SanitizerError` with the matching rule id.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CacheGeometry
from repro.engine import CheckedCache, CheckedEngine, ReferenceEngine
from repro.errors import EngineError, SanitizerError
from repro.trace.record import AccessType, Trace

GEOMETRY = CacheGeometry(net_size=256, block_size=16, sub_block_size=8, associativity=2)


def _trace(n=400, addr_space=1024, seed=3):
    rng = np.random.default_rng(seed)
    return Trace(
        rng.integers(0, addr_space, n).astype(np.int64),
        rng.choice([0, 0, 1, 2], n).astype(np.uint8),
        np.full(n, 2, np.uint8),
        name="checked-rnd",
    )


def _warm_cache(accesses=64):
    """A CheckedCache with a healthy populated state."""
    cache = CheckedCache(GEOMETRY, word_size=2)
    rng = np.random.default_rng(11)
    for addr in rng.integers(0, 512, accesses):
        cache.access(int(addr), AccessType.READ, 2)
    return cache

def _resident_block(cache):
    """(set index, way, block) of some resident block."""
    for set_index, ways in enumerate(cache._sets):
        for way, blk in enumerate(ways):
            if blk is not None:
                return set_index, way, blk
    raise AssertionError("warm cache has no resident block")


def _other_set_addr(set_index):
    """An address mapping to a different set than ``set_index``.

    The detecting access must not touch the corrupted set: the check
    scans the whole cache either way, but an access in the same set
    could evict or refill the corrupted block before the scan sees it.
    """
    other = (set_index + 1) % GEOMETRY.num_sets
    return GEOMETRY.block_size * (other + GEOMETRY.num_sets * 100)


class TestEquivalence:
    def test_checked_matches_reference_exactly(self, z8000_grep_trace):
        checked = CheckedEngine().run(GEOMETRY, z8000_grep_trace)
        reference = ReferenceEngine().run(GEOMETRY, z8000_grep_trace)
        assert checked.snapshot() == reference.snapshot()
        assert checked.transaction_words == reference.transaction_words
        assert checked.accesses_by_kind == reference.accesses_by_kind

    def test_clean_random_run_raises_nothing(self):
        stats = CheckedEngine().run(GEOMETRY, _trace(), warmup=0)
        assert stats.accesses == 400

    def test_sanitizer_error_is_an_engine_error(self):
        # The runner's retry/lenient machinery keys on EngineError.
        assert issubclass(SanitizerError, EngineError)


class TestSeededFaults:
    """Each corruption class trips its own rule on the next access."""

    def test_lru_stack_corruption_trips_lru_rule(self):
        cache = _warm_cache()
        set_index, way, _ = _resident_block(cache)
        # Duplicate one way in the recency stack — the classic aliasing
        # bug when a hit update inserts instead of moving.
        stack = cache._policy_state[set_index]
        stack.append(stack[0] if stack else way)
        with pytest.raises(SanitizerError) as excinfo:
            cache.access(_other_set_addr(set_index), AccessType.READ, 2)
        assert excinfo.value.rule == "sanitizer-lru-stack"
        assert excinfo.value.diagnostics[0].rule == "sanitizer-lru-stack"

    def test_stale_valid_bit_trips_valid_mask_rule(self):
        cache = _warm_cache()
        set_index, _, blk = _resident_block(cache)
        # A valid bit beyond the geometry's sub-block range: the stale
        # mask a geometry change or bad sector fill would leave behind.
        blk.valid |= 1 << GEOMETRY.sub_blocks_per_block
        with pytest.raises(SanitizerError) as excinfo:
            cache.access(_other_set_addr(set_index), AccessType.READ, 2)
        assert excinfo.value.rule == "sanitizer-valid-mask"

    def test_resident_block_with_no_valid_bits_trips_valid_mask_rule(self):
        cache = _warm_cache()
        set_index, _, blk = _resident_block(cache)
        blk.valid = 0
        with pytest.raises(SanitizerError) as excinfo:
            cache.access(_other_set_addr(set_index), AccessType.READ, 2)
        assert excinfo.value.rule == "sanitizer-valid-mask"

    def test_counter_drift_trips_conservation_rule(self):
        cache = _warm_cache()
        # Drift the aggregate miss counter away from its by-kind split.
        cache.stats.misses += 1
        with pytest.raises(SanitizerError) as excinfo:
            cache.access(0, AccessType.READ, 2)
        assert excinfo.value.rule == "sanitizer-conservation"
        assert "conservation-" in str(excinfo.value)

    def test_duplicate_tag_trips_tag_rule(self):
        cache = _warm_cache()
        set_index, way, blk = _resident_block(cache)
        ways = cache._sets[set_index]
        other = next(
            (w for w, b in enumerate(ways) if b is not None and w != way),
            None,
        )
        if other is None:  # pragma: no cover - geometry keeps sets full
            pytest.skip("need two resident blocks in one set")
        ways[other].tag = blk.tag
        with pytest.raises(SanitizerError) as excinfo:
            cache.access(_other_set_addr(set_index), AccessType.READ, 2)
        assert excinfo.value.rule == "sanitizer-tag-dup"

    def test_fill_count_drift_trips_fill_rule(self):
        cache = _warm_cache()
        cache._filled_blocks = GEOMETRY.num_blocks + 1
        with pytest.raises(SanitizerError) as excinfo:
            cache.access(0, AccessType.READ, 2)
        assert excinfo.value.rule == "sanitizer-fill-count"
