"""Sampled-engine unit tests: estimator, bounds, and the exact marker.

The contract under test (docs/sampling.md): a degenerate whole-trace
plan reproduces the reference engine *bit-identically*; a real plan's
confidence interval covers the true cold miss ratio; and the
serialized payload carries a ``"sampled"`` marker that strict
``CacheStats.from_dict`` rejects, so sampled results can never
masquerade as exact ones.
"""

from __future__ import annotations

import pytest

from repro.core.config import CacheGeometry
from repro.core.replacement import make_replacement
from repro.core.stats import CacheStats
from repro.engine.base import make_engine
from repro.engine.batch import prepare_trace
from repro.engine.sampled import (
    DICT_COUNTERS,
    SCALAR_COUNTERS,
    run_sampled,
    sample_trace,
    verify_sampling,
)
from repro.errors import ConfigurationError
from repro.staticcheck.phases import SamplingConfig, analyze_trace
from repro.workloads.generator import program_trace

GEOMETRY = CacheGeometry(1024, 16, 8, associativity=4)
WORD = 2


@pytest.fixture(scope="module")
def trace():
    return prepare_trace(program_trace("matmul", 8000, word_size=WORD))


@pytest.fixture(scope="module")
def exact(trace):
    return make_engine("vectorized").run(
        GEOMETRY, trace, replacement=make_replacement("lru"),
        word_size=WORD, warmup=0,
    )


def sampled_for(trace, interval, k=None, seed=0, **kwargs):
    config = SamplingConfig(interval=interval, k=k, seed=seed)
    plan = analyze_trace(trace, interval, k, seed=seed)
    return run_sampled(GEOMETRY, trace, plan, config, word_size=WORD, **kwargs)


class TestCounters:
    def test_seventeen_counters_and_no_overlap(self):
        assert len(SCALAR_COUNTERS) == 14
        assert len(DICT_COUNTERS) == 3
        assert not set(SCALAR_COUNTERS) & set(DICT_COUNTERS)

    def test_counter_names_match_cachestats(self):
        payload = CacheStats().to_dict()
        assert set(SCALAR_COUNTERS + DICT_COUNTERS) <= set(payload)


class TestDegenerateBitIdentity:
    def test_whole_trace_plan_equals_reference_exactly(self, trace, exact):
        sampled = sampled_for(trace, len(trace) + 1)
        exact_dict = exact.to_dict()
        for name in SCALAR_COUNTERS:
            assert sampled.estimates[name] == exact_dict[name], name
        for name in DICT_COUNTERS:
            assert dict(sampled.estimates[name]) == exact_dict[name], name
        assert sampled.miss_ratio == exact.miss_ratio

    def test_degenerate_bounds_are_zero(self, trace):
        sampled = sampled_for(trace, len(trace))
        # One singleton interval primed from the trace start: no
        # witness term, no cold term.
        assert all(half == 0.0 for half in sampled.half_widths.values())
        lo, hi = sampled.miss_ratio_ci
        assert lo == hi == sampled.miss_ratio


class TestBounds:
    def test_ci_covers_the_true_cold_miss_ratio(self, trace, exact):
        sampled = sampled_for(trace, 1000, 4)
        lo, hi = sampled.miss_ratio_ci
        assert lo <= exact.miss_ratio <= hi
        assert lo <= sampled.miss_ratio <= hi

    def test_stream_determined_counters_are_exact(self, trace, exact):
        # Every interval contributes its own access count scaled by
        # its own weight, so the accesses estimate is exact whatever
        # the clustering did.
        sampled = sampled_for(trace, 1000, 4)
        assert sampled.estimates["accesses"] == len(trace)
        assert sampled.half_widths["accesses"] == 0.0
        assert sampled.half_widths["bytes_accessed"] == 0.0

    def test_ci_is_ordered_and_non_negative(self, trace):
        sampled = sampled_for(trace, 500, 3)
        for name in SCALAR_COUNTERS + DICT_COUNTERS:
            lo, hi = sampled.ci(name)
            assert 0.0 <= lo <= hi

    def test_miss_ratio_ci_is_clamped_to_unit_interval(self, trace):
        sampled = sampled_for(trace, 1000, 4)
        lo, hi = sampled.miss_ratio_ci
        assert 0.0 <= lo <= hi <= 1.0


class TestSampledMarker:
    def test_to_dict_carries_the_sampled_section(self, trace):
        payload = sampled_for(trace, 1000, 4).to_dict()
        marker = payload["sampled"]
        assert marker["exact"] is False
        assert marker["sample"] == {"interval": 1000, "k": 4, "seed": 0}
        assert marker["total_accesses"] == len(trace)
        assert set(marker["ci"]) == set(SCALAR_COUNTERS + DICT_COUNTERS)

    def test_strict_from_dict_rejects_sampled_payloads(self, trace):
        payload = sampled_for(trace, 1000, 4).to_dict()
        with pytest.raises(ValueError, match="not a CacheStats dump"):
            CacheStats.from_dict(payload)

    def test_summary_is_the_compact_checkpoint_form(self, trace):
        sampled = sampled_for(trace, 1000, 4)
        summary = sampled.summary()
        assert summary["exact"] is False
        assert summary["sample"] == "i1000,k4,s0"
        assert summary["miss_ratio"] == sampled.miss_ratio
        assert summary["miss_ratio_ci"] == list(sampled.miss_ratio_ci)

    def test_speedup_accounting(self, trace):
        sampled = sampled_for(trace, 500, 2)
        assert 0 < sampled.simulated_accesses <= len(trace) + 2 * 500
        assert sampled.speedup_factor > 0


class TestGuards:
    def test_plan_trace_mismatch_is_refused(self, trace):
        config = SamplingConfig(1000, 2)
        plan = analyze_trace(trace[: len(trace) - 500], 1000, 2)
        with pytest.raises(ConfigurationError, match="rebuild the plan"):
            run_sampled(GEOMETRY, trace, plan, config, word_size=WORD)

    def test_negative_warmup_is_refused(self, trace):
        with pytest.raises(ConfigurationError, match="warmup_intervals"):
            sampled_for(trace, 1000, 2, warmup_intervals=-1)

    def test_random_replacement_runs_without_bound_claims(self, trace):
        # The estimate exists; docs/sampling.md documents that the
        # interval is not a guarantee under random replacement.
        sampled = sampled_for(trace, 1000, 4, replacement="random")
        assert 0.0 <= sampled.miss_ratio <= 1.0


class TestSampleTrace:
    def test_one_call_plan_and_run(self, trace):
        config = SamplingConfig(1000, 4)
        one = sample_trace(GEOMETRY, trace, config, word_size=WORD)
        two = sampled_for(trace, 1000, 4)
        assert one.to_dict() == two.to_dict()


class TestVerifySampling:
    def test_bounds_hold_on_a_bundled_program(self):
        reports = verify_sampling(
            programs=["matmul"], word_sizes=(2,), length=6000, interval=1000
        )
        assert len(reports) == 1
        report = reports[0]
        assert report["covered"] is True
        assert report["ci"][0] <= report["true_miss_ratio"] <= report["ci"][1]

    def test_unknown_program_is_refused(self):
        with pytest.raises(ConfigurationError, match="unknown program"):
            verify_sampling(programs=["quux"], word_sizes=(2,), length=2000)
