"""Chained sanitizer pass over the full bundled-program grid.

Every bundled program of every suite runs through the checked engine
with a full miss-path chain (victim + miss + stream + L2): the per-access
invariant assertions now include :func:`check_misspath_conservation`,
so any drift in the chain accounting fails here with the exact access
index.  A second, cheaper pass runs the reference engine at a longer
length and validates the final counters of several chain shapes.
"""

from __future__ import annotations

import pytest

from repro.core.config import CacheGeometry
from repro.core.conservation import check_misspath_conservation
from repro.core.misspath import MissPathConfig
from repro.engine import CheckedEngine, ReferenceEngine
from repro.workloads.suites import suite_names, suite_specs, suite_trace

FULL_CHAIN = MissPathConfig(
    victim_entries=4,
    miss_entries=4,
    stream_buffers=2,
    stream_depth=4,
    l2_net_size=2048,
)

#: Every (suite, program) pair the repo bundles.
GRID = [
    (suite, spec.name)
    for suite in suite_names()
    for spec in suite_specs(suite)
]

GEOMETRY = CacheGeometry(256, 16, 8, associativity=2)


@pytest.mark.parametrize("suite,program", GRID)
def test_checked_engine_sanitizes_chained_runs(suite, program):
    trace = suite_trace(suite, program, length=2_000)
    stats = CheckedEngine().run(
        GEOMETRY, trace, miss_path=FULL_CHAIN, flush_at_end=True
    )
    # The checked engine already asserted per access; re-validate the
    # terminal state through the public checker for good measure.
    assert check_misspath_conservation(stats.misspath, stats) == []


@pytest.mark.parametrize(
    "miss_path",
    [
        MissPathConfig(victim_entries=4),
        MissPathConfig(miss_entries=8),
        MissPathConfig(stream_buffers=4, stream_depth=8),
        MissPathConfig(l2_net_size=4096),
        FULL_CHAIN,
    ],
    ids=lambda c: c.key(),
)
@pytest.mark.parametrize("suite,program", GRID)
def test_reference_engine_terminal_conservation(suite, program, miss_path):
    trace = suite_trace(suite, program, length=6_000)
    stats = ReferenceEngine().run(GEOMETRY, trace, miss_path=miss_path)
    assert check_misspath_conservation(stats.misspath, stats) == []
    assert stats.misspath.chain == miss_path.chain_names
