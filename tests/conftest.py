"""Shared fixtures for the repro test suite.

Trace lengths here are deliberately small (a few thousand references)
so the whole suite runs in well under a minute; the benchmarks exercise
paper-scale lengths.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import CacheGeometry
from repro.trace.record import Access, AccessType, Trace
from repro.workloads.suites import suite_trace


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """The paper's favourite small configuration: 64 B, 16,8 blocks."""
    return CacheGeometry(64, 16, 8)


@pytest.fixture
def reference_geometry() -> CacheGeometry:
    """The paper's headline configuration: 1024 B, 16,8, 4-way."""
    return CacheGeometry(1024, 16, 8)


@pytest.fixture
def tiny_trace() -> Trace:
    """A fixed ten-access trace with reuse, used by exact-count tests."""
    accesses = [
        Access(0x100, AccessType.IFETCH, 2),
        Access(0x102, AccessType.IFETCH, 2),
        Access(0x200, AccessType.READ, 2),
        Access(0x100, AccessType.IFETCH, 2),
        Access(0x202, AccessType.WRITE, 2),
        Access(0x300, AccessType.READ, 2),
        Access(0x100, AccessType.IFETCH, 2),
        Access(0x200, AccessType.READ, 2),
        Access(0x104, AccessType.IFETCH, 2),
        Access(0x300, AccessType.READ, 2),
    ]
    return Trace.from_accesses(accesses, name="tiny")


@pytest.fixture
def random_trace() -> Trace:
    """A seeded pseudo-random word-aligned trace (2000 accesses)."""
    rng = random.Random(1234)
    addrs = [rng.randrange(0, 4096) * 2 for _ in range(2000)]
    kinds = [rng.choice([0, 0, 2, 2, 1]) for _ in range(2000)]
    return Trace(addrs, kinds, 2, name="random")


@pytest.fixture(scope="session")
def z8000_grep_trace() -> Trace:
    """A small real workload trace (string search on the Z8000)."""
    return suite_trace("z8000", "GREP", length=8_000)


@pytest.fixture(scope="session")
def vax_c2_trace() -> Trace:
    """A small synthetic large-program trace (VAX compiler profile)."""
    return suite_trace("vax", "c2", length=8_000)
