"""Mattson stack-distance tests, including the cross-check against the
direct simulator that justifies the paper's choice of LRU."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stackdist import (
    miss_ratio_curve,
    stack_distance_histogram,
    success_function,
)
from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.trace.record import Trace


def make_trace(addrs, word=2):
    return Trace(list(addrs), [0] * len(addrs), word)


class TestHistogram:
    def test_cold_misses_counted_as_negative_one(self):
        histogram = stack_distance_histogram(make_trace([0, 16, 32]), 16)
        assert histogram == {-1: 3}

    def test_immediate_reuse_is_distance_one(self):
        histogram = stack_distance_histogram(make_trace([0, 0, 0]), 16)
        assert histogram == {-1: 1, 1: 2}

    def test_distance_counts_distinct_blocks(self):
        trace = make_trace([0, 16, 32, 0])  # 3 blocks, reuse at depth 3
        histogram = stack_distance_histogram(trace, 16)
        assert histogram[3] == 1

    def test_total_equals_trace_length(self, random_trace):
        histogram = stack_distance_histogram(random_trace, 8)
        assert sum(histogram.values()) == len(random_trace)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            stack_distance_histogram(make_trace([0]), 0)


class TestMissRatioCurve:
    def test_monotone_in_size(self, random_trace):
        curve = miss_ratio_curve(random_trace, 16, [32, 64, 128, 256, 512])
        values = [curve[s] for s in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_infinite_cache_only_cold_misses(self, random_trace):
        huge = 1 << 20
        curve = miss_ratio_curve(random_trace, 16, [huge])
        blocks = len(set((random_trace.addrs // 16).tolist()))
        assert curve[huge] == pytest.approx(blocks / len(random_trace))

    def test_unaligned_size_rejected(self, random_trace):
        with pytest.raises(ConfigurationError):
            miss_ratio_curve(random_trace, 16, [40])

    def test_empty_trace(self):
        assert miss_ratio_curve(make_trace([]), 16, [64]) == {64: 0.0}

    def test_matches_direct_simulation(self, random_trace):
        """The efficiency trick must agree with brute force exactly.

        Fully-associative LRU caches with block == sub-block size obey
        the inclusion property, so the one-pass curve and a per-size
        direct simulation give identical cold-start miss ratios.  The
        trace is re-labelled all-reads because the stack model has no
        notion of write policy.
        """
        reads = make_trace(random_trace.addrs.tolist())
        block = 16
        for net in (32, 64, 128, 256):
            geometry = CacheGeometry(
                net, block, block, associativity=net // block
            )
            cache = SubBlockCache(geometry, word_size=2)
            for access in reads:
                cache.access(access.addr, access.kind, access.size)
            direct = cache.stats.miss_ratio
            curve = miss_ratio_curve(reads, block, [net])
            assert curve[net] == pytest.approx(direct)

    @given(
        addr_pool=st.integers(2, 40),
        length=st.integers(1, 300),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_direct_simulation_random(self, addr_pool, length, seed):
        rng = random.Random(seed)
        trace = make_trace(
            [rng.randrange(addr_pool) * 8 for _ in range(length)], word=8
        )
        geometry = CacheGeometry(64, 8, 8, associativity=8)
        cache = SubBlockCache(geometry, word_size=8)
        for access in trace:
            cache.access(access.addr, access.kind, access.size)
        curve = miss_ratio_curve(trace, 8, [64])
        assert curve[64] == pytest.approx(cache.stats.miss_ratio)


class TestSuccessFunction:
    def test_non_decreasing(self, random_trace):
        function = success_function(random_trace, 16)
        assert all(a <= b for a, b in zip(function, function[1:]))

    def test_complement_of_curve(self, random_trace):
        function = success_function(random_trace, 16)
        curve = miss_ratio_curve(random_trace, 16, [16 * len(function)])
        assert function[-1] == pytest.approx(1 - curve[16 * len(function)])

    def test_empty_trace(self):
        assert success_function(make_trace([]), 16) == []
