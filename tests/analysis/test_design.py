"""Design-space explorer tests."""

import pytest

from repro.analysis.design import DesignGoal, find_minimum_design
from repro.errors import ConfigurationError
from repro.trace.record import Trace
from repro.workloads.suites import suite_traces


class TestDesignGoal:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DesignGoal(max_miss_ratio=0)
        with pytest.raises(ConfigurationError):
            DesignGoal(max_traffic_ratio=-1)

    def test_met_by(self):
        from repro.analysis.sweep import SweepPoint
        from repro.core.config import CacheGeometry

        goal = DesignGoal(max_miss_ratio=0.1, max_traffic_ratio=0.2)
        good = SweepPoint(CacheGeometry(512, 4, 4), 0.05, 0.15, 0.1)
        bad_miss = SweepPoint(CacheGeometry(512, 4, 4), 0.15, 0.15, 0.1)
        bad_traffic = SweepPoint(CacheGeometry(512, 4, 4), 0.05, 0.25, 0.2)
        assert goal.met_by(good)
        assert not goal.met_by(bad_miss)
        assert not goal.met_by(bad_traffic)


class TestFindMinimumDesign:
    @pytest.fixture(scope="class")
    def z8000(self):
        return suite_traces("z8000", length=20_000, names=("GREP", "SORT"))

    def test_finds_cheapest_qualifying(self, z8000):
        search = find_minimum_design(
            z8000, DesignGoal(0.10, 0.20), word_size=2,
            net_sizes=(256, 512, 1024),
        )
        assert search.best is not None
        assert search.evaluated > 10
        gross_sizes = [point.gross_size for point in search.qualifying]
        assert gross_sizes == sorted(gross_sizes)
        assert search.best.gross_size == gross_sizes[0]
        assert search.best.miss_ratio <= 0.10
        assert search.best.traffic_ratio <= 0.20

    def test_impossible_goal_returns_none(self, z8000):
        search = find_minimum_design(
            z8000, DesignGoal(1e-9, 1e-9), word_size=2, net_sizes=(64,)
        )
        assert search.best is None
        assert search.qualifying == []

    def test_trivial_goal_admits_everything(self, z8000):
        search = find_minimum_design(
            z8000, DesignGoal(1.0, 10.0), word_size=2, net_sizes=(64,)
        )
        assert len(search.qualifying) == search.evaluated

    def test_hot_trace_qualifies_smallest_cache(self):
        hot = Trace([0x100] * 2000, [0] * 2000, 2, name="hot")
        search = find_minimum_design(
            [hot], DesignGoal(0.01, 0.05), word_size=2, net_sizes=(64, 256)
        )
        assert search.best is not None
        assert search.best.geometry.net_size == 64
