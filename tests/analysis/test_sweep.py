"""Sweep-runner tests."""

import pytest

from repro.analysis.sweep import geometry_grid, sweep
from repro.core.config import CacheGeometry
from repro.trace.record import Trace


def constant_trace(addr, n=200, name="const"):
    return Trace([addr] * n, [0] * n, 2, name=name)


class TestGeometryGrid:
    def test_paper_net64_grid(self):
        grid = geometry_grid([64])
        labels = {(g.block_size, g.sub_block_size) for g in grid}
        # Blocks up to net/4 = 16, subs >= 2.
        assert (16, 8) in labels and (2, 2) in labels
        assert all(block <= 16 for block, _ in labels)

    def test_min_sub_excludes_sub_word_transfers(self):
        grid = geometry_grid([256], min_sub=4)
        assert all(g.sub_block_size >= 4 for g in grid)

    def test_sub_never_exceeds_block(self):
        grid = geometry_grid([64, 256, 1024])
        assert all(g.sub_block_size <= g.block_size for g in grid)

    def test_empty_for_tiny_cache(self):
        assert geometry_grid([4]) == []


class TestSweep:
    def test_single_hot_address_has_near_zero_ratios(self):
        points = sweep(
            [constant_trace(0x100)], [CacheGeometry(64, 16, 8)], word_size=2
        )
        point = points[0]
        # The cache never fills on a one-address trace, so the single
        # cold miss stays in the statistics; ratios are still tiny.
        assert point.miss_ratio <= 1 / 200
        assert point.traffic_ratio <= 8 / (2 * 200)

    def test_unweighted_average_across_traces(self):
        # One trace that always hits, one that always misses: averages
        # must sit exactly halfway regardless of trace lengths.
        hot = constant_trace(0x100, n=400, name="hot")
        addrs = [i * 64 for i in range(200)]
        cold = Trace(addrs, [0] * 200, 2, name="cold")
        points = sweep(
            [hot, cold], [CacheGeometry(64, 16, 16)], word_size=2, warmup=0
        )
        per_trace = points[0].per_trace
        expected = (per_trace["hot"][0] + per_trace["cold"][0]) / 2
        assert points[0].miss_ratio == pytest.approx(expected)

    def test_write_filtering_default(self):
        trace = Trace([0, 0, 0], [1, 1, 0], 2, name="w")  # 2 writes, 1 read
        points = sweep([trace], [CacheGeometry(64, 16, 8)], warmup=0)
        # Only the read survives the filter.
        assert points[0].per_trace["w"][0] == 1.0

    def test_fetch_policy_by_name(self, z8000_grep_trace):
        geometry = CacheGeometry(256, 16, 2)
        # Cold start so both runs measure identical windows; under
        # warm start the two caches fill at different times.
        demand = sweep([z8000_grep_trace], [geometry], word_size=2, warmup=0)[0]
        forward = sweep(
            [z8000_grep_trace], [geometry], word_size=2,
            fetch="load-forward", warmup=0,
        )[0]
        assert forward.fetch_name == "load-forward"
        assert forward.miss_ratio <= demand.miss_ratio
        assert forward.traffic_ratio >= demand.traffic_ratio

    def test_replacement_policy_by_name(self, z8000_grep_trace):
        geometry = CacheGeometry(256, 16, 8)
        lru = sweep([z8000_grep_trace], [geometry], word_size=2)[0]
        rand = sweep(
            [z8000_grep_trace], [geometry], word_size=2, replacement="random"
        )[0]
        # Strecker: policies differ, but stay in the same regime.
        assert rand.miss_ratio < 3 * lru.miss_ratio + 0.01
        assert lru.miss_ratio < 3 * rand.miss_ratio + 0.01

    def test_scaled_traffic_never_exceeds_standard(self, z8000_grep_trace):
        points = sweep(
            [z8000_grep_trace], geometry_grid([256]), word_size=2
        )
        for point in points:
            assert point.scaled_traffic_ratio <= point.traffic_ratio + 1e-12

    def test_points_in_input_order(self, z8000_grep_trace):
        geometries = [CacheGeometry(64, 16, 8), CacheGeometry(64, 8, 8)]
        points = sweep([z8000_grep_trace], geometries, word_size=2)
        assert [p.geometry for p in points] == geometries

    def test_gross_size_and_label_passthrough(self):
        point = sweep(
            [constant_trace(0)], [CacheGeometry(64, 16, 8)], word_size=2
        )[0]
        assert point.gross_size == 79
        assert point.label == "16,8"
