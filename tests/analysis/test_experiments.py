"""Experiment-runner tests (short traces; full lengths run in benchmarks)."""

import pytest

from repro.analysis.experiments import (
    FIGURE_NETS,
    default_trace_length,
    figure_experiment,
    table6_experiment,
    table7_experiment,
    table8_experiment,
)
from repro.analysis.paper_data import TABLE7, TABLE8
from repro.errors import ConfigurationError

LEN = 12_000  # short but long enough to warm 1 KiB caches


class TestDefaultTraceLength:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_LEN", raising=False)
        assert default_trace_length() == 100_000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "5000")
        assert default_trace_length() == 5000

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "lots")
        with pytest.raises(ConfigurationError):
            default_trace_length()
        monkeypatch.setenv("REPRO_TRACE_LEN", "0")
        with pytest.raises(ConfigurationError):
            default_trace_length()


class TestTable7Experiment:
    def test_covers_exactly_the_published_grid(self):
        points = table7_experiment("z8000", length=LEN)
        keys = {
            (p.geometry.net_size, p.geometry.block_size, p.geometry.sub_block_size)
            for p in points
        }
        assert keys == set(TABLE7["z8000"])

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ConfigurationError):
            table7_experiment("cray", length=LEN)

    def test_per_trace_results_present(self):
        points = table7_experiment("s370", length=LEN)
        assert set(points[0].per_trace) == {"FGO1", "FCOMP1", "PGO1", "PGO2"}


class TestTable6Experiment:
    def test_rows_and_relative_column(self):
        rows = table6_experiment(length=30_000)
        assert [r.organization for r in rows] == ["360/85", "4-way", "8-way", "16-way"]
        assert rows[0].relative_to_sector == 1.0
        # Set-associative designs beat the sector cache decisively.
        assert rows[1].relative_to_sector < 0.6

    def test_sector_leaves_most_sub_blocks_unreferenced(self):
        rows = table6_experiment(length=30_000)
        sector = rows[0]
        # The paper found 72% never referenced; ours is the same story.
        assert sector.sub_block_utilization < 0.5


class TestTable8Experiment:
    def test_covers_published_configurations(self):
        rows = table8_experiment(length=LEN)
        keys = {
            (
                r.geometry.net_size,
                r.geometry.block_size,
                r.geometry.sub_block_size,
                r.load_forward,
            )
            for r in rows
        }
        assert keys == set(TABLE8)

    def test_load_forward_between_extremes(self):
        rows = {
            (
                r.geometry.net_size, r.geometry.block_size,
                r.geometry.sub_block_size, r.load_forward,
            ): r
            for r in table8_experiment(length=LEN)
        }
        full = rows[(256, 16, 16, False)]
        small = rows[(256, 16, 2, False)]
        forward = rows[(256, 16, 2, True)]
        assert full.miss_ratio <= forward.miss_ratio <= small.miss_ratio
        assert small.traffic_ratio <= forward.traffic_ratio <= full.traffic_ratio

    def test_redundant_loads_are_few(self):
        # Section 4.4: "few redundant loads were made".
        rows = table8_experiment(length=LEN)
        for row in rows:
            if row.load_forward:
                assert row.redundant_fraction < 0.25

    def test_labels(self):
        rows = table8_experiment(length=LEN)
        labels = {row.label for row in rows}
        assert "16,2,LF" in labels and "16,16" in labels


class TestFigureExperiment:
    def test_figure_nets_constant(self):
        assert FIGURE_NETS["part1"] == (32, 128, 512)
        assert FIGURE_NETS["part2"] == (64, 256, 1024)

    def test_grid_per_net(self):
        results = figure_experiment("pdp11", (64, 256), length=LEN)
        assert set(results) == {64, 256}
        assert all(p.geometry.net_size == 64 for p in results[64])
        # Larger caches allow more geometries.
        assert len(results[256]) > len(results[64])

    def test_word_size_limits_sub_blocks_for_32bit(self):
        results = figure_experiment("vax", (256,), length=LEN)
        assert all(p.geometry.sub_block_size >= 4 for p in results[256])
