"""Stability-analysis tests."""

import pytest

from repro.analysis.stability import (
    StabilityPoint,
    length_sensitivity,
    max_relative_drift,
)
from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.trace.record import Trace


def synthetic_builder(n):
    # A perfectly stable workload: cyclic reuse of a small set.
    addrs = [(i % 64) * 2 for i in range(n)]
    return Trace(addrs, [0] * n, 2)


class TestLengthSensitivity:
    def test_stable_workload_has_zero_drift(self):
        # The 128-byte working set overfills a 64-byte cache, so the
        # warm-start window opens and the steady-state miss ratio is
        # identical at every length.
        points = length_sensitivity(
            synthetic_builder, CacheGeometry(64, 16, 8), [1000, 2000, 4000]
        )
        assert len(points) == 3
        assert max_relative_drift(points) < 0.05

    def test_lengths_recorded(self):
        points = length_sensitivity(
            synthetic_builder, CacheGeometry(256, 16, 8), [500, 1000]
        )
        assert [p.length for p in points] == [500, 1000]

    def test_empty_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            length_sensitivity(synthetic_builder, CacheGeometry(256, 16, 8), [])

    def test_unsorted_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            length_sensitivity(
                synthetic_builder, CacheGeometry(256, 16, 8), [2000, 1000]
            )

    def test_suite_trace_converges(self):
        from repro.workloads.suites import suite_trace

        points = length_sensitivity(
            lambda n: suite_trace("pdp11", "OPSYS", length=n),
            CacheGeometry(1024, 16, 8),
            [10_000, 20_000, 40_000],
        )
        assert max_relative_drift(points) < 0.5


class TestMaxRelativeDrift:
    def test_single_point(self):
        assert max_relative_drift([StabilityPoint(1000, 0.1, 0.2)]) == 0.0

    def test_computes_largest_step(self):
        points = [
            StabilityPoint(1000, 0.10, 0.2),
            StabilityPoint(2000, 0.11, 0.2),  # +10%
            StabilityPoint(4000, 0.088, 0.2),  # -20%
        ]
        assert max_relative_drift(points) == pytest.approx(0.2)

    def test_zero_baseline_skipped(self):
        points = [StabilityPoint(1000, 0.0, 0.0), StabilityPoint(2000, 0.5, 0.5)]
        assert max_relative_drift(points) == 0.0
