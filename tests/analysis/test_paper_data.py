"""Consistency checks on the transcribed paper data."""

import pytest

from repro.analysis.paper_data import (
    RISCII_MISS_RATIOS,
    TABLE6,
    TABLE7,
    TABLE8,
    table7_point,
)
from repro.core.config import CacheGeometry


class TestTable7Consistency:
    def test_all_keys_are_valid_geometries(self):
        for rows in TABLE7.values():
            for net, block, sub in rows:
                CacheGeometry(net, block, sub)  # must not raise

    def test_ratios_in_plausible_range(self):
        for rows in TABLE7.values():
            for point in rows.values():
                assert 0 < point.miss_ratio <= 1
                assert 0 < point.traffic_ratio < 3

    def test_demand_traffic_consistent_with_miss(self):
        """Each miss fetches one sub-block, so traffic ~= miss * sub/word."""
        words = {"pdp11": 2, "z8000": 2, "vax": 4, "s370": 4}
        for arch, rows in TABLE7.items():
            word = words[arch]
            for (net, block, sub), point in rows.items():
                expected = point.miss_ratio * sub / word
                assert point.traffic_ratio == pytest.approx(expected, rel=0.12), (
                    arch, net, block, sub,
                )

    def test_miss_decreases_with_net_size(self):
        for rows in TABLE7.values():
            for net_small, net_large in ((64, 256), (256, 1024)):
                for net, block, sub in rows:
                    if net != net_small or (net_large, block, sub) not in rows:
                        continue
                    assert (
                        rows[(net_large, block, sub)].miss_ratio
                        < rows[(net, block, sub)].miss_ratio
                    )

    def test_miss_increases_as_sub_block_shrinks(self):
        for rows in TABLE7.values():
            for (net, block, sub), point in rows.items():
                smaller = (net, block, sub // 2)
                if smaller in rows:
                    assert rows[smaller].miss_ratio > point.miss_ratio

    def test_architecture_ordering_at_reference_config(self):
        key = (1024, 16, 8)
        misses = [TABLE7[arch][key].miss_ratio for arch in ("z8000", "pdp11", "vax", "s370")]
        assert misses == sorted(misses)

    def test_lookup_helper(self):
        point = table7_point("pdp11", 1024, 16, 8)
        assert point.miss_ratio == 0.052
        assert table7_point("pdp11", 1024, 128, 64) is None
        assert table7_point("cray", 64, 16, 8) is None


class TestTable6Consistency:
    def test_sector_is_baseline(self):
        assert TABLE6["360/85"][1] == 1.0

    def test_set_associative_beats_sector_threefold(self):
        assert TABLE6["360/85"][0] / TABLE6["4-way"][0] == pytest.approx(
            2.93, rel=0.02
        )

    def test_diminishing_returns_with_associativity(self):
        misses = [TABLE6[k][0] for k in ("4-way", "8-way", "16-way")]
        assert misses == sorted(misses, reverse=True)
        # The 4->16 way gain is small compared to the sector->4-way gain.
        assert misses[0] - misses[2] < 0.002


class TestTable8Consistency:
    def test_load_forward_sits_between_extremes(self):
        # LF should have miss near the big-sub config and traffic
        # between small-sub demand and big-sub demand.
        for net, block in ((64, 8), (256, 16), (256, 8)):
            full = TABLE8[(net, block, block, False)]
            small = TABLE8[(net, block, 2, False)]
            forward = TABLE8[(net, block, 2, True)]
            assert full.miss_ratio <= forward.miss_ratio <= small.miss_ratio
            assert small.traffic_ratio <= forward.traffic_ratio <= full.traffic_ratio

    def test_paper_quote_twenty_percent_traffic_cut(self):
        # Section 4.4: for the Z80,000 design (16,16 -> 16,2,LF) the
        # traffic ratio drops ~20% for a ~7% miss-ratio cost.
        full = TABLE8[(256, 16, 16, False)]
        forward = TABLE8[(256, 16, 2, True)]
        assert 1 - forward.traffic_ratio / full.traffic_ratio == pytest.approx(
            0.20, abs=0.02
        )
        assert forward.miss_ratio / full.miss_ratio - 1 == pytest.approx(
            0.07, abs=0.01
        )


class TestRisciiData:
    def test_miss_declines_with_size(self):
        sizes = sorted(RISCII_MISS_RATIOS)
        misses = [RISCII_MISS_RATIOS[s] for s in sizes]
        assert misses == sorted(misses, reverse=True)

    def test_doubling_reduces_about_twenty_percent(self):
        # Section 2.3: doubling the cache size reduced miss ratio by
        # about 20 percent.
        pairs = [(512, 1024), (1024, 2048), (2048, 4096)]
        for small, large in pairs:
            gain = 1 - RISCII_MISS_RATIOS[large] / RISCII_MISS_RATIOS[small]
            assert 0.1 < gain < 0.3
