"""Table formatting, figure series, and ASCII plotting tests."""

import pytest

from repro.analysis.experiments import (
    figure_experiment,
    table6_experiment,
    table7_experiment,
    table8_experiment,
)
from repro.analysis.figures import FigureSeries, figure_series
from repro.analysis.plotting import ascii_figure
from repro.analysis.sweep import SweepPoint
from repro.analysis.tables import format_table6, format_table7, format_table8
from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError

LEN = 8_000


def make_point(net, block, sub, miss, traffic):
    return SweepPoint(
        geometry=CacheGeometry(net, block, sub),
        miss_ratio=miss,
        traffic_ratio=traffic,
        scaled_traffic_ratio=traffic / 2,
    )


class TestFigureSeries:
    def test_constant_block_and_sub_lines(self):
        points = [
            make_point(256, 16, 4, 0.30, 0.60),
            make_point(256, 16, 8, 0.20, 0.80),
            make_point(256, 8, 4, 0.35, 0.70),
            make_point(256, 8, 8, 0.25, 1.00),
        ]
        series = figure_series({256: points})
        labels = {(s.label, s.solid) for s in series}
        assert ("b16", True) in labels
        assert ("b8", True) in labels
        assert ("s4", False) in labels
        assert ("s8", False) in labels

    def test_solid_lines_ordered_by_sub_block(self):
        points = [
            make_point(256, 16, 8, 0.20, 0.80),
            make_point(256, 16, 4, 0.30, 0.60),
        ]
        series = [s for s in figure_series({256: points}) if s.label == "b16"]
        (line,) = series
        # Ordered along increasing sub-block size: (traffic, miss).
        assert line.points == ((0.60, 0.30), (0.80, 0.20))

    def test_singleton_groups_dropped(self):
        points = [make_point(256, 16, 8, 0.2, 0.8)]
        assert figure_series({256: points}) == []

    def test_scaled_traffic_selection(self):
        points = [
            make_point(256, 16, 4, 0.30, 0.60),
            make_point(256, 16, 8, 0.20, 0.80),
        ]
        standard = figure_series({256: points})[0]
        scaled = figure_series({256: points}, use_scaled_traffic=True)[0]
        assert scaled.points[0][0] == standard.points[0][0] / 2

    def test_real_experiment_series(self):
        results = figure_experiment("z8000", (256,), length=LEN)
        series = figure_series(results)
        assert any(s.solid for s in series)
        assert any(not s.solid for s in series)


class TestAsciiFigure:
    def test_renders_markers_and_legend(self):
        line = FigureSeries("b16", 256, True, ((0.5, 0.2), (0.8, 0.1)))
        plot = ascii_figure([line], title="demo")
        assert "demo" in plot
        assert "b16" in plot
        assert "o" in plot

    def test_empty_series(self):
        assert "no positive data" in ascii_figure([], title="x")

    def test_rejects_tiny_plot_area(self):
        line = FigureSeries("b16", 256, True, ((0.5, 0.2),))
        with pytest.raises(ConfigurationError):
            ascii_figure([line], width=5, height=2)

    def test_nonpositive_points_skipped(self):
        line = FigureSeries("b16", 256, True, ((0.0, 0.2), (0.5, 0.1)))
        plot = ascii_figure([line])
        assert "o" in plot


class TestTableFormatting:
    def test_table6_includes_paper_column(self):
        text = format_table6(table6_experiment(length=20_000))
        assert "360/85" in text
        assert "0.0258" in text  # the paper's sector miss ratio

    def test_table7_rows_and_paper_values(self):
        points = table7_experiment("z8000", length=LEN)
        text = format_table7("z8000", points)
        assert "16,8" in text
        assert "0.0230" in text  # paper's z8000 1024 16,8 miss ratio
        assert text.count("\n") >= len(points)

    def test_table7_without_paper_column(self):
        points = table7_experiment("z8000", length=LEN)
        text = format_table7("z8000", points, include_paper=False)
        assert "paper" not in text

    def test_table8_formatting(self):
        text = format_table8(table8_experiment(length=LEN))
        assert "16,2,LF" in text
        assert "0.1280" in text  # paper's 16,2,LF miss ratio
