"""Shape-comparison report tests."""

import pytest

from repro.analysis.report import compare_shapes


class TestCompareShapes:
    def test_identical_series(self):
        series = {"a": 0.1, "b": 0.2, "c": 0.4}
        report = compare_shapes(series, dict(series))
        assert report.n == 3
        assert report.spearman == pytest.approx(1.0)
        assert report.pair_agreement == 1.0
        assert report.geometric_mean_ratio == pytest.approx(1.0)

    def test_scaled_series_keeps_perfect_rank(self):
        measured = {"a": 0.05, "b": 0.10, "c": 0.20}
        published = {"a": 0.1, "b": 0.2, "c": 0.4}
        report = compare_shapes(measured, published)
        assert report.spearman == pytest.approx(1.0)
        assert report.geometric_mean_ratio == pytest.approx(0.5)

    def test_reversed_series(self):
        measured = {"a": 1.0, "b": 2.0, "c": 3.0}
        published = {"a": 3.0, "b": 2.0, "c": 1.0}
        report = compare_shapes(measured, published)
        assert report.spearman == pytest.approx(-1.0)
        assert report.pair_agreement == 0.0

    def test_only_shared_keys_compared(self):
        report = compare_shapes({"a": 1.0, "x": 9.0}, {"a": 2.0, "y": 9.0})
        assert report.n == 1

    def test_no_shared_keys(self):
        report = compare_shapes({"a": 1.0}, {"b": 1.0})
        assert report.n == 0

    def test_single_point(self):
        report = compare_shapes({"a": 1.0}, {"a": 4.0})
        assert report.n == 1
        assert report.geometric_mean_ratio == pytest.approx(0.25)

    def test_ties_ignored_in_pair_agreement(self):
        measured = {"a": 1.0, "b": 1.0, "c": 2.0}
        published = {"a": 1.0, "b": 2.0, "c": 3.0}
        report = compare_shapes(measured, published)
        # Pair (a, b) is tied in measured and excluded.
        assert report.pair_agreement == 1.0

    def test_ratio_extremes(self):
        measured = {"a": 1.0, "b": 8.0}
        published = {"a": 2.0, "b": 2.0}
        report = compare_shapes(measured, published)
        assert report.min_ratio == pytest.approx(0.5)
        assert report.max_ratio == pytest.approx(4.0)

    def test_summary_is_one_line(self):
        report = compare_shapes({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0})
        assert "\n" not in report.summary()
        assert "spearman" in report.summary()

    def test_tuple_keys_supported(self):
        measured = {(64, 16, 8): 0.2, (64, 8, 8): 0.3}
        published = {(64, 16, 8): 0.4, (64, 8, 8): 0.5}
        assert compare_shapes(measured, published).n == 2
