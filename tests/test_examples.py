"""Every example script must run end-to-end.

Examples honour ``REPRO_TRACE_LEN``, so the tests run them at a reduced
length; the point is that the documented entry points never rot.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

# What each example must mention in its output (a cheap wrongness check).
EXPECTED_SNIPPETS = {
    "quickstart.py": ["miss ratio", "effective access time"],
    "subblock_tradeoff.py": ["trade: miss", "b32"],
    "loadforward_study.py": ["load-forward cuts traffic"],
    "nibble_mode_study.py": ["optimal sub-block under"],
    "sector_cache_360_85.py": ["360/85 sector cache", "rel "],
    "riscii_icache.py": ["remote program counter", "code compaction"],
    "multiprocessor_bus.py": ["processors", "Bus accounting"],
    "design_explorer.py": ["qualify; cheapest first", "<- best"],
}


def test_every_example_is_covered():
    assert {p.name for p in EXAMPLES} == set(EXPECTED_SNIPPETS)


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    env = dict(os.environ, REPRO_TRACE_LEN="8000")
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for snippet in EXPECTED_SNIPPETS[example.name]:
        assert snippet in result.stdout, (
            f"{example.name} output missing {snippet!r}:\n{result.stdout[:2000]}"
        )
