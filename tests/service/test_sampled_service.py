"""The ``sample`` query axis through the service layer.

Sampling is opt-in per service (``--allow-sampling``) and a sampled
answer is a different product from an exact one: the query layer
refuses contradictory combinations at parse time (``exact: true``,
checked engine, miss-path chain), the fingerprint carries the sample
key so caches can never cross-serve, and served payloads are marked
``stats.sampled.exact == false``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.service import ServiceConfig, SimQuery, SimulationService
from repro.staticcheck.phases import SamplingConfig

BASE = {"suite": "pdp11", "trace": "ED", "net": 256, "block": 16, "sub": 8}
SAMPLE = {"interval": 500, "k": 2}


def simulate_queries(*queries, allow_sampling=True):
    """Run queries sequentially on one service; returns (results, service)."""

    async def main():
        service = SimulationService(
            ServiceConfig(batch_window=0.0, allow_sampling=allow_sampling)
        )
        await service.start()
        try:
            results = []
            for query in queries:
                results.append(await service.simulate(query))
            return results, service
        finally:
            await service.stop()

    return asyncio.run(main())


class TestQueryAxis:
    def test_mapping_parses_to_config(self):
        query = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        assert query.sample == SamplingConfig(interval=500, k=2)

    def test_cli_string_form_parses_too(self):
        query = SimQuery.from_payload(dict(BASE, sample="500,2"), 4000)
        assert query.sample == SamplingConfig(interval=500, k=2)

    def test_absent_sample_means_exact(self):
        assert SimQuery.from_payload(dict(BASE), 4000).sample is None

    @pytest.mark.parametrize(
        "bad", ["abc", {"interval": 0}, {"interval": 500, "stride": 2}]
    )
    def test_malformed_sample_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            SimQuery.from_payload(dict(BASE, sample=bad), 4000)

    def test_exact_true_plus_sample_is_a_contradiction(self):
        with pytest.raises(ConfigurationError, match="exact"):
            SimQuery.from_payload(
                dict(BASE, sample=SAMPLE, exact=True), 4000
            )

    def test_exact_false_plus_sample_is_fine(self):
        query = SimQuery.from_payload(
            dict(BASE, sample=SAMPLE, exact=False), 4000
        )
        assert query.sample is not None

    def test_exact_must_be_boolean(self):
        with pytest.raises(ConfigurationError, match="exact"):
            SimQuery.from_payload(dict(BASE, exact="yes"), 4000)

    def test_checked_engine_plus_sample_refused(self):
        with pytest.raises(ConfigurationError, match="checked"):
            SimQuery.from_payload(
                dict(BASE, sample=SAMPLE, engine="checked"), 4000
            )

    def test_miss_path_plus_sample_refused(self):
        with pytest.raises(ConfigurationError, match="chain"):
            SimQuery.from_payload(
                dict(BASE, sample=SAMPLE, miss_path={"victim_entries": 4}),
                4000,
            )

    def test_to_dict_round_trips(self):
        query = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        payload = query.to_dict()
        assert payload["sample"] == {"interval": 500, "k": 2, "seed": 0}
        assert SimQuery.from_payload(payload, 4000) == query


class TestFingerprints:
    def test_sampled_and_exact_never_share_a_fingerprint(self):
        bare = SimQuery.from_payload(dict(BASE), 4000)
        sampled = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        assert bare.fingerprint(4000) != sampled.fingerprint(4000)

    def test_different_sample_parameters_differ(self):
        one = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        two = SimQuery.from_payload(
            dict(BASE, sample={"interval": 500, "k": 3}), 4000
        )
        three = SimQuery.from_payload(
            dict(BASE, sample={"interval": 250, "k": 2}), 4000
        )
        prints = {q.fingerprint(4000) for q in (one, two, three)}
        assert len(prints) == 3


class TestOptIn:
    def test_default_service_refuses_sampled_queries(self):
        query = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        with pytest.raises(ConfigurationError, match="allow-sampling"):
            simulate_queries(query, allow_sampling=False)

    def test_allow_sampling_is_incompatible_with_supervised(self):
        with pytest.raises(ConfigurationError, match="supervised"):
            SimulationService(
                ServiceConfig(allow_sampling=True, supervised=True)
            )


class TestServedResults:
    def test_sampled_result_is_marked_not_exact(self):
        query = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        (result,), _service = simulate_queries(query)
        assert result.entry.engine == "sampled"
        payload = result.to_payload()
        marker = payload["stats"]["sampled"]
        assert marker["exact"] is False
        assert marker["sample"] == {"interval": 500, "k": 2, "seed": 0}
        assert 0.0 <= payload["result"]["miss_ratio"] <= 1.0
        lo, hi = marker["miss_ratio_ci"]
        assert lo <= marker["miss_ratio"] <= hi

    def test_exact_and_sampled_results_are_cached_separately(self):
        bare = SimQuery.from_payload(dict(BASE), 4000)
        sampled = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        (one, two), _service = simulate_queries(bare, sampled)
        assert one.source == "computed"
        assert two.source == "computed"  # not served from the exact entry
        assert one.entry.fingerprint != two.entry.fingerprint
        assert "sampled" not in one.entry.stats
        assert one.entry.engine != "sampled"

    def test_repeated_sampled_query_hits_the_cache(self):
        query = SimQuery.from_payload(dict(BASE, sample=SAMPLE), 4000)
        (first, again), _service = simulate_queries(query, query)
        assert first.source == "computed"
        assert again.source == "memory"
        assert again.entry.stats == first.entry.stats
