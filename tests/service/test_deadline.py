"""Deadline propagation and back-pressure hygiene.

Covers the budget's whole path: the ``X-Repro-Deadline-Ms`` header is
parsed at the edge, carried through admission and dispatch, and ends
as cooperative cancellation *inside* the engines — plus the jittered
``Retry-After`` hint and the slow-loris read timeout that keep
rejected or stuck clients from re-synchronizing into a thundering
herd.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.engine.batch import predecode, prepare_trace, run_cell
from repro.errors import DeadlineExceededError
from repro.service.app import ServiceApp, _retry_after_header
from repro.service.query import SimQuery
from repro.service.simulator import ServiceConfig
from repro.workloads.suites import suite_trace

QUERY = {
    "suite": "pdp11", "trace": "ED", "length": 4000,
    "net": 1024, "block": 16, "sub": 8,
}


async def request(
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP exchange; returns (status, headers, raw body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(body).encode() if body is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += f"Content-Length: {len(data)}\r\n\r\n"
    writer.write(head.encode() + data)
    await writer.drain()
    raw = await reader.read()  # Connection: close — read to EOF
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    parsed = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, payload


def serve(body, config: Optional[ServiceConfig] = None, **app_kwargs):
    """Run ``body(port)`` against a live app, tearing down afterwards."""

    async def main():
        app = ServiceApp(
            config=config or ServiceConfig(batch_window=0.0),
            port=0,
            **app_kwargs,
        )
        await app.start()
        try:
            return await body(app.port)
        finally:
            await app.stop()

    return asyncio.run(main())


class TestEngineCancellation:
    """The budget's last hop: cancellation inside the engines."""

    @pytest.mark.parametrize("engine", ["reference", "checked", "vectorized"])
    def test_an_expired_deadline_cancels_every_engine(self, engine):
        query = SimQuery.from_payload(
            dict(QUERY, engine=engine), default_length=4000
        )
        prepared = prepare_trace(
            suite_trace(query.suite, query.trace, length=query.length),
            query.filter_writes,
        )
        spec = query.spec()
        predecode(prepared, [spec])
        with pytest.raises(DeadlineExceededError) as excinfo:
            run_cell(prepared, spec, deadline=time.monotonic() - 1.0)
        assert excinfo.value.stage == "simulate"

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_a_slack_deadline_changes_nothing(self, engine):
        query = SimQuery.from_payload(
            dict(QUERY, engine=engine), default_length=4000
        )
        prepared = prepare_trace(
            suite_trace(query.suite, query.trace, length=query.length),
            query.filter_writes,
        )
        spec = query.spec()
        predecode(prepared, [spec])
        unbounded = run_cell(prepared, spec)
        bounded = run_cell(prepared, spec, deadline=time.monotonic() + 600.0)
        assert bounded.to_dict() == unbounded.to_dict()


class TestDeadlineHeader:
    def test_a_tiny_budget_maps_to_504_with_its_stage(self):
        async def body(port):
            return await request(
                port, "POST", "/simulate", QUERY,
                headers={"X-Repro-Deadline-Ms": "0.01"},
            )

        status, _, raw = serve(body)
        assert status == 504
        payload = json.loads(raw)
        assert payload["stage"] in {"admission", "queue", "dispatch",
                                    "simulate"}
        assert "deadline" in payload["error"]

    def test_a_slack_budget_changes_nothing(self):
        async def body(port):
            bare = await request(port, "POST", "/simulate", QUERY)
            budgeted = await request(
                port, "POST", "/simulate", QUERY,
                headers={"X-Repro-Deadline-Ms": "60000"},
            )
            return bare, budgeted

        (bare_status, _, bare_raw), (status, _, raw) = serve(body)
        assert bare_status == status == 200
        bare_payload = json.loads(bare_raw)
        payload = json.loads(raw)
        assert payload["fingerprint"] == bare_payload["fingerprint"]
        assert (
            payload["result"]["miss_ratio"]
            == bare_payload["result"]["miss_ratio"]
        )

    @pytest.mark.parametrize("raw_header", ["abc", "0", "-5", "nan"])
    def test_an_unusable_budget_is_a_400(self, raw_header):
        async def body(port):
            return await request(
                port, "POST", "/simulate", QUERY,
                headers={"X-Repro-Deadline-Ms": raw_header},
            )

        status, _, raw = serve(body)
        assert status == 400
        assert b"X-Repro-Deadline-Ms" in raw

    def test_sweep_honors_the_budget_too(self):
        async def body(port):
            return await request(
                port, "POST", "/sweep",
                {"base": QUERY, "grid": {"net": [256, 512]}},
                headers={"X-Repro-Deadline-Ms": "0.01"},
            )

        status, _, raw = serve(body)
        assert status == 504
        assert "stage" in json.loads(raw)


class TestRetryAfterJitter:
    def test_the_hint_stays_inside_the_jitter_envelope(self):
        samples = {_retry_after_header(4.0) for _ in range(200)}
        values = {int(sample) for sample in samples}
        # Never less than the true back-off, never more than +50%.
        assert all(4 <= value <= 6 for value in values)
        assert len(values) >= 2, "the jitter never jittered"

    def test_the_hint_is_always_at_least_one_second(self):
        assert _retry_after_header(0.0) == "1"
        assert _retry_after_header(-3.0) == "1"

    def test_a_rejected_request_carries_the_jittered_hint(self):
        config = ServiceConfig(batch_window=0.0, max_queue=0,
                               retry_after=4.0)

        async def body(port):
            return await request(port, "POST", "/simulate", QUERY)

        status, headers, raw = serve(body, config)
        assert status == 429
        assert 4 <= int(headers["retry-after"]) <= 6
        assert json.loads(raw)["retry_after"] == 4.0


class TestSlowLoris:
    def test_a_stalled_client_gets_408_and_the_service_lives_on(self):
        async def body(port):
            # A connection that sends half a request line and stalls.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"POST /simulate HTTP/1.1\r\nContent-Le")
            await writer.drain()
            # A well-behaved concurrent client is unaffected.
            healthy = await request(port, "POST", "/simulate", QUERY)
            stuck = await reader.read()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return healthy, stuck

        (status, _, _), stuck = serve(body, read_timeout=1.0)
        assert status == 200
        assert stuck.startswith(b"HTTP/1.1 408")
