"""Property tests for WAL recovery: any crash point, committed prefix.

The durability claim is quantified over *every* possible crash, not a
few hand-picked ones: truncate the segment at an arbitrary byte offset
(the file-level effect of a kill -9 or power cut at any instant) and
the recovered store must hold exactly a prefix of the committed
records, each byte-identical to what was committed.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.service.store import SEGMENT_MAGIC, WalStore


def _commit(directory, count: int) -> "list[dict]":
    records = [
        {
            "kind": "result",
            "fingerprint": f"fp-{n:04d}",
            "key": f"k{n}",
            "trace": f"T{n}",
            "miss": n / 17.0,
            "traffic": n / 13.0,
            "scaled": n / 11.0,
            "stats": {"accesses": n},
            "engine": "vectorized",
        }
        for n in range(count)
    ]
    store = WalStore(directory, fsync=False)
    for item in records:
        store.put(item)
    store.close()
    return records


@settings(max_examples=60, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=6),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    data=st.data(),
)
def test_truncation_at_any_offset_recovers_the_committed_prefix(
    tmp_path_factory, count, cut_fraction, data
):
    directory = tmp_path_factory.mktemp("wal")
    records = _commit(directory, count)
    segment = sorted(directory.glob("wal-*.seg"))[0]
    blob = segment.read_bytes()
    # The cut can land anywhere: inside the header, on a frame
    # boundary, or mid-payload.
    cut = data.draw(
        st.integers(min_value=0, max_value=len(blob)), label="cut"
    )
    with segment.open("r+b") as handle:
        handle.truncate(cut)

    recovered = WalStore(directory, fsync=False)
    report = recovered.last_recovery
    live = recovered.fingerprints()
    recovered.close()

    if cut < len(SEGMENT_MAGIC):
        # Not even a valid header survives: the remnant is quarantined
        # (unless the file is empty enough to hold nothing at all).
        assert live == []
        if cut > 0:
            assert report.segments_quarantined == 1
        return
    # Otherwise: the survivors are exactly a prefix of the commit
    # order, and each one round-trips byte-identically.
    assert report.segments_quarantined == 0
    assert report.records_damaged == 0
    expected_prefix = [r["fingerprint"] for r in records[: len(live)]]
    assert live == expected_prefix
    reopened = WalStore(directory, fsync=False)
    for item in records[: len(live)]:
        assert reopened.get(item["fingerprint"]) == item
    reopened.close()


@settings(max_examples=40, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=6),
    payload_junk=st.binary(min_size=1, max_size=64),
)
def test_appending_after_any_recovery_still_round_trips(
    tmp_path_factory, count, payload_junk
):
    """A recovered store must be fully writable, even after junk tails."""
    directory = tmp_path_factory.mktemp("wal")
    records = _commit(directory, count)
    segment = sorted(directory.glob("wal-*.seg"))[0]
    with segment.open("ab") as handle:
        handle.write(payload_junk)  # torn garbage past the last frame

    store = WalStore(directory, fsync=False)
    fresh = {
        "kind": "result",
        "fingerprint": "fp-new",
        "key": "k-new",
        "trace": "NEW",
        "miss": 0.5,
        "traffic": 0.25,
        "scaled": 0.125,
        "stats": {},
        "engine": "reference",
    }
    store.put(fresh)
    store.close()

    final = WalStore(directory, fsync=False)
    assert final.get("fp-new") == fresh
    for item in records:
        assert final.get(item["fingerprint"]) == item
    final.close()


@settings(max_examples=25, deadline=None)
@given(count=st.integers(min_value=1, max_value=8))
def test_records_survive_compaction_and_reopen(tmp_path_factory, count):
    directory = tmp_path_factory.mktemp("wal")
    records = _commit(directory, count)
    store = WalStore(directory, segment_bytes=256, fsync=False)
    assert store.compact() == count
    store.close()
    reopened = WalStore(directory, fsync=False)
    for item in records:
        assert reopened.get(item["fingerprint"]) == item
    reopened.close()


def test_committed_payloads_are_canonical_json(tmp_path):
    """Frames hold sorted-key JSON, so commits are byte-deterministic."""
    records = _commit(tmp_path / "wal", 3)
    segment = sorted((tmp_path / "wal").glob("wal-*.seg"))[0]
    data = segment.read_bytes()[len(SEGMENT_MAGIC):]
    offset = 0
    for item in records:
        length = int.from_bytes(data[offset:offset + 4], "little")
        payload = data[offset + 8:offset + 8 + length]
        assert payload == json.dumps(item, sort_keys=True).encode()
        offset += 8 + length
