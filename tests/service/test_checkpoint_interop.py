"""Cross-subsystem contract: service cache entries == sweep checkpoints.

The result cache is content-addressed by the checkpoint fingerprint of
the single-cell sweep a query denotes.  These tests pin the contract
from both sides: the addresses are provably identical, a served result
can seed a ``--resume`` run, and a runner checkpoint can seed the
service cache.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import CacheGeometry
from repro.engine.batch import prepare_trace
from repro.errors import ConfigurationError
from repro.memory.nibble import NIBBLE_MODE_BUS
from repro.runner.checkpoint import sweep_fingerprint
from repro.runner.health import CellStatus
from repro.runner.runner import RunnerConfig, cell_key, run_sweep
from repro.service import ServiceConfig, SimQuery, SimulationService
from repro.service.cache import ResultCache
from repro.workloads.suites import suite_trace

GEOMETRY = CacheGeometry(1024, 16, 8)
QUERY = SimQuery(
    suite="pdp11", trace="ED", length=4000, net=1024, block=16, sub=8
)


def simulate_once(config=None, cache=None):
    async def main():
        service = SimulationService(
            config or ServiceConfig(batch_window=0.0), cache=cache
        )
        await service.start()
        try:
            return await service.simulate(QUERY), service
        finally:
            await service.stop()

    return asyncio.run(main())


@pytest.fixture(scope="module")
def trace():
    return suite_trace("pdp11", "ED", length=4000)


class TestFingerprintIdentity:
    def test_query_fingerprint_equals_sweep_fingerprint(self, trace):
        """The addresses agree *by construction*, for every option set."""
        for engine, replacement, word_size in (
            ("auto", "lru", 2),
            ("reference", "fifo", 2),
            ("vectorized", "random", 4),
        ):
            query = SimQuery(
                suite="pdp11", trace="ED", length=4000,
                net=1024, block=16, sub=8,
                engine=engine, replacement=replacement, word_size=word_size,
            )
            prepared_length = len(prepare_trace(trace))
            expected = sweep_fingerprint(
                [cell_key(GEOMETRY, "ED")],
                [prepared_length],
                engine=engine,
                miss_path="none",
                sample="none",
                word_size=word_size,
                fetch="demand",
                replacement=replacement,
                warmup="fill",
                bus_model=NIBBLE_MODE_BUS,
                filter_writes=True,
            )
            assert query.fingerprint(prepared_length) == expected

    def test_service_entry_carries_the_checkpoint_fingerprint(
        self, trace, tmp_path
    ):
        """A checkpointed run and a served query agree on the address."""
        checkpoint = tmp_path / "cell.jsonl"
        run_sweep(
            [trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
        )
        header = json.loads(checkpoint.read_text().splitlines()[0])
        result, _service = simulate_once()
        assert result.entry.fingerprint == header["fingerprint"]


class TestServiceSeedsRunner:
    def test_exported_entry_resumes_a_sweep(self, trace, tmp_path):
        result, service = simulate_once()
        checkpoint = tmp_path / "exported.jsonl"
        service.cache.export_checkpoint(
            result.entry.fingerprint, checkpoint
        )

        points, report = run_sweep(
            [trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint), resume=True),
        )
        # The cell was NOT re-simulated: it resumed from the service's
        # exported record, with the identical ratio triple.
        assert report.resumed == 1
        assert all(
            outcome.status is CellStatus.RESUMED for outcome in report.outcomes
        )
        assert points[0].per_trace["ED"] == (
            result.entry.miss, result.entry.traffic, result.entry.scaled
        )

    def test_export_of_unknown_fingerprint_rejected(self, tmp_path):
        cache = ResultCache()
        with pytest.raises(ConfigurationError, match="no cached result"):
            cache.export_checkpoint("deadbeef", tmp_path / "x.jsonl")


class TestRunnerSeedsService:
    def test_runner_checkpoint_seeds_the_cache(self, trace, tmp_path):
        checkpoint = tmp_path / "cell.jsonl"
        points, _report = run_sweep(
            [trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
        )
        direct = points[0].per_trace["ED"]
        fingerprint = json.loads(
            checkpoint.read_text().splitlines()[0]
        )["fingerprint"]

        cache = ResultCache()
        assert cache.seed_from_checkpoint(checkpoint, fingerprint) == 1

        # A service built on the seeded cache answers from memory
        # without ever simulating.
        result, service = simulate_once(cache=cache)
        assert result.source == "memory"
        assert (result.entry.miss, result.entry.traffic, result.entry.scaled) == direct
        assert service.metrics.cells_total.value(labels={"status": "ok"}) == 0

    def test_wrong_fingerprint_rejected(self, trace, tmp_path):
        checkpoint = tmp_path / "cell.jsonl"
        run_sweep(
            [trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
        )
        with pytest.raises(ConfigurationError):
            ResultCache().seed_from_checkpoint(checkpoint, "00000000")

    def test_multi_cell_checkpoint_rejected(self, trace, tmp_path):
        checkpoint = tmp_path / "grid.jsonl"
        run_sweep(
            [trace], [GEOMETRY, CacheGeometry(512, 16, 8)],
            config=RunnerConfig(checkpoint=str(checkpoint)),
        )
        fingerprint = json.loads(
            checkpoint.read_text().splitlines()[0]
        )["fingerprint"]
        with pytest.raises(ConfigurationError, match="single-cell"):
            ResultCache().seed_from_checkpoint(checkpoint, fingerprint)
