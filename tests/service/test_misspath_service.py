"""Miss-path chains through the service layer.

Covers the new ``miss_path`` query axis end to end: payload parsing and
normalization (a disabled chain coalesces with chainless queries),
fingerprint distinctness, the worker-protocol round trip, and the
``repro_service_misspath_hits_total`` counter fed by computed cells —
and only by computed cells, never by cache hits.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.misspath import MissPathConfig
from repro.errors import ConfigurationError
from repro.service import ServiceConfig, SimQuery, SimulationService

BASE = {"suite": "pdp11", "trace": "ED", "net": 256, "block": 16, "sub": 8}
CHAIN = {"victim_entries": 4, "stream_buffers": 2, "stream_depth": 4}


def simulate_queries(*queries):
    """Run queries sequentially on one service; returns (results, service)."""

    async def main():
        service = SimulationService(ServiceConfig(batch_window=0.0))
        await service.start()
        try:
            results = []
            for query in queries:
                results.append(await service.simulate(query))
            return results, service
        finally:
            await service.stop()

    return asyncio.run(main())


class TestQueryAxis:
    def test_mapping_parses_to_config(self):
        query = SimQuery.from_payload(dict(BASE, miss_path=CHAIN), 4000)
        assert query.miss_path == MissPathConfig(**CHAIN)

    @pytest.mark.parametrize("disabled", [None, {}, {"victim_entries": 0}])
    def test_disabled_chain_coalesces_with_chainless(self, disabled):
        bare = SimQuery.from_payload(dict(BASE), 4000)
        routed = SimQuery.from_payload(dict(BASE, miss_path=disabled), 4000)
        assert routed == bare
        assert routed.miss_path is None
        assert routed.fingerprint(4000) == bare.fingerprint(4000)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="victim_entires"):
            SimQuery.from_payload(
                dict(BASE, miss_path={"victim_entires": 4}), 4000
            )

    @pytest.mark.parametrize(
        "bad",
        [
            {"stream_depth": 0},
            {"victim_entries": -1},
            {"l2_associativity": 0},
            "vc4",  # must be a mapping, not a key string
        ],
    )
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="miss_path"):
            SimQuery.from_payload(dict(BASE, miss_path=bad), 4000)

    def test_chain_key_changes_the_fingerprint(self):
        bare = SimQuery.from_payload(dict(BASE), 4000)
        chained = SimQuery.from_payload(dict(BASE, miss_path=CHAIN), 4000)
        other = SimQuery.from_payload(
            dict(BASE, miss_path={"victim_entries": 8}), 4000
        )
        prints = {q.fingerprint(4000) for q in (bare, chained, other)}
        assert len(prints) == 3

    def test_worker_protocol_round_trips(self):
        chained = SimQuery.from_payload(dict(BASE, miss_path=CHAIN), 4000)
        assert SimQuery.from_payload(chained.to_dict(), 4000) == chained
        bare = SimQuery.from_payload(dict(BASE), 4000)
        assert bare.to_dict()["miss_path"] is None
        assert SimQuery.from_payload(bare.to_dict(), 4000) == bare


class TestServiceExecution:
    def test_computed_cell_feeds_the_metrics_counter(self):
        chained = SimQuery.from_payload(
            dict(BASE, length=4000, miss_path=CHAIN), 4000
        )
        (first, second), service = simulate_queries(chained, chained)
        assert first.source == "computed"
        assert second.source in ("memory", "disk")

        misspath = first.entry.stats["misspath"]
        demand = misspath["demand_misses"]
        assert demand > 0
        counter = service.metrics.misspath_hits_total
        serviced = sum(
            counter.value(labels={"structure": name})
            for name in ("victim", "stream")
        )
        memory = counter.value(labels={"structure": "memory"})
        # Conservation carries through to /metrics — and the cache hit
        # on the second request did not double-count anything.
        assert serviced + memory == demand

        rendered = service.metrics.render()
        assert "repro_service_misspath_hits_total" in rendered

    def test_chained_and_bare_results_are_distinct_entries(self):
        bare = SimQuery.from_payload(dict(BASE, length=4000), 4000)
        chained = SimQuery.from_payload(
            dict(BASE, length=4000, miss_path=CHAIN), 4000
        )
        (bare_result, chained_result), _service = simulate_queries(
            bare, chained
        )
        assert bare_result.entry.fingerprint != chained_result.entry.fingerprint
        # The chain never alters L1 behavior: both entries report the
        # same miss and traffic ratios, only the misspath block differs.
        assert bare_result.entry.miss == chained_result.entry.miss
        assert bare_result.entry.traffic == chained_result.entry.traffic
        assert "misspath" not in bare_result.entry.stats
        assert chained_result.entry.stats["misspath"]["chain"] == [
            "victim", "stream"
        ]

    def test_chainless_metrics_stay_zero(self):
        bare = SimQuery.from_payload(dict(BASE, length=4000), 4000)
        _results, service = simulate_queries(bare)
        counter = service.metrics.misspath_hits_total
        assert counter.value(labels={"structure": "memory"}) == 0
