"""The static admission gate: abschain bounds versus deadline budgets.

With ``static_budget_bytes_per_ms`` configured, a deadline-carrying
chain query whose trace is backed by a bundled program gets a provable
service-time floor — the abschain *lower* bound on the chain's
``memory_bytes_fetched``, divided by the budget class's bandwidth.  A
budget below the floor is refused with ``stage="static-budget"``
before any engine work; everything the analysis cannot gate (no
chain, no deadline, synthetic traces, gate off) must flow exactly as
before.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import DeadlineExceededError
from repro.service.query import SimQuery
from repro.service.simulator import ServiceConfig, SimulationService

#: z8000 SORT is backed by the bundled qsort program, so it is
#: statically analyzable; the chain makes the bound chain-aware.
CHAIN_QUERY = {
    "suite": "z8000", "trace": "SORT", "length": 2000,
    "net": 256, "block": 16, "sub": 16, "assoc": 2,
    "miss_path": {"victim_entries": 4, "l2_net_size": 4096},
}

#: s370 FGO1 is synthetic — there is no program to analyze.
SYNTHETIC_QUERY = {
    "suite": "s370", "trace": "FGO1", "length": 2000,
    "net": 256, "block": 16, "sub": 16, "assoc": 2,
    "miss_path": {"victim_entries": 4},
}

#: A bandwidth so low that any proven traffic exceeds any sane budget.
HOPELESS_RATE = 1e-6


def run(coroutine):
    return asyncio.run(coroutine)


def query(payload):
    return SimQuery.from_payload(dict(payload), default_length=2000)


async def with_service(config, body):
    service = SimulationService(config)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()


class TestStaticBudgetGate:
    def test_hopeless_budget_is_refused_before_any_work(self):
        async def body(service):
            with pytest.raises(DeadlineExceededError) as excinfo:
                await service.simulate(
                    query(CHAIN_QUERY), deadline=time.monotonic() + 5.0
                )
            assert excinfo.value.stage == "static-budget"
            # Refused at admission: nothing entered the queue or cache.
            assert len(service.cache) == 0

        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=HOPELESS_RATE), body
            )
        )

    def test_metric_counts_the_static_stage(self):
        async def body(service):
            with pytest.raises(DeadlineExceededError):
                await service.simulate(
                    query(CHAIN_QUERY), deadline=time.monotonic() + 5.0
                )
            counter = service.metrics.deadline_exceeded_total
            assert counter.value(labels={"stage": "static-budget"}) == 1

        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=HOPELESS_RATE), body
            )
        )

    def test_generous_budget_passes_the_gate(self):
        async def body(service):
            result = await service.simulate(
                query(CHAIN_QUERY), deadline=time.monotonic() + 60.0
            )
            assert result.entry.stats["accesses"] > 0

        # Bytes-per-ms high enough that the floor rounds to ~nothing.
        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=1e12), body
            )
        )

    def test_no_deadline_is_never_gated(self):
        async def body(service):
            result = await service.simulate(query(CHAIN_QUERY))
            assert result.entry.stats["accesses"] > 0

        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=HOPELESS_RATE), body
            )
        )

    def test_gate_is_off_by_default(self):
        async def body(service):
            result = await service.simulate(
                query(CHAIN_QUERY), deadline=time.monotonic() + 60.0
            )
            assert result.entry.stats["accesses"] > 0

        run(with_service(ServiceConfig(), body))

    def test_chainless_queries_are_never_gated(self):
        bare = {
            key: value
            for key, value in CHAIN_QUERY.items()
            if key != "miss_path"
        }

        async def body(service):
            result = await service.simulate(
                query(bare), deadline=time.monotonic() + 60.0
            )
            assert result.entry.stats["accesses"] > 0

        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=HOPELESS_RATE), body
            )
        )

    def test_synthetic_traces_are_never_gated(self):
        async def body(service):
            result = await service.simulate(
                query(SYNTHETIC_QUERY), deadline=time.monotonic() + 60.0
            )
            assert result.entry.stats["accesses"] > 0

        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=HOPELESS_RATE), body
            )
        )

    def test_cached_results_bypass_the_gate(self):
        """The fast path answers before the gate: a result the cache
        already holds costs nothing, so a hopeless budget still gets
        it."""

        async def body(service):
            await service.simulate(query(CHAIN_QUERY))  # populate
            result = await service.simulate(
                query(CHAIN_QUERY), deadline=time.monotonic() + 5.0
            )
            assert result.source in ("memory", "disk")

        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=HOPELESS_RATE), body
            )
        )

    def test_floor_is_memoized_per_query_shape(self):
        async def body(service):
            for _ in range(3):
                with pytest.raises(DeadlineExceededError):
                    await service.simulate(
                        query(CHAIN_QUERY), deadline=time.monotonic() + 5.0
                    )
            assert len(service._static_floors) == 1

        run(
            with_service(
                ServiceConfig(static_budget_bytes_per_ms=HOPELESS_RATE), body
            )
        )
