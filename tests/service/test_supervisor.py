"""Supervisor tests: real child processes, injected crashes, drains.

These spawn actual ``python -m repro.service.worker`` subprocesses, so
each test pays a ~1s interpreter cold start per worker — the suite is
deliberately small and each test asserts several properties.  The
full fault matrix (torn stores, bit flips, slow loris) lives in the
service chaos harness (``python -m repro chaos --serve``).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import WorkerCrashError
from repro.service.admission import RejectedError
from repro.service.supervisor import Supervisor, SupervisorConfig

QUERY = {
    "suite": "pdp11", "trace": "ED", "length": 2000,
    "net": 512, "block": 16, "sub": 8,
}


def run(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout: float, step: float = 0.1) -> bool:
    for _ in range(int(timeout / step) + 1):
        if predicate():
            return True
        await asyncio.sleep(step)
    return predicate()


class TestHappyPath:
    def test_submit_answers_and_drain_retires_the_fleet(self):
        async def main():
            sup = Supervisor(SupervisorConfig(workers=1, default_length=2000))
            await sup.start()
            try:
                response = await sup.submit(dict(QUERY))
            finally:
                elapsed = await sup.drain()
            assert response["ok"] is True
            assert 0.0 < response["miss"] <= 1.0
            assert response["trace"] == "ED"
            assert response["stats"]["accesses"] > 0
            # Drain retired every worker and exported its latency.
            assert sup.describe()["alive"] == 0
            assert sup.metrics.drain_seconds.value() == elapsed
            assert elapsed < 10.0

        run(main())


class TestCrashContainment:
    def test_sigkill_mid_request_is_retried_on_a_sibling(self):
        async def main():
            sup = Supervisor(
                SupervisorConfig(
                    workers=2,
                    default_length=2000,
                    worker_env={
                        "REPRO_WORKER_CRASH_AFTER": "1",
                        "REPRO_WORKER_CHAOS_INDEX": "0",
                    },
                )
            )
            await sup.start()
            try:
                # Worker 0 (fewest in flight, picked first) SIGKILLs
                # itself with the request in flight; the supervisor
                # must re-dispatch to worker 1 invisibly.
                response = await sup.submit(dict(QUERY))
                assert response["ok"] is True
                crashed = await wait_for(
                    lambda: sup.metrics.worker_restarts_total.value(
                        labels={"reason": "crashed"}
                    ) >= 1,
                    timeout=5.0,
                )
                assert crashed, "the SIGKILL was never accounted as a crash"
            finally:
                await sup.drain()

        run(main())

    def test_crash_loop_keeps_restarting_with_backoff(self):
        async def main():
            sup = Supervisor(
                SupervisorConfig(
                    workers=1,
                    worker_env={"REPRO_WORKER_CRASH_ON_START": "1"},
                )
            )
            await sup.start()
            try:
                # With the only worker crash-looping, dispatch refuses
                # (or reports the crash) rather than hanging — never a
                # success, and the edge turns the refusal into a 503.
                rejected = None
                for _ in range(50):
                    try:
                        await sup.submit(dict(QUERY))
                    except RejectedError as exc:
                        rejected = exc
                        break
                    except WorkerCrashError:
                        # The death raced the dispatch; the breaker
                        # and backoff are being fed, try again.
                        await asyncio.sleep(0.1)
                    else:
                        raise AssertionError(
                            "a crash-on-start worker answered a request"
                        )
                assert rejected is not None
                assert rejected.reason == "no_workers"
                restarted = await wait_for(
                    lambda: sup.metrics.worker_restarts_total.value(
                        labels={"reason": "crashed"}
                    ) >= 2,
                    timeout=10.0,
                )
                assert restarted, "the crash loop was not restarted"
            finally:
                await sup.drain()

        run(main())

    def test_hung_worker_is_killed_and_counted_as_hung(self):
        async def main():
            sup = Supervisor(
                SupervisorConfig(
                    workers=1,
                    heartbeat_timeout=1.0,
                    crash_retries=0,
                    default_length=2000,
                    worker_env={"REPRO_WORKER_STALL_HEARTBEAT_AFTER": "1"},
                )
            )
            await sup.start()
            try:
                # Wait out the cold start so the stall is judged
                # against the tight heartbeat timeout, not the
                # startup grace.
                heard = await wait_for(
                    lambda: sup._workers[0].heard_once, timeout=10.0
                )
                assert heard, "worker never sent its first heartbeat"
                with pytest.raises(WorkerCrashError, match="hung"):
                    await sup.submit(dict(QUERY))
                assert sup.metrics.worker_restarts_total.value(
                    labels={"reason": "hung"}
                ) >= 1
            finally:
                await sup.drain()

        run(main())
