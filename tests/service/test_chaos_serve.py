"""Unit tests for the service chaos harness's building blocks.

The full harness (``python -m repro chaos --serve``) spawns real
worker fleets and takes ~15s, so CI runs it as its own smoke job; these
tests pin the measurement tools the scenarios' verdicts rest on — a
harness that misreads ``/metrics`` or miscompares results would pass
scenarios it should fail.
"""

from __future__ import annotations

import struct

import pytest

from repro.service.chaos import (
    SERVE_SCENARIOS,
    ChaosFailure,
    _committed_matches,
    _diff,
    _first_payload_offset,
    _metric,
    _require,
)
from repro.service.store import SEGMENT_MAGIC, WalStore

EXPOSITION = """\
# HELP repro_service_worker_restarts_total Worker restarts by reason.
# TYPE repro_service_worker_restarts_total counter
repro_service_worker_restarts_total{reason="crashed"} 3
repro_service_worker_restarts_total{reason="hung"} 1
repro_service_workers_alive 2
repro_service_drain_seconds 0.25
"""


class TestScenarioCatalogue:
    def test_ids_are_stable_and_documented(self):
        # docs/resilience.md and the CI smoke job refer to scenarios by
        # these exact ids; renames must be deliberate.
        assert SERVE_SCENARIOS == (
            "serve-kill-worker",
            "serve-crash-loop",
            "serve-stalled-heartbeat",
            "serve-torn-tail",
            "serve-bit-flip",
            "serve-slow-loris",
            "serve-drain",
        )

    def test_require_raises_chaos_failure_with_the_detail(self):
        _require(True, "fine")
        with pytest.raises(ChaosFailure, match="lost 2 results"):
            _require(False, "lost 2 results")


class TestMetricsParsing:
    def test_reads_a_labeled_series(self):
        assert _metric(
            EXPOSITION,
            "repro_service_worker_restarts_total",
            '{reason="crashed"}',
        ) == 3.0
        assert _metric(
            EXPOSITION,
            "repro_service_worker_restarts_total",
            '{reason="hung"}',
        ) == 1.0

    def test_reads_an_unlabeled_series(self):
        assert _metric(EXPOSITION, "repro_service_drain_seconds") == 0.25

    def test_a_missing_series_reads_as_zero(self):
        assert _metric(EXPOSITION, "repro_service_no_such_metric") == 0.0

    def test_a_prefix_name_does_not_shadow_a_longer_one(self):
        # "workers_alive" must not match the restarts series above it.
        assert _metric(EXPOSITION, "repro_service_workers_alive") == 2.0


class TestResultComparison:
    def test_diff_reports_only_divergent_fingerprints(self):
        baseline = {"fp-a": {"miss_ratio": 0.1}, "fp-b": {"miss_ratio": 0.2}}
        served = {
            "fp-a": {"miss_ratio": 0.1},
            "fp-b": {"miss_ratio": 0.3},
            "fp-c": {"miss_ratio": 0.4},  # not in the baseline at all
        }
        assert _diff(served, baseline) == ["fp-b", "fp-c"]
        assert _diff(dict(baseline), baseline) == []

    def test_committed_matches_distinguishes_lost_from_altered(self):
        baseline = {
            "fp-a": {
                "miss_ratio": 0.1, "traffic_ratio": 0.2,
                "scaled_traffic_ratio": 0.3,
            },
            "fp-b": {
                "miss_ratio": 0.4, "traffic_ratio": 0.5,
                "scaled_traffic_ratio": 0.6,
            },
        }
        records = {
            "fp-b": {"miss": 0.4, "traffic": 0.5, "scaled": 0.99},
        }
        problems = _committed_matches(
            records, {"fp-a", "fp-b"}, baseline
        )
        assert problems == ["fp-a lost", "fp-b altered"]

    def test_matching_commits_raise_no_problems(self):
        baseline = {
            "fp-a": {
                "miss_ratio": 0.1, "traffic_ratio": 0.2,
                "scaled_traffic_ratio": 0.3,
            },
        }
        records = {"fp-a": {"miss": 0.1, "traffic": 0.2, "scaled": 0.3}}
        assert _committed_matches(records, {"fp-a"}, baseline) == []


class TestBitFlipTargeting:
    def test_the_offset_lands_inside_the_first_payload(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        store.put({
            "kind": "result", "fingerprint": "fp-0", "key": "k", "trace": "T",
            "miss": 0.25, "traffic": 0.5, "scaled": 0.75, "stats": {},
            "engine": "vectorized",
        })
        store.close()
        segment = sorted((tmp_path / "wal").glob("wal-*.seg"))[0]
        offset = _first_payload_offset(segment)
        data = segment.read_bytes()
        header = len(SEGMENT_MAGIC)
        length, _crc = struct.unpack_from("<II", data, header)
        assert header + 8 <= offset < header + 8 + length
        # Flipping that byte must fail the frame's CRC on recovery.
        mutated = bytearray(data)
        mutated[offset] ^= 0x01
        segment.write_bytes(bytes(mutated))
        reopened = WalStore(tmp_path / "wal")
        assert reopened.last_recovery.records_damaged == 1
        assert reopened.get("fp-0") is None
        reopened.close()
