"""WalStore tests: framing, recovery, quarantine, compaction.

The store's contract is the durability half of the service's failure
model (docs/service.md): commits are atomic and fsync'd, torn tails are
truncated, interior corruption is quarantined (never deleted), and a
record that fails its CRC is never served.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.errors import ConfigurationError
from repro.runner.faults import flip_bit, tear_tail
from repro.service.store import SEGMENT_MAGIC, WalStore


def record(n: int) -> dict:
    return {
        "kind": "result",
        "fingerprint": f"fp-{n:04d}",
        "key": f"1024:16,8@4/T{n}",
        "trace": f"T{n}",
        "miss": 0.25 + n / 1000.0,
        "traffic": 0.5,
        "scaled": 0.75,
        "stats": {"accesses": 1000 + n},
        "engine": "vectorized",
    }


def fill(store: WalStore, count: int) -> None:
    for n in range(count):
        store.put(record(n))


class TestCommit:
    def test_put_then_get_round_trips_exactly(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        store.put(record(0))
        assert store.get("fp-0000") == record(0)
        assert len(store) == 1

    def test_put_is_idempotent(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        store.put(record(0))
        size = (tmp_path / "wal").joinpath("wal-00000001.seg").stat().st_size
        store.put(record(0))
        assert (
            tmp_path / "wal" / "wal-00000001.seg"
        ).stat().st_size == size

    def test_record_without_fingerprint_is_rejected(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        with pytest.raises(ConfigurationError, match="fingerprint"):
            store.put({"kind": "result"})

    def test_segments_roll_at_the_size_bound(self, tmp_path):
        store = WalStore(tmp_path / "wal", segment_bytes=256)
        fill(store, 6)
        assert store.segment_count > 1
        assert len(store) == 6

    def test_survives_close_and_reopen(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        fill(store, 5)
        store.close()
        reopened = WalStore(tmp_path / "wal")
        assert len(reopened) == 5
        assert reopened.get("fp-0003") == record(3)
        assert reopened.last_recovery.tails_truncated == 0
        assert reopened.last_recovery.records_indexed == 5


class TestTornTailRecovery:
    def test_torn_tail_is_truncated_and_prefix_survives(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        fill(store, 4)
        store.close()
        segment = tmp_path / "wal" / "wal-00000001.seg"
        # Cut inside the final record: the classic kill -9 artifact.
        tear_tail(segment, keep_fraction=0.9, seed=1)
        reopened = WalStore(tmp_path / "wal")
        report = reopened.last_recovery
        assert report.tails_truncated == 1
        assert report.segments_quarantined == 0
        assert report.records_indexed == 3
        for n in range(3):
            assert reopened.get(f"fp-{n:04d}") == record(n)
        assert reopened.get("fp-0003") is None

    def test_recovery_is_idempotent(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        fill(store, 3)
        store.close()
        segment = tmp_path / "wal" / "wal-00000001.seg"
        tear_tail(segment, keep_fraction=0.9, seed=1)
        WalStore(tmp_path / "wal").close()
        healed = segment.read_bytes()
        second = WalStore(tmp_path / "wal")
        assert second.last_recovery.tails_truncated == 0
        assert segment.read_bytes() == healed

    def test_tail_truncated_store_accepts_new_commits(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        fill(store, 3)
        store.close()
        tear_tail(tmp_path / "wal" / "wal-00000001.seg",
                  keep_fraction=0.9, seed=1)
        reopened = WalStore(tmp_path / "wal")
        reopened.put(record(2))  # the record the tear destroyed
        reopened.put(record(7))
        reopened.close()
        final = WalStore(tmp_path / "wal")
        assert final.get("fp-0002") == record(2)
        assert final.get("fp-0007") == record(7)


class TestCorruptionQuarantine:
    def _flip_payload_bit(self, segment) -> None:
        data = segment.read_bytes()
        length, _ = struct.unpack_from("<II", data, len(SEGMENT_MAGIC))
        flip_bit(segment, offset=len(SEGMENT_MAGIC) + 8 + length // 2)

    def test_interior_corruption_quarantines_and_salvages(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        fill(store, 4)
        store.close()
        segment = tmp_path / "wal" / "wal-00000001.seg"
        damaged = None
        self._flip_payload_bit(segment)
        damaged = segment.read_bytes()
        reopened = WalStore(tmp_path / "wal")
        report = reopened.last_recovery
        assert report.segments_quarantined == 1
        assert report.records_damaged == 1
        assert report.records_salvaged == 3
        # Record 0 (the damaged one) is gone; the rest were salvaged.
        assert reopened.get("fp-0000") is None
        for n in range(1, 4):
            assert reopened.get(f"fp-{n:04d}") == record(n)

    def test_quarantine_preserves_the_damaged_bytes(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        fill(store, 2)
        store.close()
        segment = tmp_path / "wal" / "wal-00000001.seg"
        self._flip_payload_bit(segment)
        damaged = segment.read_bytes()
        reopened = WalStore(tmp_path / "wal")
        quarantined = list(reopened.quarantine_dir.glob("wal-*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == damaged
        assert not segment.exists()  # moved, not copied or deleted

    def test_foreign_file_is_quarantined_wholesale(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        fill(store, 1)
        store.close()
        rogue = tmp_path / "wal" / "wal-00000099.seg"
        rogue.write_bytes(b"not a segment at all")
        reopened = WalStore(tmp_path / "wal")
        assert reopened.last_recovery.segments_quarantined == 1
        assert reopened.get("fp-0000") == record(0)
        assert (reopened.quarantine_dir / "wal-00000099.seg").exists()

    def test_get_never_serves_a_record_that_fails_its_crc(self, tmp_path):
        store = WalStore(tmp_path / "wal")
        store.put(record(0))
        # Corrupt the segment *behind the live index* — the re-read
        # verification must catch it.
        segment = tmp_path / "wal" / "wal-00000001.seg"
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0xFF
        segment.write_bytes(bytes(data))
        assert store.get("fp-0000") is None


class TestPreparedLengthMeta:
    """Supervised-mode fingerprints need the prepared trace length;
    the service persists it as a meta record so a restart can address
    its own store without re-simulating one cell per trace group."""

    def test_prepared_lengths_survive_a_restart(self, tmp_path):
        from repro.service.simulator import ServiceConfig, SimulationService

        config = ServiceConfig(store_dir=str(tmp_path / "wal"))
        first = SimulationService(config=config)
        group = ("pdp11", "ED", 5000, True)
        first._prepared_lengths[group] = 4242
        first._persist_prepared_length(group, 4242)
        first.cache.store.close()

        second = SimulationService(config=config)
        assert second._prepared_lengths[group] == 4242
        second.cache.store.close()

    def test_meta_records_are_never_served_as_results(self, tmp_path):
        from repro.service.cache import ResultCache

        cache = ResultCache(store_dir=str(tmp_path / "wal"))
        cache.store.put({
            "kind": "prepared_length",
            "fingerprint": "plen:pdp11:ED:5000:True",
            "group": ["pdp11", "ED", 5000, True],
            "prepared_length": 4242,
        })
        assert cache.get("plen:pdp11:ED:5000:True") is None
        cache.store.close()


class TestCompaction:
    def test_compact_merges_segments_and_keeps_every_record(self, tmp_path):
        store = WalStore(tmp_path / "wal", segment_bytes=256)
        fill(store, 8)
        assert store.segment_count > 1
        carried = store.compact()
        assert carried == 8
        assert store.segment_count == 1
        for n in range(8):
            assert store.get(f"fp-{n:04d}") == record(n)
        store.close()
        reopened = WalStore(tmp_path / "wal")
        assert len(reopened) == 8

    def test_compacted_segment_is_a_valid_frame_stream(self, tmp_path):
        store = WalStore(tmp_path / "wal", segment_bytes=256)
        fill(store, 5)
        store.compact()
        segment = sorted((tmp_path / "wal").glob("wal-*.seg"))[0]
        data = segment.read_bytes()
        assert data.startswith(SEGMENT_MAGIC)
        offset = len(SEGMENT_MAGIC)
        seen = 0
        while offset < len(data):
            length, crc = struct.unpack_from("<II", data, offset)
            payload = data[offset + 8:offset + 8 + length]
            assert zlib.crc32(payload) & 0xFFFFFFFF == crc
            json.loads(payload)
            offset += 8 + length
            seen += 1
        assert seen == 5
