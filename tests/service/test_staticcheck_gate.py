"""Service-edge static-lint tests: 400 + diagnostics, engine untouched.

The ``max_queue=0`` configuration turns the admission layer into a
tripwire: any request that reaches the simulation core is answered 429
(see ``test_http.TestOverload``).  A 400 from these requests therefore
proves the lint rejected them *before* the engine was ever invoked.
"""

import json

from repro.service.simulator import ServiceConfig
from service.test_http import request, serve

TRIPWIRE = ServiceConfig(batch_window=0.0, max_queue=0)

BASE = {"suite": "pdp11", "trace": "ED", "length": 2000}


def post(path, body, config=TRIPWIRE):
    async def exchange(port):
        return await request(port, "POST", path, body)

    status, _, raw = serve(exchange, config)
    return status, json.loads(raw)


class TestSimulateGate:
    def test_bad_geometry_is_400_with_diagnostics(self):
        status, payload = post(
            "/simulate", dict(BASE, net=100, block=32, sub=64, assoc=0)
        )
        assert status == 400
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert rules == {"geom-pow2", "geom-sub-gt-block", "geom-assoc-invalid"}
        assert "error" in payload

    def test_diagnostics_carry_structure(self):
        status, payload = post("/simulate", dict(BASE, net=64, block=16, sub=32))
        assert status == 400
        (finding,) = payload["diagnostics"]
        assert finding["rule"] == "geom-sub-gt-block"
        assert finding["severity"] == "error"
        assert finding["source"] == "query"
        assert finding["location"] == "sub"
        assert "sub-block size 32" in finding["message"]

    def test_plain_validation_errors_have_no_diagnostics(self):
        status, payload = post("/simulate", dict(BASE, suite="cray"))
        assert status == 400
        assert "diagnostics" not in payload

    def test_valid_geometry_passes_the_lint_gate(self):
        # Reaches admission (the tripwire) instead of being linted away.
        status, payload = post("/simulate", dict(BASE, net=512, block=16, sub=8))
        assert status == 429
        assert payload["reason"] == "queue_full"


class TestSweepGate:
    def test_empty_grid_axis_is_400_with_rule(self):
        status, payload = post(
            "/sweep",
            {"base": dict(BASE, block=16, sub=8), "grid": {"net": []}},
        )
        assert status == 400
        assert [d["rule"] for d in payload["diagnostics"]] == ["grid-axis-empty"]

    def test_non_integer_axis_value_is_400_with_rule(self):
        status, payload = post(
            "/sweep",
            {"base": dict(BASE, block=16, sub=8), "grid": {"net": [256, "1k"]}},
        )
        assert status == 400
        assert [d["rule"] for d in payload["diagnostics"]] == ["grid-axis-type"]

    def test_one_bad_cell_fails_the_whole_grid(self):
        status, payload = post(
            "/sweep",
            {
                "base": dict(BASE, net=256, sub=8),
                "grid": {"block": [8, 512]},  # 512 > net in one cell
            },
        )
        assert status == 400
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "geom-block-gt-net" in rules
