"""Service-side stack-distance passes: equality, caching, export compat."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.service import ServiceConfig, SimQuery, SimulationService


def grid_queries(**overrides):
    """Constant-sets quartet sharing one (block, sets) pass group."""
    return [
        SimQuery(
            suite="pdp11", trace="ED", length=4000,
            net=256 * assoc, block=16, sub=8, assoc=assoc,
            **overrides,
        )
        for assoc in (1, 2, 4, 8)
    ]


def simulate_batch(queries, config):
    async def main():
        service = SimulationService(config)
        await service.start()
        try:
            results = await asyncio.gather(
                *(service.simulate(query) for query in queries)
            )
            return results, service
        finally:
            await service.stop()

    return asyncio.run(main())


def test_grid_engine_validated():
    with pytest.raises(ConfigurationError):
        SimulationService(ServiceConfig(grid_engine="warp"))


def test_batched_grid_answers_from_passes_and_matches_percell():
    queries = grid_queries()
    fast, _ = simulate_batch(
        queries, ServiceConfig(batch_window=0.05, grid_engine="auto")
    )
    slow, _ = simulate_batch(
        queries, ServiceConfig(batch_window=0.05, grid_engine="percell")
    )
    for lhs, rhs in zip(fast, slow):
        assert lhs.entry.engine == "stackdist"
        assert rhs.entry.engine == "vectorized"
        # Exact equality of the ratio triple AND the full counter dump:
        # the pass path must be indistinguishable from per-cell.
        assert (lhs.entry.miss, lhs.entry.traffic, lhs.entry.scaled) == (
            rhs.entry.miss, rhs.entry.traffic, rhs.entry.scaled
        )
        assert lhs.entry.stats == rhs.entry.stats
        assert lhs.entry.fingerprint == rhs.entry.fingerprint


def test_noncoverable_queries_stay_percell():
    queries = grid_queries(replacement="fifo")
    results, _ = simulate_batch(
        queries, ServiceConfig(batch_window=0.05, grid_engine="auto")
    )
    assert all(r.entry.engine == "vectorized" for r in results)


def test_pass_results_are_cached():
    queries = grid_queries()

    async def main():
        service = SimulationService(
            ServiceConfig(batch_window=0.05, grid_engine="auto")
        )
        await service.start()
        try:
            first = await asyncio.gather(
                *(service.simulate(query) for query in queries)
            )
            again = await asyncio.gather(
                *(service.simulate(query) for query in queries)
            )
            return first, again
        finally:
            await service.stop()

    first, again = asyncio.run(main())
    assert all(r.source == "computed" for r in first)
    assert all(r.source in ("memory", "disk") for r in again)
    for lhs, rhs in zip(first, again):
        assert lhs.entry.stats == rhs.entry.stats


def test_exported_checkpoint_stays_byte_compatible(tmp_path):
    """Export of a stackdist-computed entry carries no engine key."""
    queries = grid_queries()
    results, service = simulate_batch(
        queries, ServiceConfig(batch_window=0.05, grid_engine="stackdist")
    )
    checkpoint = tmp_path / "exported.jsonl"
    service.cache.export_checkpoint(results[0].entry.fingerprint, checkpoint)
    records = [
        json.loads(line) for line in checkpoint.read_text().splitlines()
    ]
    cells = [r for r in records if r.get("kind") == "cell"]
    assert cells and all("engine" not in record for record in cells)
