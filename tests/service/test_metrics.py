"""Prometheus exposition-format tests for the service metrics."""

from __future__ import annotations

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help", labels=("kind",))
        counter.inc(labels={"kind": "a"})
        counter.inc(2, labels={"kind": "a"})
        assert counter.value(labels={"kind": "a"}) == 3
        assert counter.value(labels={"kind": "b"}) == 0

    def test_label_mismatch_rejected(self):
        counter = Counter("c_total", "help", labels=("kind",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(labels={"kind": "a", "extra": "b"})

    def test_render(self):
        counter = Counter("c_total", "things counted", labels=("kind",))
        counter.inc(labels={"kind": "a"})
        lines = counter.render()
        assert "# HELP c_total things counted" in lines
        assert "# TYPE c_total counter" in lines
        assert 'c_total{kind="a"} 1' in lines

    def test_unlabelled_renders_zero_before_first_touch(self):
        assert "c_total 0" in Counter("c_total", "h").render()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "h")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4


class TestHistogram:
    def test_cumulative_buckets(self):
        hist = Histogram("h_seconds", "h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        lines = hist.render()
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 2' in lines
        assert 'h_seconds_bucket{le="+Inf"} 3' in lines
        assert "h_seconds_count 3" in lines
        assert any(line.startswith("h_seconds_sum ") for line in lines)
        assert hist.count() == 3

    def test_labelled_series_are_independent(self):
        hist = Histogram("h", "h", labels=("stage",), buckets=(1.0,))
        hist.observe(0.5, labels={"stage": "a"})
        hist.observe(2.0, labels={"stage": "b"})
        assert hist.count(labels={"stage": "a"}) == 1
        assert hist.count(labels={"stage": "b"}) == 1
        lines = hist.render()
        assert 'h_bucket{stage="a",le="1"} 1' in lines
        assert 'h_bucket{stage="b",le="1"} 0' in lines


class TestRegistry:
    def test_record_lookup_updates_hit_ratio(self):
        registry = MetricsRegistry()
        registry.record_lookup("miss")
        assert registry.cache_hit_ratio.value() == 0.0
        registry.record_lookup("memory")
        assert registry.cache_hit_ratio.value() == 0.5
        registry.record_lookup("disk")
        registry.record_lookup("memory")
        assert registry.cache_hit_ratio.value() == 0.75

    def test_render_includes_every_instrument(self):
        text = MetricsRegistry().render()
        for name in (
            "repro_service_requests_total",
            "repro_service_cache_lookups_total",
            "repro_service_cache_hit_ratio",
            "repro_service_coalesced_total",
            "repro_service_rejected_total",
            "repro_service_queue_depth",
            "repro_service_inflight",
            "repro_service_cells_total",
            "repro_service_stage_seconds",
        ):
            assert f"# TYPE {name}" in text
        assert text.endswith("\n")
