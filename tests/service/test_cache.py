"""Result-cache tests: LRU, disk tier, corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.cache import CacheEntry, ResultCache


def entry(n: int) -> CacheEntry:
    return CacheEntry(
        fingerprint=f"{n:08x}",
        key=f"1024:16,8@4/T{n}",
        trace=f"T{n}",
        miss=n / 100.0,
        traffic=n / 50.0,
        scaled=n / 75.0,
        stats={"accesses": n},
    )


class TestMemoryTier:
    def test_get_miss_returns_none(self):
        assert ResultCache(maxsize=4).get("deadbeef") is None

    def test_put_then_get(self):
        cache = ResultCache(maxsize=4)
        cache.put(entry(1))
        got, tier = cache.get("00000001")
        assert tier == "memory"
        assert got.miss == 0.01
        assert got.stats == {"accesses": 1}

    def test_lru_evicts_oldest(self):
        cache = ResultCache(maxsize=2)
        cache.put(entry(1))
        cache.put(entry(2))
        cache.put(entry(3))
        assert cache.get("00000001") is None
        assert cache.get("00000002") is not None
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = ResultCache(maxsize=2)
        cache.put(entry(1))
        cache.put(entry(2))
        cache.get("00000001")  # 1 becomes MRU
        cache.put(entry(3))  # evicts 2, not 1
        assert cache.get("00000001") is not None
        assert cache.get("00000002") is None

    def test_zero_maxsize_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache(maxsize=0)


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = ResultCache(maxsize=4, disk_path=path)
        first.put(entry(1))
        second = ResultCache(maxsize=4, disk_path=path)
        got, tier = second.get("00000001")
        assert tier == "disk"
        original = entry(1)
        assert (got.miss, got.traffic, got.scaled) == (
            original.miss, original.traffic, original.scaled
        )
        assert got.stats == {"accesses": 1}

    def test_eviction_falls_back_to_disk_and_promotes(self, tmp_path):
        cache = ResultCache(maxsize=1, disk_path=tmp_path / "cache.jsonl")
        cache.put(entry(1))
        cache.put(entry(2))  # evicts 1 from memory; disk keeps it
        got, tier = cache.get("00000001")
        assert tier == "disk"
        # Promotion: the second lookup is a memory hit.
        _, tier = cache.get("00000001")
        assert tier == "memory"

    def test_put_is_idempotent_on_disk(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(maxsize=4, disk_path=path)
        cache.put(entry(1))
        cache.put(entry(1))
        assert len(path.read_text().splitlines()) == 1

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(maxsize=4, disk_path=path)
        cache.put(entry(1))
        cache.put(entry(2))
        with path.open("rb+") as handle:
            handle.seek(-10, 2)
            handle.truncate()  # tear the last record mid-line
        reopened = ResultCache(maxsize=4, disk_path=path)
        assert reopened.get("00000001") is not None
        assert reopened.get("00000002") is None
        assert reopened.disk_entries == 1

    def test_interior_corruption_skips_one_record(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(maxsize=4, disk_path=path)
        cache.put(entry(1))
        cache.put(entry(2))
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["miss"] = 0.99  # flip a value; CRC no longer matches
        lines[0] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        reopened = ResultCache(maxsize=4, disk_path=path)
        assert reopened.get("00000001") is None  # never serve bad data
        assert reopened.get("00000002") is not None
