"""End-to-end HTTP tests: a real ServiceApp on an ephemeral port.

The client is a raw asyncio-streams HTTP/1.1 requester living in the
same event loop as the server, so the whole exchange is deterministic
and needs no threads or sockets-on-random-hosts.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.service.app import ServiceApp
from repro.service.simulator import ServiceConfig

QUERY = {
    "suite": "pdp11", "trace": "ED", "length": 4000,
    "net": 1024, "block": 16, "sub": 8,
}


async def request(
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP exchange; returns (status, headers, raw body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\nContent-Length: {len(data)}\r\n\r\n"
    )
    writer.write(head.encode() + data)
    await writer.drain()
    raw = await reader.read()  # Connection: close — read to EOF
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


def serve(body, config: Optional[ServiceConfig] = None):
    """Run ``body(port)`` against a live app, tearing down afterwards."""

    async def main():
        app = ServiceApp(
            config=config or ServiceConfig(batch_window=0.0), port=0
        )
        await app.start()
        try:
            return await body(app.port)
        finally:
            await app.stop()

    return asyncio.run(main())


class TestSimulateEndpoint:
    def test_simulate_then_cached_repeat(self):
        async def body(port):
            status, _, raw = await request(port, "POST", "/simulate", QUERY)
            first = json.loads(raw)
            status2, _, raw2 = await request(port, "POST", "/simulate", QUERY)
            second = json.loads(raw2)
            return status, first, status2, second

        status, first, status2, second = serve(body)
        assert status == 200 and status2 == 200
        assert first["source"] == "computed" and first["cached"] is False
        assert second["source"] == "memory" and second["cached"] is True
        assert second["result"] == first["result"]
        assert set(first["result"]) == {
            "miss_ratio", "traffic_ratio", "scaled_traffic_ratio"
        }
        assert first["key"] == "1024:16,8@4/ED"
        assert first["stats"]["accesses"] > 0

    def test_validation_error_maps_to_400(self):
        async def body(port):
            return await request(
                port, "POST", "/simulate", dict(QUERY, suite="cray")
            )

        status, _, raw = serve(body)
        assert status == 400
        assert "error" in json.loads(raw)

    def test_malformed_json_maps_to_400(self):
        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            payload = b"{not json"
            writer.write(
                b"POST /simulate HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                + payload
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = serve(body)
        assert b"400" in raw.split(b"\r\n", 1)[0]

    def test_get_on_simulate_is_405(self):
        async def body(port):
            return await request(port, "GET", "/simulate")

        status, _, _ = serve(body)
        assert status == 405

    def test_unknown_route_is_404(self):
        async def body(port):
            return await request(port, "GET", "/nope")

        status, _, _ = serve(body)
        assert status == 404


class TestSweepEndpoint:
    def test_grid_expansion(self):
        async def body(port):
            return await request(
                port,
                "POST",
                "/sweep",
                {"base": QUERY, "grid": {"net": [256, 512], "sub": [4, 8]}},
            )

        status, _, raw = serve(body)
        payload = json.loads(raw)
        assert status == 200
        assert payload["count"] == 4
        assert len(payload["cells"]) == 4
        nets = {cell["query"]["geometry"]["net"] for cell in payload["cells"]}
        assert nets == {256, 512}


class TestObservabilityEndpoints:
    def test_healthz_and_metrics_reflect_traffic(self):
        async def body(port):
            await request(port, "POST", "/simulate", QUERY)
            await request(port, "POST", "/simulate", QUERY)
            h_status, _, h_raw = await request(port, "GET", "/healthz")
            m_status, m_headers, m_raw = await request(port, "GET", "/metrics")
            return h_status, json.loads(h_raw), m_status, m_headers, m_raw

        h_status, health, m_status, m_headers, m_raw = serve(body)
        assert h_status == 200
        assert health["status"] == "ok"
        assert health["cache_entries"] == 1
        assert m_status == 200
        assert m_headers["content-type"].startswith("text/plain")
        text = m_raw.decode()
        assert 'repro_service_cache_lookups_total{outcome="memory"} 1' in text
        assert "repro_service_cache_hit_ratio 0.5" in text
        assert (
            'repro_service_requests_total{endpoint="/simulate",status="200"} 2'
            in text
        )


class TestOverload:
    def test_queue_full_maps_to_429_with_retry_after(self):
        config = ServiceConfig(batch_window=0.0, max_queue=0)

        async def body(port):
            return await request(port, "POST", "/simulate", QUERY)

        status, headers, raw = serve(body, config)
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        payload = json.loads(raw)
        assert payload["reason"] == "queue_full"

    def test_oversized_body_maps_to_413(self):
        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /simulate HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 10000000\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = serve(body)
        assert b"413" in raw.split(b"\r\n", 1)[0]
