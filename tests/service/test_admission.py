"""Breaker and admission-controller tests (injected clock, no sleeps)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import AdmissionController, Breaker, RejectedError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tripped_breaker(clock: FakeClock, failures: int = 3) -> Breaker:
    breaker = Breaker(
        max_consecutive_failures=failures, reset_after=10.0, clock=clock
    )
    for _ in range(failures):
        breaker.record("k", "t", error="boom")
    return breaker


class TestBreaker:
    def test_stays_closed_below_the_streak(self):
        breaker = Breaker(max_consecutive_failures=3, clock=FakeClock())
        breaker.record("k", "t", error="boom")
        breaker.record("k", "t", error="boom")
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = Breaker(max_consecutive_failures=2, clock=FakeClock())
        breaker.record("k", "t", error="boom")
        breaker.record("k", "t")  # success
        breaker.record("k", "t", error="boom")
        assert breaker.state == "closed"

    def test_streak_opens_the_breaker(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_half_open_after_cooldown(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(10.0)
        breaker.record("k", "t")
        assert breaker.state == "closed"

    def test_half_open_failure_retrips_immediately(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(10.0)
        breaker.record("k", "t", error="still broken")
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_disabled_breaker_never_opens(self):
        breaker = Breaker(max_consecutive_failures=None, clock=FakeClock())
        for _ in range(100):
            breaker.record("k", "t", error="boom")
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_nonpositive_reset_rejected(self):
        with pytest.raises(ConfigurationError):
            Breaker(reset_after=0.0)


class TestAdmissionController:
    def test_admits_below_the_queue_limit(self):
        AdmissionController(max_queue=2).admit(queued=1)

    def test_full_queue_rejected_with_retry_hint(self):
        controller = AdmissionController(max_queue=2, retry_after=3.0)
        with pytest.raises(RejectedError) as excinfo:
            controller.admit(queued=2)
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.retry_after == 3.0

    def test_zero_queue_rejects_everything(self):
        with pytest.raises(RejectedError):
            AdmissionController(max_queue=0).admit(queued=0)

    def test_open_breaker_rejects_before_queue_check(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_queue=100, breaker=tripped_breaker(clock)
        )
        with pytest.raises(RejectedError) as excinfo:
            controller.admit(queued=0)
        assert excinfo.value.reason == "breaker_open"
        assert excinfo.value.retry_after == pytest.approx(10.0)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=-1)
