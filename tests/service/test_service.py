"""SimulationService tests: identity with the runner, coalescing, overload.

These drive the service core directly (no HTTP) with ``asyncio.run``;
the HTTP edge is covered in ``test_http.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import CacheGeometry
from repro.errors import ReproError
from repro.runner.runner import run_sweep
from repro.service import (
    RejectedError,
    ServiceConfig,
    SimQuery,
    SimulationService,
)
from repro.workloads.suites import suite_trace

QUERY = SimQuery(
    suite="pdp11", trace="ED", length=4000, net=1024, block=16, sub=8
)


def run(coroutine):
    return asyncio.run(coroutine)


async def with_service(config, body):
    service = SimulationService(config)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()


class TestResultIdentity:
    def test_served_result_is_byte_identical_to_a_runner_cell(self):
        trace = suite_trace("pdp11", "ED", length=4000)
        points, _report = run_sweep([trace], [CacheGeometry(1024, 16, 8)])
        direct = points[0].per_trace["ED"]

        async def body(service):
            return await service.simulate(QUERY)

        result = run(with_service(ServiceConfig(batch_window=0.0), body))
        # Exact float equality, not approx: the acceptance criterion is
        # repr-identical results, so both paths must run the same code
        # on the same prepared trace.
        assert (result.entry.miss, result.entry.traffic, result.entry.scaled) == direct
        assert result.source == "computed"
        assert result.entry.key == "1024:16,8@4/ED"

    def test_engine_override_forces_reference(self):
        async def body(service):
            return await service.simulate(QUERY)

        config = ServiceConfig(batch_window=0.0, engine="reference")
        result = run(with_service(config, body))
        assert result.entry.engine == "reference"


class TestCachingAndCoalescing:
    def test_repeat_query_hits_memory(self):
        async def body(service):
            first = await service.simulate(QUERY)
            second = await service.simulate(QUERY)
            return first, second, service

        first, second, service = run(
            with_service(ServiceConfig(batch_window=0.0), body)
        )
        assert first.source == "computed"
        assert second.source == "memory"
        assert second.entry == first.entry
        assert service.metrics.cache_lookups_total.value(
            labels={"outcome": "memory"}
        ) == 1
        assert service.metrics.cache_hit_ratio.value() == 0.5

    def test_concurrent_identical_queries_coalesce(self):
        async def body(service):
            results = await asyncio.gather(
                *(service.simulate(QUERY) for _ in range(4))
            )
            return results, service

        results, service = run(
            with_service(ServiceConfig(batch_window=0.01), body)
        )
        sources = sorted(result.source for result in results)
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == 3
        assert service.metrics.coalesced_total.value() == 3
        # All four waiters got the same entry; only one cell ran.
        assert len({result.entry.fingerprint for result in results}) == 1
        assert service.metrics.cells_total.value(labels={"status": "ok"}) == 1

    def test_distinct_queries_in_one_batch_share_the_prepared_trace(self):
        queries = [
            SimQuery(
                suite="pdp11", trace="ED", length=4000,
                net=net, block=16, sub=8,
            )
            for net in (256, 512, 1024)
        ]

        async def body(service):
            results = await asyncio.gather(
                *(service.simulate(query) for query in queries)
            )
            return results, service

        results, service = run(
            with_service(ServiceConfig(batch_window=0.01), body)
        )
        assert [result.source for result in results] == ["computed"] * 3
        # One batch, one trace group, one prepare observation.
        assert service.metrics.stage_seconds.count(
            labels={"stage": "prepare"}
        ) == 1


class TestOverloadAndFailure:
    def test_zero_queue_rejects_with_429_semantics(self):
        async def body(service):
            with pytest.raises(RejectedError) as excinfo:
                await service.simulate(QUERY)
            return excinfo.value, service

        error, service = run(
            with_service(ServiceConfig(batch_window=0.0, max_queue=0), body)
        )
        assert error.reason == "queue_full"
        assert error.retry_after > 0
        assert service.metrics.rejected_total.value(
            labels={"reason": "queue_full"}
        ) == 1

    def test_bounded_queue_rejects_the_overflow_query(self):
        slow = ServiceConfig(batch_window=5.0, max_queue=1)
        other = SimQuery(
            suite="pdp11", trace="ED", length=4000, net=512, block=16, sub=8
        )

        async def body(service):
            first = asyncio.ensure_future(service.simulate(QUERY))
            await asyncio.sleep(0)  # let it enqueue
            with pytest.raises(RejectedError) as excinfo:
                await service.simulate(other)
            await service.stop()  # fails the still-queued first query
            with pytest.raises(ReproError, match="stopped"):
                await first
            return excinfo.value

        error = run(with_service(slow, body))
        assert error.reason == "queue_full"

    def test_failures_open_the_breaker_and_cached_results_survive(self):
        config = ServiceConfig(
            batch_window=0.0, breaker_failures=1, breaker_reset=60.0
        )
        other = SimQuery(
            suite="pdp11", trace="ED", length=4000, net=512, block=16, sub=8
        )

        async def body(service):
            cached = await service.simulate(QUERY)  # populate the cache
            assert cached.source == "computed"

            def explode(prepared, query, deadline=None):
                raise ReproError("injected cell failure")

            service._execute = explode
            with pytest.raises(ReproError, match="injected"):
                await service.simulate(other)
            assert service.admission.breaker.state == "open"
            assert service.healthz()["status"] == "degraded"

            # New work is shed...
            with pytest.raises(RejectedError) as excinfo:
                await service.simulate(
                    SimQuery(
                        suite="pdp11", trace="ED", length=4000,
                        net=256, block=16, sub=8,
                    )
                )
            assert excinfo.value.reason == "breaker_open"
            # ...but cached answers are still served.
            hit = await service.simulate(QUERY)
            assert hit.source == "memory"

        run(with_service(config, body))

    def test_stop_fails_queued_queries(self):
        async def body(service):
            future = asyncio.ensure_future(
                service.simulate(QUERY)
            )
            await asyncio.sleep(0)
            await service.stop()
            with pytest.raises(ReproError, match="stopped"):
                await future

        run(with_service(ServiceConfig(batch_window=5.0), body))


class TestHealthz:
    def test_healthz_shape(self):
        async def body(service):
            await service.simulate(QUERY)
            return service.healthz()

        health = run(with_service(ServiceConfig(batch_window=0.0), body))
        assert health["status"] == "ok"
        assert health["breaker"] == "closed"
        assert health["cache_entries"] == 1
        assert health["cells"] == {"completed": 1, "skipped": 0}
        assert health["uptime_seconds"] >= 0
