"""Query normalization and validation tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.query import MAX_SWEEP_CELLS, SimQuery, expand_sweep

BASE = {"suite": "pdp11", "trace": "ED", "net": 1024, "block": 16, "sub": 8}


class TestFromPayload:
    def test_defaults_applied(self):
        query = SimQuery.from_payload(dict(BASE), default_length=5000)
        assert query.length == 5000
        assert query.assoc == 4
        assert query.engine == "auto"
        assert query.fetch == "demand"
        assert query.replacement == "lru"
        assert query.warmup == "fill"
        assert query.word_size == 2  # the PDP-11's word size
        assert query.filter_writes is True

    def test_nested_and_flat_geometry_are_equivalent(self):
        flat = SimQuery.from_payload(dict(BASE), 5000)
        nested = SimQuery.from_payload(
            {
                "suite": "pdp11",
                "trace": "ED",
                "geometry": {"net": 1024, "block": 16, "sub": 8},
            },
            5000,
        )
        assert flat == nested
        assert hash(flat) == hash(nested)

    def test_fetch_name_is_normalized(self):
        query = SimQuery.from_payload(
            dict(BASE, fetch="LOAD_FORWARD"), 5000
        )
        assert query.fetch == "load-forward"

    @pytest.mark.parametrize(
        "bad",
        [
            {"suite": "nope"},
            {"trace": "NOPE"},
            {"engine": "turbo"},
            {"fetch": "psychic"},
            {"replacement": "crystal"},
            {"warmup": "sometimes"},
            {"warmup": -3},
            {"net": "big"},
            {"net": 0},
            {"sub": 32},  # sub-block larger than block
            {"mystery_knob": 1},
        ],
    )
    def test_invalid_payloads_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            SimQuery.from_payload(dict(BASE, **bad), 5000)

    def test_missing_required_key_rejected(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            SimQuery.from_payload({"suite": "pdp11", "trace": "ED"}, 5000)

    def test_cell_key_matches_runner_format(self):
        query = SimQuery.from_payload(dict(BASE), 5000)
        assert query.cell() == "1024:16,8@4/ED"

    def test_to_dict_round_trips_through_from_payload(self):
        query = SimQuery.from_payload(dict(BASE, assoc=2, engine="reference"), 5000)
        assert SimQuery.from_payload(query.to_dict(), 5000) == query


class TestExpandSweep:
    def test_cross_product(self):
        queries = expand_sweep(
            {"base": dict(BASE), "grid": {"net": [256, 512], "sub": [4, 8]}},
            default_length=5000,
        )
        assert len(queries) == 4
        assert {(q.net, q.sub) for q in queries} == {
            (256, 4), (256, 8), (512, 4), (512, 8)
        }

    def test_grid_axes_override_base(self):
        (query,) = expand_sweep(
            {"base": dict(BASE), "grid": {"net": [256]}}, 5000
        )
        assert query.net == 256

    def test_oversized_grid_rejected(self):
        grid = {"net": [2 ** i for i in range(8, 8 + MAX_SWEEP_CELLS // 8)],
                "assoc": [1, 2, 4, 8, 16, 1, 2, 4, 8]}
        with pytest.raises(ConfigurationError, match="exceeding"):
            expand_sweep({"base": dict(BASE), "grid": grid}, 5000)

    def test_one_invalid_cell_fails_whole_request(self):
        with pytest.raises(ConfigurationError):
            expand_sweep(
                {"base": dict(BASE), "grid": {"sub": [8, 32]}}, 5000
            )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="grid axes"):
            expand_sweep(
                {"base": dict(BASE), "grid": {"warp": [1]}}, 5000
            )
