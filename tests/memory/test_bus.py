"""Shared-bus accounting tests."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.bus import Bus
from repro.memory.nibble import LINEAR_BUS, NIBBLE_MODE_BUS


class TestTransfer:
    def test_costs_accumulate(self):
        bus = Bus(NIBBLE_MODE_BUS)
        assert bus.transfer(1) == pytest.approx(1.0)
        assert bus.transfer(4) == pytest.approx(2.0)
        assert bus.total_cost == pytest.approx(3.0)
        assert bus.transactions == 2
        assert bus.words_moved == 5

    def test_histogram(self):
        bus = Bus()
        bus.transfer(2)
        bus.transfer(2)
        bus.transfer(8)
        assert bus.histogram == {2: 2, 8: 1}

    def test_zero_word_transfer_rejected(self):
        with pytest.raises(ConfigurationError):
            Bus().transfer(0)


class TestReplay:
    def test_replay_matches_individual_transfers(self):
        direct = Bus(NIBBLE_MODE_BUS)
        for _ in range(3):
            direct.transfer(4)
        direct.transfer(1)
        replayed = Bus(NIBBLE_MODE_BUS)
        added = replayed.replay({4: 3, 1: 1})
        assert added == pytest.approx(direct.total_cost)
        assert replayed.words_moved == direct.words_moved
        assert replayed.histogram == direct.histogram

    def test_replay_cache_stats_histogram(self, z8000_grep_trace):
        from repro.core import CacheGeometry, run_config

        stats = run_config(CacheGeometry(256, 16, 8), z8000_grep_trace)
        bus = Bus(LINEAR_BUS)
        bus.replay(stats.transaction_words)
        assert bus.words_moved * 2 == stats.bytes_fetched  # 2-byte words


class TestUtilization:
    def test_busy_cycles_scale_with_bandwidth(self):
        slow = Bus(LINEAR_BUS, words_per_cycle=1.0)
        fast = Bus(LINEAR_BUS, words_per_cycle=2.0)
        slow.transfer(8)
        fast.transfer(8)
        assert slow.busy_cycles() == 2 * fast.busy_cycles()

    def test_utilization_capped_at_one(self):
        bus = Bus(LINEAR_BUS)
        bus.transfer(100)
        assert bus.utilization(10) == 1.0

    def test_utilization_fraction(self):
        bus = Bus(LINEAR_BUS)
        bus.transfer(5)
        assert bus.utilization(10) == pytest.approx(0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Bus(words_per_cycle=0)
        with pytest.raises(ConfigurationError):
            Bus().utilization(0)
