"""Shared-bus multiprocessor simulator tests."""

import pytest

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.memory.multiproc import SharedBusSystem
from repro.memory.nibble import LINEAR_BUS
from repro.trace.record import Trace


def hot_trace(n=500, addr=0x100):
    """All accesses hit one sub-block after the cold miss."""
    return Trace([addr] * n, [0] * n, 2)


def cold_trace(n=500, stride=64):
    """Every access misses (new block each time)."""
    return Trace([i * stride for i in range(n)], [0] * n, 2)


def make_cache():
    return SubBlockCache(CacheGeometry(1024, 16, 8))


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedBusSystem([make_cache()], [hot_trace(), hot_trace()])

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedBusSystem([], [])

    def test_bad_hit_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedBusSystem([make_cache()], [hot_trace()], hit_cycles=0)


class TestSingleProcessor:
    def test_hit_only_runs_at_one_access_per_cycle(self):
        result = SharedBusSystem([make_cache()], [hot_trace(500)]).run()
        assert result.accesses == 500
        # One cold miss, 499 hits: makespan ~= 500 cycles + bus cost.
        assert result.makespan == pytest.approx(500 + result.bus_busy)
        assert result.bus_wait == 0.0

    def test_miss_heavy_stream_busies_the_bus(self):
        result = SharedBusSystem(
            [make_cache()], [cold_trace(500)], bus_model=LINEAR_BUS
        ).run()
        # Every access misses and moves 4 words on a linear bus.
        assert result.bus_busy == pytest.approx(500 * 4)
        assert result.bus_utilization > 0.7


class TestContention:
    def test_hit_only_processors_scale_linearly(self):
        n = 4
        system = SharedBusSystem(
            [make_cache() for _ in range(n)],
            [hot_trace(500) for _ in range(n)],
        )
        result = system.run()
        single = SharedBusSystem([make_cache()], [hot_trace(500)]).run()
        assert result.throughput == pytest.approx(n * single.throughput, rel=0.05)

    def test_miss_heavy_processors_saturate_the_bus(self):
        n = 6
        system = SharedBusSystem(
            [make_cache() for _ in range(n)],
            [cold_trace(300) for _ in range(n)],
            bus_model=LINEAR_BUS,
        )
        result = system.run()
        assert result.bus_utilization > 0.95
        assert result.mean_wait_per_access > 1.0

    def test_saturated_throughput_is_sublinear(self):
        single = SharedBusSystem(
            [make_cache()], [cold_trace(300)], bus_model=LINEAR_BUS
        ).run()
        quad = SharedBusSystem(
            [make_cache() for _ in range(4)],
            [cold_trace(300) for _ in range(4)],
            bus_model=LINEAR_BUS,
        ).run()
        assert quad.throughput < 2 * single.throughput

    def test_caches_raise_sustainable_processor_count(self, z8000_grep_trace):
        """The paper's argument: lower traffic ratio -> more CPUs."""
        from repro.trace.filters import reads_only

        trace = reads_only(z8000_grep_trace)
        n = 4

        def throughput(geometry):
            caches = [SubBlockCache(geometry) for _ in range(n)]
            return SharedBusSystem(caches, [trace] * n).run().throughput

        small = throughput(CacheGeometry(64, 16, 16))
        large = throughput(CacheGeometry(1024, 16, 8))
        assert large > small

    def test_deterministic(self):
        def run_once():
            system = SharedBusSystem(
                [make_cache(), make_cache()],
                [cold_trace(200), hot_trace(200)],
            )
            return system.run()

        first, second = run_once(), run_once()
        assert first.finish_times == second.finish_times
        assert first.bus_busy == second.bus_busy
