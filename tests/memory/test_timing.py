"""Effective-access-time model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.timing import MemoryTiming, effective_access_time


class TestEffectiveAccessTime:
    def test_perfect_cache(self):
        assert effective_access_time(0.0, 100, 500) == 100

    def test_no_cache(self):
        assert effective_access_time(1.0, 100, 500) == 500

    def test_linear_interpolation(self):
        assert effective_access_time(0.5, 100, 500) == 300

    def test_bad_miss_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            effective_access_time(1.5, 100, 500)
        with pytest.raises(ConfigurationError):
            effective_access_time(-0.1, 100, 500)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            effective_access_time(0.5, -1, 500)


class TestMemoryTiming:
    def test_bursky_defaults(self):
        timing = MemoryTiming()
        assert timing.miss_penalty_ns(1) == 160
        assert timing.miss_penalty_ns(4) == 160 + 3 * 55

    def test_effective_access_uses_sub_block_penalty(self):
        timing = MemoryTiming(t_cache_ns=100)
        small = timing.effective_access_ns(0.1, sub_block_words=1)
        large = timing.effective_access_ns(0.1, sub_block_words=8)
        assert small < large

    def test_lower_miss_ratio_can_justify_bigger_sub_blocks(self):
        # The t_eff trade-off the paper describes: a larger sub-block
        # costs more per miss but (for these ratios) wins by missing
        # less often.
        timing = MemoryTiming(t_cache_ns=100)
        small_sub = timing.effective_access_ns(0.20, sub_block_words=1)
        large_sub = timing.effective_access_ns(0.05, sub_block_words=4)
        assert large_sub < small_sub

    def test_zero_word_transfer_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming().miss_penalty_ns(0)

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming(t_cache_ns=-1)
