"""Bus cost model and nibble-mode scaling tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.memory.nibble import (
    LINEAR_BUS,
    NIBBLE_MODE_BUS,
    BusCostModel,
    scaled_traffic_factor,
)


class TestBusCostModel:
    def test_linear_cost(self):
        assert LINEAR_BUS.cost(1) == 1.0
        assert LINEAR_BUS.cost(8) == 8.0

    def test_nibble_matches_paper_formula(self):
        # Section 4.3: cost(w) = 1 + (w - 1) / 3.
        for words in (1, 2, 4, 8, 16):
            assert NIBBLE_MODE_BUS.cost(words) == pytest.approx(
                1 + (words - 1) / 3
            )

    def test_zero_words_is_free(self):
        assert NIBBLE_MODE_BUS.cost(0) == 0.0

    def test_from_latencies_normalizes_first_word(self):
        model = BusCostModel.from_latencies(160, 55)
        assert model.cost(1) == pytest.approx(1.0)
        assert model.cost(2) == pytest.approx(1 + 55 / 160)

    def test_paper_approximation_of_bursky(self):
        # 160/55 approximated as 3:1 gives exactly the nibble model.
        approx = BusCostModel.from_latencies(3, 1)
        for words in range(1, 10):
            assert approx.cost(words) == pytest.approx(
                NIBBLE_MODE_BUS.cost(words)
            )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BusCostModel(base=0.5, per_word=0)
        with pytest.raises(ConfigurationError):
            BusCostModel(base=-1, per_word=1)
        with pytest.raises(ConfigurationError):
            BusCostModel.from_latencies(0, 55)


class TestScaledTrafficFactor:
    def test_single_word_is_unscaled(self):
        assert scaled_traffic_factor(1, NIBBLE_MODE_BUS) == pytest.approx(1.0)

    def test_paper_example_values(self):
        # (1/w)(1 + (w-1)/3): w=4 -> 0.5, w=16 -> 0.375.
        assert scaled_traffic_factor(4, NIBBLE_MODE_BUS) == pytest.approx(0.5)
        assert scaled_traffic_factor(16, NIBBLE_MODE_BUS) == pytest.approx(0.375)

    def test_linear_bus_never_scales(self):
        for words in (1, 2, 8, 32):
            assert scaled_traffic_factor(words, LINEAR_BUS) == pytest.approx(1.0)

    @given(words=st.integers(1, 64))
    def test_factor_decreases_with_transfer_size(self, words):
        assert scaled_traffic_factor(
            words + 1, NIBBLE_MODE_BUS
        ) < scaled_traffic_factor(words, NIBBLE_MODE_BUS)

    @given(words=st.integers(1, 256))
    def test_factor_bounded_below_by_marginal_cost(self, words):
        # As w grows the factor approaches b = 1/3 from above.
        factor = scaled_traffic_factor(words, NIBBLE_MODE_BUS)
        assert 1 / 3 < factor <= 1.0

    def test_zero_words_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_traffic_factor(0, NIBBLE_MODE_BUS)
