"""Resilient-runner integration tests: resume, retry, degradation."""

import math

import pytest

from repro.analysis.sweep import sweep
from repro.core.config import CacheGeometry
from repro.errors import CellTimeoutError, ReproError, TransientError
from repro.runner.chaos import points_digest
from repro.runner.faults import FaultInjector, SweepAborted
from repro.runner.retry import RetryPolicy
from repro.runner.runner import RunnerConfig, cell_key, run_sweep
from repro.trace.record import Trace

NO_SLEEP = staticmethod(lambda seconds: None)


def constant_trace(addr, n=200, name="const"):
    return Trace([addr] * n, [0] * n, 2, name=name)


def striding_trace(n=200, name="cold"):
    return Trace([i * 64 for i in range(n)], [0] * n, 2, name=name)


@pytest.fixture
def traces():
    return [constant_trace(0x100, name="hot"), striding_trace(name="cold")]


@pytest.fixture
def geometries():
    return [
        CacheGeometry(64, 16, 16),
        CacheGeometry(64, 16, 8),
        CacheGeometry(128, 16, 8),
    ]


class TestInertConfig:
    def test_default_config_matches_plain_sweep(self, traces, geometries):
        plain = sweep(traces, geometries, word_size=2, warmup=0)
        resilient, report = run_sweep(
            traces, geometries, word_size=2, warmup=0, config=RunnerConfig()
        )
        assert points_digest(plain) == points_digest(resilient)
        assert report.total == len(traces) * len(geometries)
        assert not report.skipped


class TestCheckpointResume:
    def test_killed_sweep_resumes_bit_identically(self, traces, geometries, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        baseline, _ = run_sweep(traces, geometries, word_size=2, warmup=0)

        with pytest.raises(SweepAborted):
            run_sweep(
                traces, geometries, word_size=2, warmup=0,
                config=RunnerConfig(
                    checkpoint=ck, injector=FaultInjector(abort_after=3)
                ),
            )
        resumed, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(checkpoint=ck, resume=True),
        )
        assert report.resumed == 3
        assert points_digest(resumed) == points_digest(baseline)

    def test_resume_without_checkpoint_file_runs_everything(
        self, traces, geometries, tmp_path
    ):
        baseline, _ = run_sweep(traces, geometries, word_size=2, warmup=0)
        points, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(checkpoint=tmp_path / "new.jsonl", resume=True),
        )
        assert report.resumed == 0
        assert points_digest(points) == points_digest(baseline)

    def test_previously_skipped_cells_stay_skipped_on_resume(
        self, traces, geometries, tmp_path
    ):
        ck = tmp_path / "sweep.jsonl"
        run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(
                checkpoint=ck, lenient=True,
                injector=FaultInjector(
                    error_cells=("*/cold",), fail_attempts=None
                ),
                sleep=lambda s: None,
            ),
        )
        points, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(checkpoint=ck, resume=True, lenient=True),
        )
        assert all(point.skipped_traces == ("cold",) for point in points)
        assert len(report.skipped) == len(geometries)

    def test_for_tag_derives_disjoint_checkpoints(self, tmp_path):
        config = RunnerConfig(checkpoint=tmp_path / "ck.jsonl")
        assert config.for_tag("net64").checkpoint == tmp_path / "ck.net64.jsonl"
        assert RunnerConfig().for_tag("net64").checkpoint is None


class TestRetry:
    def test_transient_cell_recovers_and_results_are_unchanged(
        self, traces, geometries
    ):
        baseline, _ = run_sweep(traces, geometries, word_size=2, warmup=0)
        flaky = cell_key(geometries[1], "hot")
        points, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(
                retry=RetryPolicy(max_retries=2),
                injector=FaultInjector(
                    error_cells=(flaky,), error_at=10, fail_attempts=2
                ),
                sleep=lambda s: None,
            ),
        )
        assert report.retried == 1
        assert points_digest(points) == points_digest(baseline)

    def test_retries_stop_after_the_budget(self, traces, geometries):
        injector = FaultInjector(
            error_cells=("*",), error_at=0, fail_attempts=None
        )
        with pytest.raises(TransientError):
            run_sweep(
                traces, geometries, word_size=2, warmup=0,
                config=RunnerConfig(
                    retry=RetryPolicy(max_retries=3),
                    injector=injector,
                    sleep=lambda s: None,
                ),
            )
        first = cell_key(geometries[0], "hot")
        assert injector._attempts[first] == 4  # 1 try + 3 retries


class TestGracefulDegradation:
    def test_partial_average_matches_hand_computed_value(
        self, traces, geometries
    ):
        # Hand computation: with "cold" failing, the suite average over
        # the survivors is exactly the per-trace value of "hot".
        clean, _ = run_sweep(traces, geometries, word_size=2, warmup=0)
        points, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(
                lenient=True,
                injector=FaultInjector(
                    error_cells=("*/cold",), fail_attempts=None
                ),
                sleep=lambda s: None,
            ),
        )
        for point, reference in zip(points, clean):
            hot_miss, hot_traffic, hot_scaled = reference.per_trace["hot"]
            assert point.miss_ratio == hot_miss
            assert point.traffic_ratio == hot_traffic
            assert point.scaled_traffic_ratio == hot_scaled
            assert point.skipped_traces == ("cold",)
            assert list(point.per_trace) == ["hot"]
        assert set(report.skipped_by_trace()) == {"cold"}
        assert all("TransientError" in o.reason for o in report.skipped)

    def test_all_cells_failing_yields_nan_point(self, traces, geometries):
        points, _ = run_sweep(
            traces, [geometries[0]], word_size=2, warmup=0,
            config=RunnerConfig(
                lenient=True,
                injector=FaultInjector(error_cells=("*",), fail_attempts=None),
                sleep=lambda s: None,
            ),
        )
        assert math.isnan(points[0].miss_ratio)
        assert points[0].skipped_traces == ("hot", "cold")

    def test_strict_mode_propagates_the_failure(self, traces, geometries):
        with pytest.raises(TransientError):
            run_sweep(
                traces, geometries, word_size=2, warmup=0,
                config=RunnerConfig(
                    injector=FaultInjector(
                        error_cells=("*/cold",), fail_attempts=None
                    ),
                ),
            )


class TestBudgets:
    def test_access_budget_trips_cell_timeout(self, traces, geometries):
        with pytest.raises(CellTimeoutError, match="access budget"):
            run_sweep(
                traces, [geometries[0]], word_size=2, warmup=0,
                config=RunnerConfig(max_cell_accesses=50),
            )

    def test_access_budget_skips_in_lenient_mode(self, traces, geometries):
        points, report = run_sweep(
            traces, [geometries[0]], word_size=2, warmup=0,
            config=RunnerConfig(max_cell_accesses=50, lenient=True),
        )
        assert len(report.skipped) == 2
        assert all("CellTimeoutError" in o.reason for o in report.skipped)

    def test_wall_clock_timeout_skips_a_stalled_cell(self, traces, geometries):
        stalled = cell_key(geometries[0], "hot")
        points, report = run_sweep(
            traces, [geometries[0]], word_size=2, warmup=0,
            config=RunnerConfig(
                lenient=True,
                cell_timeout=0.02,
                injector=FaultInjector(
                    stall_cells=(stalled,), stall_seconds=0.001
                ),
            ),
        )
        assert [o.key for o in report.skipped] == [stalled]
        assert points[0].skipped_traces == ("hot",)

    def test_generous_budgets_change_nothing(self, traces, geometries):
        baseline, _ = run_sweep(traces, geometries, word_size=2, warmup=0)
        points, _ = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(cell_timeout=60.0, max_cell_accesses=10_000),
        )
        assert points_digest(points) == points_digest(baseline)


class TestHealthBreaker:
    def test_long_failure_streak_aborts_even_in_lenient_mode(
        self, traces, geometries
    ):
        with pytest.raises(ReproError, match="consecutive"):
            run_sweep(
                traces, geometries, word_size=2, warmup=0,
                config=RunnerConfig(
                    lenient=True,
                    max_consecutive_failures=3,
                    injector=FaultInjector(
                        error_cells=("*",), fail_attempts=None
                    ),
                    sleep=lambda s: None,
                ),
            )
