"""Checkpoint format v3: miss-path fingerprints, legacy resume, records.

Version 3 folds the miss-path chain key into the sweep fingerprint and
closes the fingerprint-param set.  These tests pin the new identity
rules (chained and chainless sweeps can never share an address), the
per-version legacy resume path (v1 and v2 checkpoints still resume —
but only into chainless sweeps), and the per-cell ``misspath`` summary
the runner records for chained sweeps.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.core.config import CacheGeometry
from repro.core.misspath import MissPathConfig
from repro.errors import ConfigurationError
from repro.runner.checkpoint import (
    CHECKPOINT_VERSION,
    FINGERPRINT_PARAMS,
    CheckpointWriter,
    load_checkpoint,
    sweep_fingerprint,
)
from repro.runner.runner import RunnerConfig, run_sweep

FP = sweep_fingerprint(["a"], [10], miss_path="none", word_size=2)
CHAIN = MissPathConfig(victim_entries=4, stream_buffers=2)
GEOMETRY = CacheGeometry(256, 16, 8)


class TestFingerprintParams:
    def test_param_set_is_closed_and_versioned(self):
        assert "miss_path" in FINGERPRINT_PARAMS
        # v4 additionally folds the sampling key into the fingerprint
        # (tests/runner/test_sampled_runner.py pins its semantics).
        assert "sample" in FINGERPRINT_PARAMS
        assert CHECKPOINT_VERSION == 4

    def test_unknown_param_rejected_loudly(self):
        # The satellite requirement by name: a typo'd param must fail
        # immediately, not silently mint a distinct fingerprint.
        with pytest.raises(ConfigurationError, match="victim_entires"):
            sweep_fingerprint(["a"], [10], victim_entires=4)

    def test_miss_path_key_distinguishes_sweeps(self):
        chained = sweep_fingerprint(
            ["a"], [10], miss_path=CHAIN.key(), word_size=2
        )
        assert chained != FP
        assert chained == sweep_fingerprint(
            ["a"], [10], miss_path=CHAIN.key(), word_size=2
        )
        other_chain = sweep_fingerprint(
            ["a"], [10], miss_path="vc8", word_size=2
        )
        assert other_chain != chained


class TestMisspathCellRecords:
    def test_summary_round_trips_through_the_file(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        summary = {"victim": 3, "stream": 7, "memory_fetches": 2}
        with CheckpointWriter(path, FP) as writer:
            writer.record_cell(
                "a", "t", "ok", ratios=(0.1, 0.2, 0.3), misspath=summary
            )
            writer.record_cell("b", "t", "ok", ratios=(0.1, 0.2, 0.3))
        cells = load_checkpoint(path, FP)
        assert cells["a"]["misspath"] == summary
        assert "misspath" not in cells["b"]


class TestLegacyResume:
    def _write_legacy(self, tmp_path, version, fingerprint):
        path = tmp_path / "legacy.jsonl"
        lines = []
        for record in (
            {"kind": "header", "version": version, "fingerprint": fingerprint},
            {
                "kind": "cell", "key": "a", "trace": "t1", "status": "ok",
                "attempts": 1, "miss": 0.25, "traffic": 0.5, "scaled": 0.375,
            },
        ):
            body = json.dumps(record, sort_keys=True)
            record["crc"] = f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x}"
            lines.append(json.dumps(record, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_v2_resumes_via_the_version_map(self, tmp_path):
        v2_fp = sweep_fingerprint(["a"], [10], engine="auto", word_size=2)
        v3_fp = sweep_fingerprint(
            ["a"], [10], engine="auto", miss_path="none", word_size=2
        )
        path = self._write_legacy(tmp_path, 2, v2_fp)
        cells = load_checkpoint(path, v3_fp, legacy_fingerprints={2: v2_fp})
        assert cells["a"]["miss"] == 0.25

    def test_v1_still_resumes_via_the_back_compat_kwarg(self, tmp_path):
        v1_fp = sweep_fingerprint(["a"], [10], word_size=2)
        path = self._write_legacy(tmp_path, 1, v1_fp)
        cells = load_checkpoint(path, FP, legacy_fingerprint=v1_fp)
        assert cells["a"]["miss"] == 0.25

    def test_version_without_a_mapped_fingerprint_rejected(self, tmp_path):
        v2_fp = sweep_fingerprint(["a"], [10], engine="auto", word_size=2)
        path = self._write_legacy(tmp_path, 2, v2_fp)
        with pytest.raises(ConfigurationError, match="version"):
            load_checkpoint(path, FP, legacy_fingerprint=v2_fp)  # maps to v1

    def test_mismatched_legacy_fingerprint_rejected(self, tmp_path):
        path = self._write_legacy(tmp_path, 2, "feedc0de")
        with pytest.raises(ConfigurationError, match="different sweep"):
            load_checkpoint(path, FP, legacy_fingerprints={2: "00000000"})


class TestSweepIntegration:
    def test_chained_sweep_records_the_summary(self, tiny_trace, tmp_path):
        checkpoint = tmp_path / "chained.jsonl"
        points, _report = run_sweep(
            [tiny_trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
            warmup=0,
            miss_path=CHAIN,
        )
        records = [
            json.loads(line) for line in checkpoint.read_text().splitlines()
        ]
        cell = next(r for r in records if r["kind"] == "cell")
        assert set(cell["misspath"]) == {"victim", "stream", "memory_fetches"}
        assert sum(cell["misspath"].values()) > 0
        assert points[0].miss_ratio > 0

    def test_chainless_sweep_omits_the_summary(self, tiny_trace, tmp_path):
        checkpoint = tmp_path / "bare.jsonl"
        run_sweep(
            [tiny_trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
            warmup=0,
        )
        records = [
            json.loads(line) for line in checkpoint.read_text().splitlines()
        ]
        cell = next(r for r in records if r["kind"] == "cell")
        assert "misspath" not in cell

    def test_chain_key_changes_the_sweep_address(self, tiny_trace, tmp_path):
        checkpoint = tmp_path / "ck.jsonl"
        run_sweep(
            [tiny_trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
            warmup=0,
        )
        bare_fp = json.loads(
            checkpoint.read_text().splitlines()[0]
        )["fingerprint"]
        run_sweep(
            [tiny_trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
            warmup=0,
            miss_path=CHAIN,
        )
        chained_fp = json.loads(
            checkpoint.read_text().splitlines()[0]
        )["fingerprint"]
        assert bare_fp != chained_fp

    def test_chained_sweep_refuses_a_chainless_resume(
        self, tiny_trace, tmp_path
    ):
        checkpoint = tmp_path / "ck.jsonl"
        run_sweep(
            [tiny_trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
            warmup=0,
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(
                [tiny_trace], [GEOMETRY],
                config=RunnerConfig(checkpoint=str(checkpoint), resume=True),
                warmup=0,
                miss_path=CHAIN,
            )

    def test_chained_resume_is_exact(self, z8000_grep_trace, tmp_path):
        checkpoint = tmp_path / "resume.jsonl"
        direct, _ = run_sweep(
            [z8000_grep_trace], [GEOMETRY, CacheGeometry(512, 16, 8)],
            config=RunnerConfig(checkpoint=str(checkpoint)),
            miss_path=CHAIN,
        )
        resumed, report = run_sweep(
            [z8000_grep_trace], [GEOMETRY, CacheGeometry(512, 16, 8)],
            config=RunnerConfig(checkpoint=str(checkpoint), resume=True),
            miss_path=CHAIN,
        )
        assert report.resumed == 2
        assert [p.per_trace for p in resumed] == [p.per_trace for p in direct]

    def test_chainless_sweep_resumes_a_v2_checkpoint(
        self, tiny_trace, tmp_path
    ):
        # Write a real chainless v3 checkpoint, then rewrite its header
        # as the v2 format (same records, fingerprint sans miss_path).
        checkpoint = tmp_path / "v2.jsonl"
        run_sweep(
            [tiny_trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint)),
            warmup=0,
        )
        lines = checkpoint.read_text().splitlines()
        header = json.loads(lines[0])
        header.pop("crc")
        header["version"] = 2
        header["fingerprint"] = "unknown!"  # recomputed below
        # The v2 fingerprint is the v3 one minus the miss_path param;
        # recover it by re-running the sweep's own math.
        from repro.engine.batch import prepare_trace
        from repro.memory.nibble import NIBBLE_MODE_BUS
        from repro.runner.runner import cell_key

        header["fingerprint"] = sweep_fingerprint(
            [cell_key(GEOMETRY, tiny_trace.name)],
            [len(prepare_trace(tiny_trace))],
            engine="auto",
            word_size=2,
            fetch="demand",
            replacement="lru",
            warmup=0,
            bus_model=NIBBLE_MODE_BUS,
            filter_writes=True,
        )
        body = json.dumps(header, sort_keys=True)
        header["crc"] = f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x}"
        lines[0] = json.dumps(header, sort_keys=True)
        checkpoint.write_text("\n".join(lines) + "\n")

        _points, report = run_sweep(
            [tiny_trace], [GEOMETRY],
            config=RunnerConfig(checkpoint=str(checkpoint), resume=True),
            warmup=0,
        )
        assert report.resumed == 1
