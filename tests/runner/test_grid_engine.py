"""--grid-engine wiring in run_sweep: equality, records, resume interop."""

import json

import pytest

from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.runner.chaos import points_digest
from repro.runner.runner import RunnerConfig, run_sweep
from repro.trace.record import Trace


def read_trace(n=300, name="reads", stride=12):
    addrs = [(i * stride) % 2048 for i in range(n)]
    return Trace(addrs, [0] * n, 2, name=name)


@pytest.fixture
def traces():
    return [read_trace(name="alpha"), read_trace(name="beta", stride=40)]


@pytest.fixture
def grid():
    """Constant-sets quartet: net co-varies with assoc, one pass group."""
    return [
        CacheGeometry(
            net_size=256 * assoc, block_size=16,
            sub_block_size=8, associativity=assoc,
        )
        for assoc in (1, 2, 4, 8)
    ]


def test_stackdist_points_equal_percell(traces, grid):
    base, base_report = run_sweep(
        traces, grid, config=RunnerConfig(grid_engine="percell")
    )
    fast, fast_report = run_sweep(
        traces, grid, config=RunnerConfig(grid_engine="stackdist")
    )
    assert points_digest(base) == points_digest(fast)
    for lhs, rhs in zip(base, fast):
        assert lhs.per_trace == rhs.per_trace
    assert base_report.pass_groups == 0
    assert fast_report.pass_groups == 2  # one group per trace
    assert fast_report.by_engine().get("stackdist") == 8


def test_auto_uses_passes_for_groups_of_two_plus(traces, grid):
    points, report = run_sweep(traces, grid, config=RunnerConfig())
    assert report.pass_groups == 2
    assert all(o.engine == "stackdist" for o in report.outcomes)
    summary = report.summary()
    assert "stackdist" in summary and "pass group" in summary


def test_singleton_grid_stays_percell_under_auto(traces):
    grid = [CacheGeometry(512, 16, 8), CacheGeometry(1024, 32, 8)]
    points, report = run_sweep(traces, grid, config=RunnerConfig())
    assert report.pass_groups == 0
    assert "stackdist" not in report.by_engine()


def test_write_traces_fall_back_transparently(grid):
    # filter_writes=False keeps the WRITE accesses, which break LRU
    # inclusion — the pass phase must skip the trace, not mis-answer it.
    n = 200
    writes = Trace(
        [(i * 24) % 1024 for i in range(n)],
        [0, 1] * (n // 2), 2, name="rw",
    )
    base, _ = run_sweep(
        [writes], grid, filter_writes=False,
        config=RunnerConfig(grid_engine="percell"),
    )
    fast, report = run_sweep(
        [writes], grid, filter_writes=False,
        config=RunnerConfig(grid_engine="stackdist"),
    )
    assert points_digest(base) == points_digest(fast)
    assert report.pass_groups == 0
    assert "stackdist" not in report.by_engine()


def test_filtered_write_trace_is_coverable(grid):
    # The default filter_writes=True drops writes during preparation,
    # so the prepared trace is read-only and one-pass coverable again.
    n = 200
    writes = Trace(
        [(i * 24) % 1024 for i in range(n)],
        [0, 1] * (n // 2), 2, name="rw",
    )
    _, report = run_sweep(
        [writes], grid, config=RunnerConfig(grid_engine="stackdist")
    )
    assert report.pass_groups == 1
    assert report.by_engine().get("stackdist") == 4


def test_unknown_grid_engine_rejected(traces, grid):
    with pytest.raises(ConfigurationError):
        run_sweep(traces, grid, config=RunnerConfig(grid_engine="warp"))


def test_records_carry_engine_and_same_fingerprint(traces, grid, tmp_path):
    ck_fast = tmp_path / "fast.jsonl"
    ck_slow = tmp_path / "slow.jsonl"
    run_sweep(
        traces, grid,
        config=RunnerConfig(checkpoint=ck_fast, grid_engine="stackdist"),
    )
    run_sweep(
        traces, grid,
        config=RunnerConfig(checkpoint=ck_slow, grid_engine="percell"),
    )
    fast_lines = [json.loads(line) for line in ck_fast.read_text().splitlines()]
    slow_lines = [json.loads(line) for line in ck_slow.read_text().splitlines()]
    # Same header fingerprint: grid engine is not part of the sweep's
    # identity, only of how cells were computed.
    assert fast_lines[0]["fingerprint"] == slow_lines[0]["fingerprint"]
    fast_cells = {r["key"]: r for r in fast_lines[1:] if r.get("kind") == "cell"}
    slow_cells = {r["key"]: r for r in slow_lines[1:] if r.get("kind") == "cell"}
    assert fast_cells.keys() == slow_cells.keys()
    for key, record in fast_cells.items():
        assert record["engine"] == "stackdist"
        assert slow_cells[key]["engine"] == "vectorized"
        for ratio in ("miss", "traffic", "scaled"):
            assert record[ratio] == slow_cells[key][ratio]


@pytest.mark.parametrize(
    "first, second", [("stackdist", "percell"), ("percell", "stackdist")]
)
def test_resume_interop_across_grid_engines(traces, grid, tmp_path, first, second):
    ck = tmp_path / "sweep.jsonl"
    baseline, _ = run_sweep(traces, grid)
    # Full sweep under one engine, then truncate to half the cells to
    # simulate a kill mid-sweep...
    run_sweep(
        traces, grid,
        config=RunnerConfig(checkpoint=ck, grid_engine=first),
    )
    lines = ck.read_text().splitlines(keepends=True)
    ck.write_text("".join(lines[:5]))  # header + 4 cell records
    # ...then the full sweep resumes under the other engine.
    points, report = run_sweep(
        traces, grid,
        config=RunnerConfig(checkpoint=ck, resume=True, grid_engine=second),
    )
    assert report.resumed == 4
    assert points_digest(points) == points_digest(baseline)
    resumed = [o for o in report.outcomes if o.status.value == "resumed"]
    want_engine = "stackdist" if first == "stackdist" else "vectorized"
    assert all(o.engine == want_engine for o in resumed)
