"""Sampled sweeps through the resilient runner.

The load-bearing guarantees: the ``--sample`` axis is part of the
checkpoint identity (a sampled sweep can never resume — or be resumed
by — an exact sweep, nor one with different sampling parameters),
sampled cells record clearly-marked ``exact: false`` stats payloads,
and every incompatible axis falls back to exact simulation with
bit-identical results and a named preflight warning.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.runner.chaos import points_digest
from repro.runner.checkpoint import CHECKPOINT_VERSION
from repro.runner.runner import RunnerConfig, run_sweep
from repro.trace.record import Trace


def looping_trace(n=600, name="loop"):
    addrs = [0x100 + (i % 16) * 2 for i in range(n)]
    return Trace(addrs, [2] * n, 2, name=name)


def striding_trace(n=600, name="cold"):
    return Trace([i * 64 for i in range(n)], [0] * n, 2, name=name)


@pytest.fixture
def traces():
    return [looping_trace(), striding_trace()]


@pytest.fixture
def geometries():
    return [CacheGeometry(128, 16, 8), CacheGeometry(256, 16, 8)]


def run_sampled_sweep(traces, geometries, ck=None, sample="100,2", **kwargs):
    config = RunnerConfig(checkpoint=ck, **kwargs) if ck or kwargs else None
    return run_sweep(
        traces, geometries, word_size=2, warmup=0,
        sample=sample, config=config,
    )


class TestSampledCells:
    def test_cells_run_and_report_the_sampled_engine(
        self, traces, geometries
    ):
        points, report = run_sampled_sweep(traces, geometries)
        assert report.total == len(traces) * len(geometries)
        assert all(o.engine == "sampled" for o in report.outcomes)
        for point in points:
            assert 0.0 <= point.miss_ratio <= 1.0

    def test_checkpoint_records_marked_sampled_stats(
        self, traces, geometries, tmp_path
    ):
        ck = tmp_path / "sampled.jsonl"
        run_sampled_sweep(traces, geometries, ck=ck)
        lines = [json.loads(line) for line in ck.read_text().splitlines()]
        header, cells = lines[0], lines[1:]
        assert header["version"] == CHECKPOINT_VERSION
        assert len(cells) == len(traces) * len(geometries)
        for cell in cells:
            assert cell["engine"] == "sampled"
            marker = cell["stats"]["sampled"]
            assert marker["exact"] is False
            assert marker["sample"]["interval"] == 100
            assert marker["sample"]["k"] == 2

    def test_sampled_sweep_is_deterministic(self, traces, geometries):
        one, _ = run_sampled_sweep(traces, geometries)
        two, _ = run_sampled_sweep(traces, geometries)
        assert points_digest(one) == points_digest(two)


class TestFingerprintDisjointness:
    def test_exact_sweep_refuses_a_sampled_checkpoint(
        self, traces, geometries, tmp_path
    ):
        ck = tmp_path / "sampled.jsonl"
        run_sampled_sweep(traces, geometries, ck=ck)
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(
                traces, geometries, word_size=2, warmup=0,
                config=RunnerConfig(checkpoint=ck, resume=True),
            )

    def test_sampled_sweep_refuses_an_exact_checkpoint(
        self, traces, geometries, tmp_path
    ):
        ck = tmp_path / "exact.jsonl"
        run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(checkpoint=ck),
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sampled_sweep(traces, geometries, ck=ck, resume=True)

    def test_different_sampling_parameters_never_share_cells(
        self, traces, geometries, tmp_path
    ):
        ck = tmp_path / "sampled.jsonl"
        run_sampled_sweep(traces, geometries, ck=ck, sample="100,2")
        for other in ("100,3", "50,2", "100"):
            with pytest.raises(ConfigurationError, match="different sweep"):
                run_sampled_sweep(
                    traces, geometries, ck=ck, sample=other, resume=True
                )

    def test_sampled_sweep_resumes_itself_bit_identically(
        self, traces, geometries, tmp_path
    ):
        ck = tmp_path / "sampled.jsonl"
        baseline, _ = run_sampled_sweep(traces, geometries, ck=ck)
        resumed, report = run_sampled_sweep(
            traces, geometries, ck=ck, resume=True
        )
        assert report.resumed == len(traces) * len(geometries)
        assert points_digest(resumed) == points_digest(baseline)


class TestNamedFallbacks:
    def test_checked_engine_falls_back_to_exact_results(
        self, traces, geometries
    ):
        exact, _ = run_sweep(traces, geometries, word_size=2, warmup=0)
        points, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            sample="100,2", config=RunnerConfig(engine="checked"),
        )
        assert points_digest(points) == points_digest(exact)
        assert "sampled" not in {o.engine for o in report.outcomes}
        assert "sample-fallback-checked" in {
            f.rule for f in report.preflight
        }

    def test_injector_falls_back_with_a_named_warning(
        self, traces, geometries
    ):
        from repro.runner.faults import FaultInjector

        exact, _ = run_sweep(traces, geometries, word_size=2, warmup=0)
        points, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            sample="100,2",
            config=RunnerConfig(injector=FaultInjector()),
        )
        assert points_digest(points) == points_digest(exact)
        assert "sample-fallback-injector" in {
            f.rule for f in report.preflight
        }

    def test_fallback_checkpoint_is_the_exact_sweeps_checkpoint(
        self, traces, geometries, tmp_path
    ):
        # A fallen-back sweep *is* an exact sweep; its checkpoint must
        # interoperate with one, not with sampled checkpoints.
        ck = tmp_path / "fallback.jsonl"
        run_sweep(
            traces, geometries, word_size=2, warmup=0,
            sample="100,2",
            config=RunnerConfig(engine="checked", checkpoint=ck),
        )
        resumed, report = run_sweep(
            traces, geometries, word_size=2, warmup=0,
            config=RunnerConfig(
                engine="checked", checkpoint=ck, resume=True
            ),
        )
        assert report.resumed == len(traces) * len(geometries)
