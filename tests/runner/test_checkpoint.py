"""Checkpoint format tests: round-trips, corruption, fingerprints."""

import json
import zlib

import pytest

from repro.errors import ChecksumError, ConfigurationError
from repro.runner.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    load_checkpoint,
    sweep_fingerprint,
)

FP = sweep_fingerprint(["a", "b"], [100], word_size=2)


class TestFingerprint:
    def test_stable_for_identical_sweeps(self):
        assert FP == sweep_fingerprint(["a", "b"], [100], word_size=2)

    def test_sensitive_to_cells_lengths_and_params(self):
        assert FP != sweep_fingerprint(["a"], [100], word_size=2)
        assert FP != sweep_fingerprint(["a", "b"], [200], word_size=2)
        assert FP != sweep_fingerprint(["a", "b"], [100], word_size=4)


class TestRoundTrip:
    def test_cells_survive_a_round_trip_exactly(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ratios = (0.1234567890123456789, 2 / 3, 1e-17)
        with CheckpointWriter(path, FP) as writer:
            writer.record_cell("a", "t1", "ok", ratios=ratios, attempts=2)
            writer.record_cell("b", "t2", "skipped", reason="boom")
        cells = load_checkpoint(path, FP)
        assert set(cells) == {"a", "b"}
        # Bit-identical float round-trip is what makes resume exact.
        assert (cells["a"]["miss"], cells["a"]["traffic"], cells["a"]["scaled"]) == ratios
        assert cells["a"]["attempts"] == 2
        assert cells["b"]["status"] == "skipped"
        assert cells["b"]["reason"] == "boom"

    def test_missing_file_means_nothing_completed(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.jsonl", FP) == {}

    def test_append_mode_keeps_existing_cells(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointWriter(path, FP) as writer:
            writer.record_cell("a", "t1", "ok", ratios=(0.1, 0.2, 0.3))
        with CheckpointWriter(path, FP, fresh=False) as writer:
            writer.record_cell("b", "t2", "ok", ratios=(0.4, 0.5, 0.6))
        assert set(load_checkpoint(path, FP)) == {"a", "b"}

    def test_fresh_mode_truncates(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointWriter(path, FP) as writer:
            writer.record_cell("a", "t1", "ok", ratios=(0.1, 0.2, 0.3))
        with CheckpointWriter(path, FP) as writer:
            writer.record_cell("b", "t2", "ok", ratios=(0.4, 0.5, 0.6))
        assert set(load_checkpoint(path, FP)) == {"b"}


class TestCorruption:
    def _write(self, tmp_path, n_cells=3):
        path = tmp_path / "ck.jsonl"
        with CheckpointWriter(path, FP) as writer:
            for index in range(n_cells):
                writer.record_cell(
                    f"cell{index}", "t", "ok", ratios=(0.1, 0.2, 0.3)
                )
        return path

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = self._write(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # crash mid-write
        cells = load_checkpoint(path, FP)
        assert set(cells) == {"cell0", "cell1"}

    def test_corrupted_interior_line_raises_checksum_error(self, tmp_path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["miss"] = 0.999  # tampered, CRC now stale
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ChecksumError, match="line 2"):
            load_checkpoint(path, FP)

    def test_wrong_fingerprint_refuses_to_resume(self, tmp_path):
        path = self._write(tmp_path)
        other = sweep_fingerprint(["x"], [1], word_size=4)
        with pytest.raises(ConfigurationError, match="different sweep"):
            load_checkpoint(path, other)

    def test_unsupported_version_rejected(self, tmp_path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header.pop("crc")
        header["version"] = CHECKPOINT_VERSION + 1
        body = json.dumps(header, sort_keys=True)
        header["crc"] = f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x}"
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="version"):
            load_checkpoint(path, FP)

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("")
        assert load_checkpoint(path, FP) == {}  # empty file: nothing done
        other = self._write(tmp_path)
        lines = other.read_text().splitlines()
        other.write_text("\n".join(lines[1:]) + "\n")  # drop the header
        with pytest.raises(ConfigurationError, match="header"):
            load_checkpoint(other, FP)


class TestLegacyVersion:
    """Pre-engine (version 1) checkpoints must still resume."""

    def _write_v1(self, tmp_path, fingerprint):
        path = tmp_path / "legacy.jsonl"
        lines = []
        for record in (
            {"kind": "header", "version": 1, "fingerprint": fingerprint},
            {
                "kind": "cell", "key": "a", "trace": "t1", "status": "ok",
                "attempts": 1, "miss": 0.25, "traffic": 0.5, "scaled": 0.375,
            },
        ):
            body = json.dumps(record, sort_keys=True)
            record["crc"] = f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x}"
            lines.append(json.dumps(record, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_v1_header_resumes_via_legacy_fingerprint(self, tmp_path):
        new_fp = sweep_fingerprint(
            ["a", "b"], [100], engine="auto", word_size=2
        )
        path = self._write_v1(tmp_path, FP)
        cells = load_checkpoint(path, new_fp, legacy_fingerprint=FP)
        assert cells["a"]["miss"] == 0.25

    def test_v1_header_without_legacy_fingerprint_rejected(self, tmp_path):
        path = self._write_v1(tmp_path, FP)
        with pytest.raises(ConfigurationError, match="version"):
            load_checkpoint(path, FP)

    def test_v1_header_with_wrong_legacy_fingerprint_rejected(self, tmp_path):
        path = self._write_v1(tmp_path, FP)
        other = sweep_fingerprint(["x"], [1], word_size=4)
        with pytest.raises(ConfigurationError, match="different sweep"):
            load_checkpoint(path, FP, legacy_fingerprint=other)
