"""Parallel cell execution (--jobs) and engine/runner integration."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.runner.checkpoint import sweep_fingerprint
from repro.runner.faults import FaultInjector
from repro.runner.runner import RunnerConfig, run_sweep


def _point_tuple(point):
    return (
        point.miss_ratio,
        point.traffic_ratio,
        point.scaled_traffic_ratio,
        point.per_trace,
    )


@pytest.fixture(scope="module")
def sweep_inputs(request):
    traces = [
        request.getfixturevalue("z8000_grep_trace"),
        request.getfixturevalue("vax_c2_trace"),
    ]
    geometries = [
        CacheGeometry(64, 8, 4),
        CacheGeometry(256, 16, 8),
        CacheGeometry(1024, 16, 8, associativity=2),
    ]
    return traces, geometries


class TestJobs:
    def test_jobs_matches_sequential_exactly(self, sweep_inputs):
        traces, geometries = sweep_inputs
        sequential, _ = run_sweep(traces, geometries)
        parallel, report = run_sweep(
            traces, geometries, config=RunnerConfig(jobs=2)
        )
        assert [_point_tuple(p) for p in parallel] == [
            _point_tuple(p) for p in sequential
        ]
        assert report.completed == len(traces) * len(geometries)
        assert not report.skipped

    def test_jobs_with_checkpoint_then_resume(self, sweep_inputs, tmp_path):
        traces, geometries = sweep_inputs
        path = tmp_path / "jobs.jsonl"
        first, _ = run_sweep(
            traces, geometries,
            config=RunnerConfig(jobs=2, checkpoint=path),
        )
        # Resume sequentially from the pool-written checkpoint: every
        # cell replays, nothing recomputes, output identical.
        resumed, report = run_sweep(
            traces, geometries,
            config=RunnerConfig(checkpoint=path, resume=True),
        )
        assert report.resumed == len(traces) * len(geometries)
        assert [_point_tuple(p) for p in resumed] == [
            _point_tuple(p) for p in first
        ]

    def test_jobs_engine_choice_is_result_invariant(self, sweep_inputs):
        traces, geometries = sweep_inputs
        reference, _ = run_sweep(
            traces, geometries, config=RunnerConfig(engine="reference")
        )
        vectorized, _ = run_sweep(
            traces, geometries,
            config=RunnerConfig(engine="vectorized", jobs=2),
        )
        assert [_point_tuple(p) for p in vectorized] == [
            _point_tuple(p) for p in reference
        ]

    def test_jobs_must_be_positive(self, sweep_inputs):
        traces, geometries = sweep_inputs
        with pytest.raises(ConfigurationError, match="jobs"):
            run_sweep(traces, geometries, config=RunnerConfig(jobs=0))

    def test_jobs_incompatible_with_fault_injection(self, sweep_inputs):
        traces, geometries = sweep_inputs
        with pytest.raises(ConfigurationError, match="jobs=1"):
            run_sweep(
                traces, geometries,
                config=RunnerConfig(jobs=2, injector=FaultInjector()),
            )


class TestEngineFingerprint:
    def test_engine_changes_the_fingerprint(self):
        base = dict(word_size=2, fetch="demand")
        assert sweep_fingerprint(
            ["a"], [10], engine="reference", **base
        ) != sweep_fingerprint(["a"], [10], engine="vectorized", **base)

    def test_v1_checkpoint_resumes_end_to_end(self, sweep_inputs, tmp_path):
        """A pre-engine checkpoint file still resumes a modern sweep."""
        traces, geometries = sweep_inputs
        path = tmp_path / "v1.jsonl"
        baseline, _ = run_sweep(
            traces, geometries, config=RunnerConfig(checkpoint=path)
        )
        # Rewrite the header as checkpoint version 1 with the legacy
        # (engine-less) fingerprint — exactly what an old run wrote.
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header.pop("crc")
        header["version"] = 1
        # Legacy fingerprints hashed the same params run_sweep uses,
        # minus the engine name.
        from repro.engine import TraceView
        from repro.memory.nibble import NIBBLE_MODE_BUS

        prepared = [TraceView.of(t).reads_only() for t in traces]
        header["fingerprint"] = sweep_fingerprint(
            [
                f"{g.net_size}:{g.block_size},{g.sub_block_size}"
                f"@{g.associativity}/{t.name}"
                for g in geometries
                for t in prepared
            ],
            [len(t) for t in prepared],
            word_size=2,
            fetch="demand",
            replacement="lru",
            warmup="fill",
            bus_model=NIBBLE_MODE_BUS,
            filter_writes=True,
        )
        body = json.dumps(header, sort_keys=True)
        header["crc"] = f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x}"
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        resumed, report = run_sweep(
            traces, geometries,
            config=RunnerConfig(checkpoint=path, resume=True),
        )
        assert report.resumed == len(traces) * len(geometries)
        assert [_point_tuple(p) for p in resumed] == [
            _point_tuple(p) for p in baseline
        ]
