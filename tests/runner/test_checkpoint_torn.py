"""Partial-write regression: a torn final checkpoint record never
poisons ``--resume``.

The crash window is quantified exhaustively: the file is truncated at
*every* byte offset of its final record (every instant a kill -9 could
land during that write), and at each offset the checkpoint must still
load, and appending after repair must yield a fully intact file.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import CacheGeometry
from repro.errors import ChecksumError
from repro.runner.checkpoint import (
    CheckpointWriter,
    line_crc,
    load_checkpoint,
    repair_tail,
)
from repro.runner.runner import RunnerConfig, run_sweep
from repro.workloads.suites import suite_trace

FINGERPRINT = "cafecafe"


def write_cells(path, count: int) -> None:
    with CheckpointWriter(path, FINGERPRINT, fresh=True) as writer:
        for n in range(count):
            writer.record_cell(
                f"1024:16,8@4/T{n}", f"T{n}", "ok",
                ratios=(0.1 * n, 0.2 * n, 0.3 * n),
            )


def last_record_span(data: bytes) -> "tuple[int, int]":
    """(start, end) byte offsets of the final newline-terminated line."""
    assert data.endswith(b"\n")
    start = data.rfind(b"\n", 0, len(data) - 1) + 1
    return start, len(data)


def line_verifies(raw: bytes) -> bool:
    """True when the truncated remnant is still a CRC-valid record."""
    try:
        record = json.loads(raw)
    except ValueError:
        return False
    return record.pop("crc", None) == line_crc(record)


class TestEveryCrashOffset:
    def test_load_survives_truncation_at_every_byte_of_the_last_record(
        self, tmp_path
    ):
        path = tmp_path / "ck.jsonl"
        write_cells(path, 3)
        blob = path.read_bytes()
        start, end = last_record_span(blob)
        for cut in range(start, end):  # every offset inside the record
            path.write_bytes(blob[:cut])
            cells = load_checkpoint(path, FINGERPRINT)
            # The torn record is dropped — unless the cut removed only
            # the trailing newline, leaving a line that still verifies
            # (cut == end - 1), which loading rightly keeps.  Every
            # earlier cell survives either way.
            expected = {"1024:16,8@4/T0", "1024:16,8@4/T1"}
            if line_verifies(blob[start:cut]):
                expected.add("1024:16,8@4/T2")
            assert set(cells) == expected, (
                f"cut at byte {cut} mishandled the torn record"
            )

    def test_repair_then_append_heals_at_every_byte_of_the_last_record(
        self, tmp_path
    ):
        path = tmp_path / "ck.jsonl"
        write_cells(path, 3)
        blob = path.read_bytes()
        start, end = last_record_span(blob)
        for cut in range(start, end):
            path.write_bytes(blob[:cut])
            dropped = repair_tail(path)
            assert dropped == cut - start, f"cut at byte {cut}"
            # Appending through the writer (resume mode) must produce a
            # file where *every* line verifies — no glued records.
            with CheckpointWriter(path, FINGERPRINT, fresh=False) as writer:
                writer.record_cell(
                    "1024:16,8@4/T2", "T2", "ok", ratios=(0.2, 0.4, 0.6)
                )
            for line in path.read_bytes().splitlines():
                record = json.loads(line)
                assert record.pop("crc") == line_crc(record)
            cells = load_checkpoint(path, FINGERPRINT)
            assert set(cells) == {
                "1024:16,8@4/T0", "1024:16,8@4/T1", "1024:16,8@4/T2"
            }

    def test_truncation_inside_the_header_restarts_cleanly(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        write_cells(path, 1)
        blob = path.read_bytes()
        header_end = blob.index(b"\n") + 1
        for cut in range(0, header_end):
            path.write_bytes(blob[:cut])
            with CheckpointWriter(path, FINGERPRINT, fresh=False) as writer:
                writer.record_cell(
                    "1024:16,8@4/T9", "T9", "ok", ratios=(0.1, 0.2, 0.3)
                )
            cells = load_checkpoint(path, FINGERPRINT)
            assert set(cells) == {"1024:16,8@4/T9"}, f"cut at byte {cut}"


class TestInteriorCorruptionStillFatal:
    def test_a_corrupt_interior_line_raises_checksum_error(self, tmp_path):
        """Tail tolerance must not soften interior corruption."""
        path = tmp_path / "ck.jsonl"
        write_cells(path, 3)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"ok"', b'"OK"')  # break line 2's CRC
        path.write_bytes(b"".join(lines))
        with pytest.raises(ChecksumError, match="line 2"):
            load_checkpoint(path, FINGERPRINT)


class TestResumeEndToEnd:
    def test_resume_after_a_torn_tail_reproduces_the_full_sweep(
        self, tmp_path
    ):
        trace = suite_trace("pdp11", "ED", length=2000)
        geometries = [
            CacheGeometry(net, 16, 8) for net in (256, 512, 1024)
        ]
        path = tmp_path / "sweep.jsonl"
        baseline, _ = run_sweep(
            [trace], geometries, config=RunnerConfig(checkpoint=path)
        )
        # Tear the final record mid-write, then resume.
        blob = path.read_bytes()
        start, end = last_record_span(blob)
        path.write_bytes(blob[: (start + end) // 2])
        resumed, report = run_sweep(
            [trace], geometries,
            config=RunnerConfig(checkpoint=path, resume=True),
        )
        assert report.resumed == len(geometries) - 1
        assert [
            (p.geometry, p.per_trace) for p in resumed
        ] == [(p.geometry, p.per_trace) for p in baseline]
