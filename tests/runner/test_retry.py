"""Retry-policy and backoff tests."""

import random

import pytest

from repro.errors import (
    CellTimeoutError,
    ConfigurationError,
    MachineError,
    TraceFormatError,
    TransientError,
)
from repro.runner.retry import RetryPolicy, call_with_retry


class TestRetryability:
    def test_transient_always_retryable(self):
        assert RetryPolicy().is_retryable(TransientError("x"))
        assert RetryPolicy(lenient=True).is_retryable(TransientError("x"))

    def test_timeout_never_retryable(self):
        # Re-running a timed-out cell would time out again.
        assert not RetryPolicy(lenient=True).is_retryable(CellTimeoutError("x"))

    def test_machine_and_format_errors_only_in_lenient_mode(self):
        for exc in (MachineError("x"), TraceFormatError("x")):
            assert not RetryPolicy().is_retryable(exc)
            assert RetryPolicy(lenient=True).is_retryable(exc)

    def test_configuration_error_never_retryable(self):
        assert not RetryPolicy(lenient=True).is_retryable(
            ConfigurationError("bad geometry")
        )


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        assert [policy.delay(n, rng) for n in (1, 2, 3)] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4),
        ]

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.5, jitter=0.0)
        assert policy.delay(10, random.Random(0)) == pytest.approx(2.5)

    def test_jitter_is_deterministic_under_a_seed(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        a = [policy.delay(n, random.Random(7)) for n in (1, 2, 3)]
        b = [policy.delay(n, random.Random(7)) for n in (1, 2, 3)]
        assert a == b

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(3)
        for _ in range(50):
            assert 0.5 <= policy.delay(1, rng) <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise TransientError("not yet")
            return "done"

        result, attempts = call_with_retry(
            flaky, RetryPolicy(max_retries=3), sleep=lambda s: None
        )
        assert result == "done"
        assert attempts == 3
        assert calls == [1, 2, 3]

    def test_stops_after_the_configured_budget(self):
        calls = []

        def always_fails(attempt):
            calls.append(attempt)
            raise TransientError("still broken")

        with pytest.raises(TransientError) as excinfo:
            call_with_retry(
                always_fails, RetryPolicy(max_retries=2), sleep=lambda s: None
            )
        assert calls == [1, 2, 3]  # first try + 2 retries, then gives up
        assert excinfo.value.retry_attempts == 3

    def test_non_retryable_failure_raises_immediately(self):
        calls = []

        def fatal(attempt):
            calls.append(attempt)
            raise ConfigurationError("bad input")

        with pytest.raises(ConfigurationError):
            call_with_retry(
                fatal, RetryPolicy(max_retries=5), sleep=lambda s: None
            )
        assert calls == [1]

    def test_backoff_sleeps_between_attempts(self):
        sleeps = []

        def flaky(attempt):
            if attempt == 1:
                raise TransientError("x")
            return attempt

        policy = RetryPolicy(max_retries=1, base_delay=0.25, jitter=0.0)
        call_with_retry(flaky, policy, sleep=sleeps.append)
        assert sleeps == [pytest.approx(0.25)]
