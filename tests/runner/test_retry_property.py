"""Property tests for the retry backoff schedule.

The claims the resilience docs make about :meth:`RetryPolicy.delay` —
exponential growth, a hard ceiling, and jitter that only ever *shortens*
a delay — hold for every policy and attempt number, not just the
defaults, so they are quantified here rather than spot-checked.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.runner.retry import RetryPolicy, call_with_retry
from repro.errors import TransientError

policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(min_value=0, max_value=6),
    base_delay=st.floats(min_value=0.0, max_value=2.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=0.0, max_value=10.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
)


@settings(max_examples=200, deadline=None)
@given(
    policy=policies,
    attempt=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_delay_stays_inside_the_documented_envelope(policy, attempt, seed):
    """raw = min(base * mult^(n-1), max); delay in [raw*(1-j), raw]."""
    raw = min(
        policy.base_delay * policy.multiplier ** (attempt - 1),
        policy.max_delay,
    )
    delay = policy.delay(attempt, random.Random(seed))
    assert 0.0 <= delay
    assert delay <= raw + 1e-12
    assert delay >= raw * (1.0 - policy.jitter) - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    policy=policies,
    attempt=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_delay_is_deterministic_under_a_seeded_rng(policy, attempt, seed):
    first = policy.delay(attempt, random.Random(seed))
    second = policy.delay(attempt, random.Random(seed))
    assert first == second


@settings(max_examples=100, deadline=None)
@given(
    policy=policies,
    attempts=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_unjittered_ceilings_are_monotone_nondecreasing(
    policy, attempts, seed
):
    """The *cap* of each successive delay never shrinks (mult >= 1)."""
    caps = [
        min(
            policy.base_delay * policy.multiplier ** (n - 1),
            policy.max_delay,
        )
        for n in range(1, attempts + 1)
    ]
    assert caps == sorted(caps)
    # And the jittered samples respect their own per-attempt cap.
    rng = random.Random(seed)
    for n, cap in enumerate(caps, start=1):
        assert policy.delay(n, rng) <= cap + 1e-12


@settings(max_examples=60, deadline=None)
@given(
    max_retries=st.integers(min_value=0, max_value=5),
    failures=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_call_with_retry_makes_exactly_the_budgeted_attempts(
    max_retries, failures, seed
):
    """fn runs min(failures, max_retries) + 1 times; sleeps are bounded."""
    policy = RetryPolicy(max_retries=max_retries, base_delay=0.01)
    calls = []
    sleeps: "list[float]" = []

    def flaky(attempt: int) -> str:
        calls.append(attempt)
        if len(calls) <= failures:
            raise TransientError("injected")
        return "ok"

    rng = random.Random(seed)
    if failures <= max_retries:
        result, attempts = call_with_retry(
            flaky, policy, rng=rng, sleep=sleeps.append
        )
        assert result == "ok"
        assert attempts == failures + 1
        assert len(sleeps) == failures
    else:
        try:
            call_with_retry(flaky, policy, rng=rng, sleep=sleeps.append)
            raise AssertionError("expected the retry budget to exhaust")
        except TransientError as exc:
            assert exc.retry_attempts == max_retries + 1
        assert len(sleeps) == max_retries
    assert calls == list(range(1, len(calls) + 1))
    for n, slept in enumerate(sleeps, start=1):
        cap = min(policy.base_delay * policy.multiplier ** (n - 1),
                  policy.max_delay)
        assert 0.0 <= slept <= cap + 1e-12
