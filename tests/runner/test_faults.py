"""Fault-injection primitive tests."""

import io

import pytest

from repro.errors import TraceFormatError, TransientError
from repro.runner.faults import (
    FaultInjector,
    FaultyTrace,
    SweepAborted,
    corrupt_din,
)
from repro.trace.reader import read_din_report
from repro.trace.record import Trace


def make_trace(n=20, name="t"):
    return Trace(list(range(0, 2 * n, 2)), [0] * n, 2, name=name)


class TestCorruptDin:
    DIN = "".join(f"0 {addr:x}\n" for addr in range(0, 40, 2))

    def test_deterministic_for_a_seed(self):
        assert corrupt_din(self.DIN, 3, seed=5) == corrupt_din(self.DIN, 3, seed=5)
        assert corrupt_din(self.DIN, 3, seed=5) != corrupt_din(self.DIN, 3, seed=6)

    def test_strict_reader_rejects_corruption(self):
        bad = corrupt_din(self.DIN, 1, seed=0)
        with pytest.raises(TraceFormatError):
            read_din_report(io.StringIO(bad), size=2, name="bad")

    def test_lenient_reader_skips_exactly_the_corrupted_lines(self):
        bad = corrupt_din(self.DIN, 4, seed=0)
        report = read_din_report(io.StringIO(bad), size=2, name="bad", lenient=True)
        assert report.n_skipped == 4
        assert len(report.trace) == 20 - 4


class TestFaultyTrace:
    def test_raises_at_the_nth_access(self):
        faulty = FaultyTrace(make_trace(), error_at=5, error_type=TransientError)
        seen = []
        with pytest.raises(TransientError, match="access 5"):
            for access in faulty:
                seen.append(access)
        assert len(seen) == 5

    def test_passes_through_when_unarmed(self):
        trace = make_trace()
        assert list(FaultyTrace(trace)) == list(trace)

    def test_stall_sleeps_per_access(self):
        sleeps = []
        faulty = FaultyTrace(
            make_trace(n=4), stall_seconds=0.01, sleep=sleeps.append
        )
        list(faulty)
        assert sleeps == [0.01] * 4

    def test_name_and_len_pass_through(self):
        faulty = FaultyTrace(make_trace(n=7, name="grep"))
        assert faulty.name == "grep"
        assert len(faulty) == 7


class TestFaultInjector:
    def test_fail_attempts_clears_up_on_retry(self):
        injector = FaultInjector(error_cells=("cell/*",), fail_attempts=2)
        trace = make_trace()
        assert isinstance(injector.arm("cell/t", trace), FaultyTrace)
        assert isinstance(injector.arm("cell/t", trace), FaultyTrace)
        assert injector.arm("cell/t", trace) is trace  # third attempt clean

    def test_persistent_fault_never_clears(self):
        injector = FaultInjector(error_cells=("*",), fail_attempts=None)
        trace = make_trace()
        for _ in range(5):
            assert isinstance(injector.arm("any", trace), FaultyTrace)

    def test_patterns_select_cells(self):
        injector = FaultInjector(error_cells=("*/GREP",))
        trace = make_trace()
        assert isinstance(injector.arm("64:16,8@4/GREP", trace), FaultyTrace)
        assert injector.arm("64:16,8@4/SORT", trace) is trace

    def test_abort_after_simulates_a_crash(self):
        injector = FaultInjector(abort_after=2)
        injector.cell_completed("a")
        with pytest.raises(SweepAborted, match="after 2 cells"):
            injector.cell_completed("b")
