"""Every bundled workload program must lint clean.

This is the merge gate the ``repro lint`` CI job enforces; keeping it
in the test suite means a program edit that introduces dead code, an
unbalanced frame, or a wild branch fails locally too.
"""

import inspect

import pytest

from repro.staticcheck import check_program, footprint
from repro.workloads.assembler import assemble
from repro.workloads.programs import PROGRAMS


def build_program(name, word_size):
    builder = PROGRAMS[name]
    params = (
        {"seed": 0} if "seed" in inspect.signature(builder).parameters else {}
    )
    return assemble(builder(**params).source, word_size=word_size)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("word_size", [2, 4])
def test_program_lints_clean(name, word_size):
    diagnostics = check_program(build_program(name, word_size), name=name)
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_has_a_loop_and_real_footprints(name):
    # Every bundled workload iterates; a loop-free "workload" would not
    # exercise the temporal locality the paper's traces depend on.
    report = footprint(build_program(name, 2), name=name)
    assert report.code_bytes > 0
    assert report.data_bytes > 0
    assert report.hot_loop_bytes > 0
    assert any(loop.innermost for loop in report.loops)
    assert any(loop.mem_ops > 0 for loop in report.loops)
