"""Locality-predictor tests: footprints, knees, sweep comparison."""

from dataclasses import dataclass

from repro.core.config import CacheGeometry
from repro.runner.runner import run_sweep
from repro.staticcheck import compare_with_sweep, footprint, knee_net
from repro.workloads.assembler import assemble
from repro.workloads.generator import program_trace
from repro.workloads.programs import PROGRAMS

LOOP_SOURCE = """
.space buf 32
    li   r0, 0
    li   r1, buf
    li   r2, buf+64
loop:
    ld   r3, r1, 0
    add  r0, r3
    addi r1, 2
    blt  r1, r2, loop
    halt
"""

STRAIGHT_SOURCE = """
.words tab 1 2 3
    li  r1, tab
    ld  r0, r1, 0
    ld  r2, r1, 2
    add r0, r2
    halt
"""


@dataclass
class FakePoint:
    net: int
    miss: float

    @property
    def geometry(self):
        return CacheGeometry(net_size=self.net, block_size=8, sub_block_size=8)

    @property
    def miss_ratio(self):
        return self.miss


class TestFootprint:
    def test_segments_measured_from_the_program(self):
        program = assemble(LOOP_SOURCE)
        report = footprint(program, name="loop")
        assert report.code_bytes == program.data_base - program.code_base
        assert report.data_bytes == 64  # 32 words at word_size 2
        assert report.total_bytes == report.code_bytes + report.data_bytes

    def test_hot_loop_is_the_loop_body(self):
        report = footprint(assemble(LOOP_SOURCE))
        assert len(report.loops) == 1
        assert report.loops[0].innermost
        # ld + add + addi + blt: 2+1+2+2 words at 2 bytes.
        assert report.hot_loop_bytes == 14
        assert report.loops[0].mem_ops == 1

    def test_loop_free_program_has_no_hot_loop(self):
        report = footprint(assemble(STRAIGHT_SOURCE))
        assert report.loops == ()
        assert report.hot_loop_bytes == 0

    def test_word_size_scales_code_footprint(self):
        small = footprint(assemble(LOOP_SOURCE, word_size=2))
        large = footprint(assemble(LOOP_SOURCE, word_size=4))
        assert large.code_bytes == 2 * small.code_bytes
        assert large.hot_loop_bytes == 2 * small.hot_loop_bytes

    def test_to_dict_round_trips_the_loops(self):
        payload = footprint(assemble(LOOP_SOURCE), name="loop").to_dict()
        assert payload["name"] == "loop"
        assert payload["loops"][0]["innermost"] is True
        assert payload["hot_loop_bytes"] == payload["loops"][0]["code_bytes"]


class TestKnee:
    def test_knee_is_first_net_within_tolerance_of_floor(self):
        curve = [
            FakePoint(32, 0.40),
            FakePoint(64, 0.20),
            FakePoint(128, 0.052),
            FakePoint(256, 0.050),
        ]
        assert knee_net(curve) == 128

    def test_no_points_no_knee(self):
        assert knee_net([]) is None

    def test_flat_curve_knees_at_smallest(self):
        curve = [FakePoint(32, 0.1), FakePoint(64, 0.1)]
        assert knee_net(curve) == 32


class TestCompareWithSweep:
    def test_agreeing_curve_is_consistent(self):
        report = footprint(assemble(LOOP_SOURCE), name="loop")
        predicted = report.hot_loop_bytes + report.data_bytes  # 78
        curve = [
            FakePoint(16, 0.5),
            FakePoint(64, 0.10),
            FakePoint(128, 0.02),
            FakePoint(512, 0.02),
        ]
        comparison = compare_with_sweep(report, curve)
        assert comparison.predicted_bytes == predicted
        assert comparison.observed_knee_net == 128
        assert comparison.consistent and comparison.monotone

    def test_gross_disagreement_flagged(self):
        # A "tiny loop" prediction against a curve that only flattens
        # at 64 KiB: outside any reasonable slack.
        report = footprint(assemble(LOOP_SOURCE))
        curve = [FakePoint(n, 1.0 / n) for n in (1024, 4096, 16384, 65536)]
        comparison = compare_with_sweep(report, curve)
        assert not comparison.consistent

    def test_never_flattening_curve_consistent_only_if_predicted_larger(self):
        report = footprint(assemble(LOOP_SOURCE))
        curve = [FakePoint(16, 0.9), FakePoint(32, 0.4)]
        comparison = compare_with_sweep(report, curve, tolerance=1.0)
        # knee == 32 here (the minimum always qualifies); force no knee
        # by an empty curve instead.
        empty = compare_with_sweep(report, [])
        assert empty.observed_knee_net is None
        assert empty.consistent  # predicted > largest (0)
        assert comparison.detail[16] == 0.9

    def test_non_monotone_curve_detected(self):
        report = footprint(assemble(LOOP_SOURCE))
        curve = [FakePoint(32, 0.1), FakePoint(64, 0.4), FakePoint(128, 0.05)]
        assert not compare_with_sweep(report, curve).monotone


class TestAgainstSimulation:
    def test_prediction_consistent_with_simulated_curve(self):
        # End-to-end: static prediction vs the simulated miss-ratio
        # trend of the same program's trace.
        program = assemble(PROGRAMS["fib"]().source)
        report = footprint(program, name="fib")
        trace = program_trace("fib", 4000, seed=0)
        geometries = [
            CacheGeometry(net_size=net, block_size=8, sub_block_size=8)
            for net in (16, 32, 64, 128, 256, 512)
        ]
        points, _ = run_sweep([trace], geometries)
        comparison = compare_with_sweep(report, points)
        assert comparison.consistent
        assert comparison.monotone


class TestLoopFreeComparison:
    """Regression: a loop-free program against a flat curve.

    Loop-free programs have an empty working-set list, every reference
    is compulsory, and the measured curve is flat from the smallest
    cache — which used to be reported as *inconsistent* because the
    total-footprint estimate sat far above the (meaningless) knee.
    """

    def test_flat_curve_of_loop_free_program_is_consistent(self):
        report = footprint(assemble(STRAIGHT_SOURCE), name="straight")
        assert not report.loops and report.hot_loop_bytes == 0
        curve = [FakePoint(net, 0.31) for net in (64, 128, 256, 512)]
        comparison = compare_with_sweep(report, curve)
        assert comparison.observed_knee_net == 64
        assert comparison.consistent  # regression: was falsely flagged

    def test_empty_point_list_is_still_defined(self):
        comparison = compare_with_sweep(
            footprint(assemble(STRAIGHT_SOURCE)), []
        )
        assert comparison.observed_knee_net is None
        assert comparison.consistent
        assert comparison.detail == {}

    def test_loop_free_rising_curve_still_uses_the_band(self):
        # The exemption is only for flat curves: a curve that knees
        # later keeps the normal slack-band comparison.
        report = footprint(assemble(STRAIGHT_SOURCE))
        curve = [FakePoint(16, 0.9), FakePoint(32, 0.31), FakePoint(64, 0.30)]
        comparison = compare_with_sweep(report, curve)
        assert comparison.observed_knee_net == 32
        # predicted = total footprint; 32 is within slack of it here.
        assert comparison.consistent == (
            comparison.predicted_bytes / 8.0 <= 32 <= comparison.predicted_bytes * 8
        )

    def test_classified_knee_replaces_the_structural_estimate(self):
        report = footprint(assemble(LOOP_SOURCE), name="loop")
        curve = [
            FakePoint(64, 0.5), FakePoint(128, 0.5),
            FakePoint(256, 0.04), FakePoint(512, 0.04),
        ]
        comparison = compare_with_sweep(report, curve, classified_knee=256)
        assert comparison.predicted_bytes == 256
        assert comparison.observed_knee_net == 256
        assert comparison.consistent
