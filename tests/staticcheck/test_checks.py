"""Program-check tests: each rule fires on a seeded bad program.

Every test assembles a minimal program exhibiting exactly one defect
class and asserts the analyzer flags it under the documented rule id —
and that a clean program produces no findings at all.
"""

from repro.staticcheck import PROGRAM_RULES, Severity, check_program
from repro.workloads.assembler import assemble


def rules_of(source: str, **kwargs):
    diagnostics = check_program(assemble(source, **kwargs), name="t")
    return [d.rule for d in diagnostics], diagnostics


class TestCleanProgram:
    def test_well_formed_program_has_no_findings(self):
        source = """
        .words tab 3 1 2
            li   r0, 0          ; sum
            li   r1, tab        ; cursor
            li   r2, tab+6      ; limit
        loop:
            ld   r3, r1, 0
            add  r0, r3
            addi r1, 2
            blt  r1, r2, loop
            call store
            halt
        store:
            push r0
            pop  r0
            ret
        """
        rules, _ = rules_of(source)
        assert rules == []


class TestControlFlowRules:
    def test_branch_out_of_range(self):
        rules, diagnostics = rules_of("""
            jmp 2
            halt
        """)
        assert "branch-out-of-range" in rules
        finding = next(d for d in diagnostics if d.rule == "branch-out-of-range")
        assert finding.severity is Severity.ERROR
        assert finding.data["target"] == 2

    def test_call_out_of_range(self):
        rules, _ = rules_of("""
            call 0x8000
            halt
        """)
        assert "branch-out-of-range" in rules

    def test_fall_off_end(self):
        rules, _ = rules_of("""
            li   r0, 1
            addi r0, 1
        """)
        assert "fall-off-end" in rules

    def test_no_halt_path(self):
        rules, _ = rules_of("""
            li  r0, 1
        loop:
            addi r0, 1
            jmp loop
        """)
        assert "no-halt-path" in rules

    def test_unreachable_code_is_warning(self):
        rules, diagnostics = rules_of("""
            li r0, 1
            halt
            addi r0, 1
            halt
        """)
        assert "unreachable-code" in rules
        finding = next(d for d in diagnostics if d.rule == "unreachable-code")
        assert finding.severity is Severity.WARNING

    def test_branch_target_in_range_not_flagged(self):
        rules, _ = rules_of("""
        top:
            li  r0, 1
            beq r0, r0, top
            halt
        """)
        assert "branch-out-of-range" not in rules


class TestRegisterDataflow:
    def test_read_of_never_written_register(self):
        rules, diagnostics = rules_of("""
            li  r0, 1
            add r0, r1
            halt
        """)
        assert "uninit-register-read" in rules
        finding = next(d for d in diagnostics if d.rule == "uninit-register-read")
        assert finding.data["register"] == 1
        assert finding.severity is Severity.WARNING

    def test_write_on_one_path_suppresses_the_warning(self):
        # May-analysis: written on *some* path -> not flagged.
        rules, _ = rules_of("""
            li  r0, 1
            beq r0, r0, skip
            li  r1, 5
        skip:
            add r0, r1
            halt
        """)
        assert "uninit-register-read" not in rules

    def test_sp_counts_as_initialized(self):
        rules, _ = rules_of("""
            mov r0, sp
            halt
        """)
        assert "uninit-register-read" not in rules


class TestStackBalance:
    def test_ret_in_top_level_code(self):
        rules, _ = rules_of("""
            li r0, 1
            ret
        """)
        assert "stack-imbalance" in rules

    def test_ret_with_leftover_frame_word(self):
        rules, diagnostics = rules_of("""
            li   r0, 1
            call sub
            halt
        sub:
            push r0
            ret
        """)
        assert "stack-imbalance" in rules
        finding = next(d for d in diagnostics if d.rule == "stack-imbalance")
        assert "frame" in finding.message

    def test_pop_below_frame_in_subroutine(self):
        rules, _ = rules_of("""
            li   r0, 1
            call sub
            halt
        sub:
            pop  r1
            ret
        """)
        assert "stack-imbalance" in rules

    def test_join_with_mismatched_depths(self):
        rules, _ = rules_of("""
            li   r0, 0
            li   r1, 1
            beq  r0, r1, skip
            push r0
        skip:
            halt
        """)
        assert "stack-imbalance" in rules

    def test_balanced_subroutine_is_clean(self):
        rules, _ = rules_of("""
            li   r0, 1
            call sub
            halt
        sub:
            push r0
            push r0
            pop  r1
            pop  r1
            ret
        """)
        assert "stack-imbalance" not in rules


class TestDataBounds:
    def test_load_below_data_segment(self):
        rules, diagnostics = rules_of("""
        .words tab 1 2 3
            li r1, 0
            ld r2, r1, 0
            halt
        """)
        assert "data-out-of-bounds" in rules
        finding = next(d for d in diagnostics if d.rule == "data-out-of-bounds")
        assert finding.data["effective"] == 0

    def test_store_past_data_limit(self):
        rules, _ = rules_of("""
        .words tab 1 2
            li r1, tab
            st r0, r1, 64
            halt
        """)
        assert "data-out-of-bounds" in rules

    def test_in_bounds_constant_access_is_clean(self):
        rules, _ = rules_of("""
        .words tab 1 2 3
            li r1, tab
            ld r2, r1, 2
            halt
        """)
        assert "data-out-of-bounds" not in rules

    def test_addi_tracks_the_constant(self):
        rules, _ = rules_of("""
        .words tab 1 2
            li   r1, tab
            addi r1, -200
            ld   r2, r1, 0
            halt
        """)
        assert "data-out-of-bounds" in rules

    def test_unknown_base_register_not_flagged(self):
        # Flow-sensitive check stays silent without a provable constant.
        rules, _ = rules_of("""
        .words tab 1 2
            li  r1, tab
            add r1, r0
            ld  r2, r1, 0
            halt
        """)
        assert "data-out-of-bounds" not in rules


class TestRuleCatalogue:
    def test_every_emitted_rule_is_documented(self):
        # Findings above all use ids from the published catalogue.
        sources = [
            "jmp 2\nhalt",
            "li r0, 1\naddi r0, 1",
            "loop:\naddi r0, 1\njmp loop",
            "li r0, 1\nret",
            ".words tab 1\nli r1, 0\nld r2, r1, 0\nhalt",
            "li r0, 1\nhalt\naddi r0, 1\nhalt",
            "add r0, r1\nhalt",
        ]
        for source in sources:
            for diagnostic in check_program(assemble(source)):
                assert diagnostic.rule in PROGRAM_RULES
