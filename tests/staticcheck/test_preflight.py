"""Sweep-preflight tests: fail before the checkpoint, warn on the report."""

import copy
import os

import pytest

from repro.core.config import CacheGeometry
from repro.errors import StaticCheckError
from repro.runner.runner import RunnerConfig, run_sweep
from repro.staticcheck import preflight_sweep
from repro.workloads.suites import suite_trace

GEOMS = [CacheGeometry(net_size=64, block_size=8, sub_block_size=8)]


@pytest.fixture(scope="module")
def trace():
    return suite_trace("pdp11", "SIMP", length=500)


class TestPreflightFunction:
    def test_clean_sweep_yields_no_findings(self, trace):
        assert preflight_sweep([trace], GEOMS) == []

    def test_bad_replacement_is_an_error(self, trace):
        with pytest.raises(StaticCheckError) as excinfo:
            preflight_sweep([trace], GEOMS, replacement="lrru")
        assert [d.rule for d in excinfo.value.diagnostics] == [
            "policy-unknown-replacement"
        ]

    def test_duplicate_trace_names_are_an_error(self, trace):
        twin = copy.copy(trace)
        with pytest.raises(StaticCheckError) as excinfo:
            preflight_sweep([trace, twin], GEOMS)
        assert [d.rule for d in excinfo.value.diagnostics] == [
            "sweep-duplicate-cell"
        ]

    def test_load_forward_single_sub_is_a_warning(self, trace):
        findings = preflight_sweep([trace], GEOMS, fetch="load-forward")
        assert [d.rule for d in findings] == ["fetch-lf-single-sub"]

    def test_non_strict_returns_errors_instead_of_raising(self, trace):
        findings = preflight_sweep(
            [trace], GEOMS, replacement="lrru", strict=False
        )
        assert [d.rule for d in findings] == ["policy-unknown-replacement"]


class TestRunnerIntegration:
    def test_rejected_before_checkpoint_io(self, trace, tmp_path):
        # The seeded failure mode: a misspelled policy used to fail the
        # first cell *after* the checkpoint file had been truncated.
        checkpoint = tmp_path / "ck.jsonl"
        with pytest.raises(StaticCheckError):
            run_sweep(
                [trace], GEOMS, replacement="lrru",
                config=RunnerConfig(checkpoint=checkpoint),
            )
        assert not os.path.exists(checkpoint)

    def test_rejected_even_in_lenient_mode(self, trace):
        # Lenient mode degrades per-cell failures; a sweep that cannot
        # produce a single valid cell must still be refused outright.
        with pytest.raises(StaticCheckError):
            run_sweep(
                [trace], GEOMS, fetch="prefetch-all",
                config=RunnerConfig(lenient=True),
            )

    def test_warnings_land_on_the_report(self, trace):
        points, report = run_sweep([trace], GEOMS, fetch="load-forward")
        assert [d.rule for d in report.preflight] == ["fetch-lf-single-sub"]
        assert points[0].miss_ratio > 0

    def test_preflight_can_be_disabled(self, trace):
        points, report = run_sweep(
            [trace], GEOMS, fetch="load-forward",
            config=RunnerConfig(preflight=False),
        )
        assert report.preflight == []
        assert points[0].miss_ratio > 0

    def test_clean_checkpointed_sweep_still_works(self, trace, tmp_path):
        checkpoint = tmp_path / "ck.jsonl"
        points, report = run_sweep(
            [trace], GEOMS, config=RunnerConfig(checkpoint=checkpoint)
        )
        assert checkpoint.exists()
        assert report.completed == 1 and report.preflight == []
