"""Config-lint corpus for the miss-path rules.

``misspath-unknown-key`` and ``misspath-bad-value`` are stable rule
ids — service clients and CI gates key on them — so each defect class
pins its exact id here, like the geometry corpus does.
"""

from __future__ import annotations

import pytest

from repro.core.config import CacheGeometry
from repro.core.misspath import MissPathConfig
from repro.errors import StaticCheckError
from repro.staticcheck import CONFIG_RULES, Severity
from repro.staticcheck.configlint import lint_miss_path
from repro.staticcheck.preflight import preflight_sweep
from repro.trace.record import Trace

#: miss_path payload -> the exact rule ids expected.
BAD_CONFIGS = [
    ({"victim_entires": 4}, {"misspath-unknown-key"}),
    ({"victim_entries": 4, "extra": 1}, {"misspath-unknown-key"}),
    ({"victim_entries": -1}, {"misspath-bad-value"}),
    ({"stream_depth": 0}, {"misspath-bad-value"}),
    ({"l2_associativity": 0}, {"misspath-bad-value"}),
    ({"victim_entries": True}, {"misspath-bad-value"}),
    ({"miss_entries": "four"}, {"misspath-bad-value"}),
    ("vc4", {"misspath-bad-value"}),
    (
        {"victim_entires": 4, "stream_depth": 0},
        {"misspath-unknown-key", "misspath-bad-value"},
    ),
    # A bad L2 shape surfaces through the reused geometry rules.
    ({"l2_net_size": 100, "l2_block_size": 16}, {"geom-pow2"}),
    (
        {"l2_net_size": 1024, "l2_block_size": 8, "l2_sub_block_size": 16},
        {"geom-sub-gt-block"},
    ),
]


class TestMisspathCorpus:
    @pytest.mark.parametrize("payload,expected", BAD_CONFIGS)
    def test_known_bad_config_maps_to_exact_rules(self, payload, expected):
        diagnostics = lint_miss_path(payload)
        assert {d.rule for d in diagnostics} == expected
        assert all(d.severity is Severity.ERROR for d in diagnostics)

    def test_rules_are_documented(self):
        assert {"misspath-unknown-key", "misspath-bad-value"} <= set(
            CONFIG_RULES
        )

    def test_clean_configs_are_clean(self):
        assert lint_miss_path(None) == []
        assert lint_miss_path({}) == []
        assert lint_miss_path({"victim_entries": 4, "stream_buffers": 2}) == []
        assert lint_miss_path(
            MissPathConfig(victim_entries=4, l2_net_size=1024),
            l1_block_size=16,
        ) == []

    def test_every_problem_reported_at_once(self):
        diagnostics = lint_miss_path(
            {"victim_entires": 4, "stream_depth": 0, "miss_entries": -2}
        )
        assert len(diagnostics) == 3

    def test_l2_default_block_comes_from_l1(self):
        # l2_block_size omitted: the L1 block is the L2 block, so the
        # lint needs the L1 shape to validate the resolved geometry.
        payload = {"l2_net_size": 1024}
        assert lint_miss_path(payload, l1_block_size=16) == []
        findings = lint_miss_path(payload, l1_block_size=24)
        assert {d.rule for d in findings} == {"geom-pow2"}
        assert all(d.source == "misspath-l2" for d in findings)


#: (payload, lint kwargs) -> degenerate chains that cannot help.  Each
#: case pins the exact rule id and the offending field.
DEGENERATE_CONFIGS = [
    (
        {"victim_entries": 16},
        {"l1_net_size": 256, "l1_block_size": 16},
        "victim_entries",
    ),
    (
        {"victim_entries": 64},
        {"l1_net_size": 256, "l1_block_size": 16},
        "victim_entries",
    ),
    ({"victim_entries": 4, "miss_entries": 4}, {}, "miss_entries"),
    ({"stream_depth": 8}, {}, "stream_depth"),
    ({"stream_buffers": 0, "stream_depth": 2}, {}, "stream_depth"),
    (
        {"l2_net_size": 256, "l2_block_size": 16},
        {"l1_net_size": 1024},
        "l2_net_size",
    ),
    (
        {"l2_net_size": 1024},
        {"l1_net_size": 1024, "l1_block_size": 16},
        "l2_net_size",
    ),
]


class TestMisspathDegenerate:
    @pytest.mark.parametrize("payload,kwargs,location", DEGENERATE_CONFIGS)
    def test_degenerate_chain_warns_with_exact_rule(
        self, payload, kwargs, location
    ):
        diagnostics = lint_miss_path(payload, **kwargs)
        assert {d.rule for d in diagnostics} == {"misspath-degenerate"}
        assert all(d.severity is Severity.WARNING for d in diagnostics)
        assert location in {d.location for d in diagnostics}

    def test_rule_is_documented(self):
        assert "misspath-degenerate" in CONFIG_RULES

    def test_helpful_chains_stay_clean(self):
        assert lint_miss_path(
            {"victim_entries": 4},
            l1_net_size=256, l1_block_size=16,
        ) == []
        assert lint_miss_path(
            {"victim_entries": 4, "miss_entries": 8}
        ) == []
        assert lint_miss_path(
            {"stream_buffers": 2, "stream_depth": 8}
        ) == []
        assert lint_miss_path(
            {"l2_net_size": 4096},
            l1_net_size=1024, l1_block_size=16,
        ) == []

    def test_parsed_config_and_dict_agree(self):
        for payload in (
            MissPathConfig(victim_entries=4, miss_entries=4),
            {"victim_entries": 4, "miss_entries": 4},
        ):
            diagnostics = lint_miss_path(payload)
            assert [d.rule for d in diagnostics] == ["misspath-degenerate"]

    def test_size_relative_rules_need_l1_context(self):
        # Without the L1 shape the victim-vs-L1 comparison cannot fire
        # (the lint never guesses), but the intra-chain ones still do.
        assert lint_miss_path({"victim_entries": 64}) == []
        assert lint_miss_path({"l2_net_size": 256, "l2_block_size": 16}) == []

    def test_degenerate_is_warning_not_gate(self):
        # raise_on_errors-based gates (preflight, the service) must not
        # reject a merely-degenerate chain.
        trace = Trace([0, 16, 32], [0, 0, 0], 2, name="t")
        findings = preflight_sweep(
            [trace], [CacheGeometry(256, 16, 8)],
            miss_path={"victim_entries": 4, "miss_entries": 4},
        )
        assert "misspath-degenerate" in {f.rule for f in findings}

    def test_preflight_passes_l1_net_context(self):
        trace = Trace([0, 16, 32], [0, 0, 0], 2, name="t")
        findings = preflight_sweep(
            [trace], [CacheGeometry(256, 16, 8)],
            miss_path={"victim_entries": 16},
        )
        assert "misspath-degenerate" in {f.rule for f in findings}


class TestPreflightMissPath:
    def _sweep_args(self):
        trace = Trace([0, 16, 32], [0, 0, 0], 2, name="t")
        geometries = [CacheGeometry(256, 16, 8), CacheGeometry(256, 32, 8)]
        return [trace], geometries

    def test_clean_chain_passes(self):
        traces, geometries = self._sweep_args()
        findings = preflight_sweep(
            traces, geometries,
            miss_path=MissPathConfig(victim_entries=4, l2_net_size=4096),
        )
        assert [f for f in findings if f.severity is Severity.ERROR] == []

    def test_bad_chain_fails_fast(self):
        traces, geometries = self._sweep_args()
        with pytest.raises(StaticCheckError, match="misspath"):
            preflight_sweep(
                traces, geometries, miss_path={"victim_entires": 4}
            )

    def test_l2_shape_checked_per_l1_block_size(self):
        # Block sizes 16 and 32 both resolve the default L2 block; an
        # L2 too small for the larger block must surface in preflight.
        traces, geometries = self._sweep_args()
        with pytest.raises(StaticCheckError, match="geom-block-gt-net"):
            preflight_sweep(
                traces, geometries,
                miss_path=MissPathConfig(l2_net_size=16),
            )

    def test_findings_deduplicated_across_block_sizes(self):
        traces, geometries = self._sweep_args()
        findings = preflight_sweep(
            traces, geometries,
            miss_path={"victim_entries": -1},
            strict=False,
        )
        misspath_findings = [
            f for f in findings if f.rule == "misspath-bad-value"
        ]
        # One config-level finding, not one per distinct L1 block size.
        assert len(misspath_findings) == 1
