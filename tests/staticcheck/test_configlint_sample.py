"""Config-lint corpus for the ``sample-*`` rules.

The sampling rules are stable ids that sweep preflights and service
clients key on, so — like the geometry and miss-path corpora — each
defect class pins its exact rule-id set here, including the named
fallback axes and the warmup suppression they imply.
"""

from __future__ import annotations

import pytest

from repro.core.config import CacheGeometry
from repro.core.misspath import MissPathConfig
from repro.staticcheck import CONFIG_RULES, Severity
from repro.staticcheck.configlint import lint_sample, lint_sample_coverage
from repro.staticcheck.phases import SamplingConfig

SAMPLE_RULES = {
    "sample-interval-invalid",
    "sample-interval-exceeds-trace",
    "sample-k-exceeds-intervals",
    "sample-fallback-injector",
    "sample-fallback-checked",
    "sample-fallback-chain",
    "sample-warmup-ignored",
    "sweep-sample-coverage",
    "sweep-sample-fallback",
}

#: (sample payload, lint kwargs) -> the exact rule ids expected.
CORPUS = [
    ("abc", {}, {"sample-interval-invalid"}),
    ("2000,4,1", {}, {"sample-interval-invalid"}),
    ({"interval": 0}, {}, {"sample-interval-invalid"}),
    ({"interval": -5}, {}, {"sample-interval-invalid"}),
    ({"interval": 2000, "stride": 3}, {}, {"sample-interval-invalid"}),
    ({"k": 4}, {}, {"sample-interval-invalid"}),
    (
        "2000",
        {"trace_length": 1000},
        {"sample-interval-exceeds-trace"},
    ),
    (
        {"interval": 100, "k": 50},
        {"trace_length": 1000},
        {"sample-k-exceeds-intervals"},
    ),
    (
        {"interval": 2000, "k": 50},
        {"trace_length": 1000},
        {"sample-interval-exceeds-trace", "sample-k-exceeds-intervals"},
    ),
    ("100", {"engine": "checked"}, {"sample-fallback-checked"}),
    ("100", {"injector_active": True}, {"sample-fallback-injector"}),
    (
        "100",
        {"miss_path": {"victim_entries": 4}},
        {"sample-fallback-chain"},
    ),
    (
        "100",
        {
            "engine": "checked",
            "injector_active": True,
            "miss_path": {"victim_entries": 4},
        },
        {
            "sample-fallback-checked",
            "sample-fallback-injector",
            "sample-fallback-chain",
        },
    ),
    ("100", {"warmup": "fill"}, {"sample-warmup-ignored"}),
    ("100", {"warmup": 500}, {"sample-warmup-ignored"}),
    # A fallback means the sweep runs exactly and honours its warmup,
    # so the "ignored" reminder is suppressed.
    (
        "100",
        {"warmup": "fill", "engine": "checked"},
        {"sample-fallback-checked"},
    ),
]


class TestSampleCorpus:
    @pytest.mark.parametrize("payload,kwargs,expected", CORPUS)
    def test_known_config_maps_to_exact_rules(self, payload, kwargs, expected):
        diagnostics = lint_sample(payload, **kwargs)
        assert {d.rule for d in diagnostics} == expected

    def test_severities(self):
        assert [d.severity for d in lint_sample("abc")] == [Severity.ERROR]
        assert [
            d.severity for d in lint_sample("2000", trace_length=1000)
        ] == [Severity.WARNING]
        assert [
            d.severity for d in lint_sample("100", engine="checked")
        ] == [Severity.WARNING]
        assert [
            d.severity for d in lint_sample("100", warmup="fill")
        ] == [Severity.INFO]

    def test_clean_configs_are_clean(self):
        assert lint_sample(None) == []
        assert lint_sample("100", trace_length=1000) == []
        assert lint_sample(SamplingConfig(100, 4), trace_length=1000) == []
        # warmup 0 / None never earns the reminder.
        assert lint_sample("100", warmup=0) == []
        assert lint_sample("100", warmup=None) == []

    def test_default_k_is_not_reported_as_exceeding(self):
        # k=None clamps silently: the user never asked for a count.
        assert lint_sample("400", trace_length=1000) == []

    def test_disabled_chain_is_not_a_fallback(self):
        assert lint_sample("100", miss_path={}) == []
        assert (
            lint_sample("100", miss_path=MissPathConfig()) == []
        )

    def test_rules_are_documented(self):
        assert SAMPLE_RULES <= set(CONFIG_RULES)


class TestSweepCoverage:
    GRID = [CacheGeometry(256, 16, 8), CacheGeometry(512, 16, 8)]

    def test_all_cells_covered_without_fallback(self):
        findings = lint_sample_coverage(self.GRID, "2000,4", trace_count=3)
        assert [f.rule for f in findings] == ["sweep-sample-coverage"]
        finding = findings[0]
        assert finding.severity is Severity.INFO
        assert finding.data["covered"] == 6
        assert finding.data["total"] == 6
        assert finding.data["fallback"] == 0
        assert finding.data["sample"] == "i2000,k4,s0"

    @pytest.mark.parametrize(
        "kwargs,axes",
        [
            ({"engine": "checked"}, 1),
            ({"injector_active": True}, 1),
            ({"miss_path": {"victim_entries": 4}}, 1),
            ({"engine": "checked", "injector_active": True}, 2),
        ],
    )
    def test_fallback_axes_zero_the_coverage(self, kwargs, axes):
        findings = lint_sample_coverage(
            self.GRID, "2000,4", trace_count=3, **kwargs
        )
        coverage = [f for f in findings if f.rule == "sweep-sample-coverage"]
        fallback = [f for f in findings if f.rule == "sweep-sample-fallback"]
        assert len(coverage) == 1
        assert coverage[0].data["covered"] == 0
        assert coverage[0].data["fallback"] == 6
        assert len(fallback) == axes
        assert all(f.severity is Severity.INFO for f in findings)
        assert all(f.data["cells"] == 6 for f in fallback)

    def test_no_sample_or_invalid_sample_reports_nothing(self):
        # lint_sample owns reporting malformed configs; the coverage
        # report never duplicates its errors.
        assert lint_sample_coverage(self.GRID, None) == []
        assert lint_sample_coverage(self.GRID, "abc") == []
