"""Soundness of the must/may abstract cache analysis.

The load-bearing suite is the differential one: every bundled program,
over a geometry grid covering non-sector, sector, and load-forward
configurations, is classified statically and then *executed* — the
machine trace is replayed through the concrete cache and every access
is attributed back to its site.  A single statically-proven always-hit
that misses (or always-miss that hits, or first-miss that misses
twice) fails the suite, and no access is ever silently excluded from
the check.
"""

from __future__ import annotations

import inspect

import pytest

from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError, StaticCheckError
from repro.staticcheck.abscache import (
    SiteClass,
    classify_program,
    predict_knee,
    verify_classification,
)
from repro.workloads.assembler import assemble
from repro.workloads.programs import PROGRAMS

#: (net, block, sub-block, associativity, fetch) — one non-sector
#: config, one sector config (sub < block), and one load-forward
#: sector config, as the acceptance grid requires.
GRID = (
    (256, 16, 16, 2, "demand"),
    (512, 32, 8, 4, "demand"),
    (512, 32, 8, 4, "load-forward"),
)


def _build(name, word_size=2):
    builder = PROGRAMS[name]
    params = (
        {"seed": 0}
        if "seed" in inspect.signature(builder).parameters
        else {}
    )
    return assemble(builder(**params).source, word_size=word_size)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_differential_soundness(name):
    """No proven classification is ever contradicted by execution."""
    program = _build(name)
    for net, block, sub, assoc, fetch in GRID:
        geometry = CacheGeometry(
            net_size=net, block_size=block,
            sub_block_size=sub, associativity=assoc,
        )
        report = classify_program(program, geometry, fetch=fetch, name=name)
        assert report.sites, f"{name}: no sites classified"
        result = verify_classification(
            program, report, max_refs=80_000
        )
        fraction = report.unclassified_fraction
        assert result.ok, (
            f"{name} @ net={net} block={block} sub={sub} assoc={assoc} "
            f"{fetch}: {len(result.violations)} violated proof(s), e.g. "
            f"{result.violations[:3]} (unclassified fraction {fraction:.2f})"
        )
        # No silent exclusions: every replayed access is either checked
        # against a proof or counted as unclassified.
        assert result.checked + result.unclassified_accesses == result.accesses
        assert result.accesses > 0
        # The analysis must actually prove things, not classify
        # everything as unknown (fraction reported in the assert above).
        assert fraction < 1.0, f"{name}: nothing classified ({fraction})"


class TestReport:
    def test_counts_and_fraction_are_consistent(self):
        program = _build("fib")
        report = classify_program(
            program, CacheGeometry(256, 16, 8, associativity=2), name="fib"
        )
        counts = report.counts
        assert sum(counts.values()) == len(report.sites)
        assert report.unclassified_fraction == (
            counts["unclassified"] / len(report.sites)
        )

    def test_to_dict_schema(self):
        program = _build("fib")
        report = classify_program(
            program, CacheGeometry(256, 16, 8), name="fib"
        )
        payload = report.to_dict()
        assert payload["schema_version"] == 1
        assert payload["name"] == "fib"
        assert payload["geometry"]["net_size"] == 256
        assert payload["total_sites"] == len(payload["sites"])
        for site in payload["sites"]:
            assert site["class"] in {
                "always-hit", "always-miss", "first-miss", "unclassified"
            }

    def test_to_diagnostics_uses_stable_rules(self):
        program = _build("fib")
        report = classify_program(
            program, CacheGeometry(256, 16, 8), name="fib"
        )
        diagnostics = report.to_diagnostics()
        assert len(diagnostics) == len(report.sites)
        for diagnostic in diagnostics:
            assert diagnostic.rule.startswith("abscache-")
            assert diagnostic.source == "fib"
            assert diagnostic.location.startswith("addr 0x")
            assert not diagnostic.is_error

    def test_entry_ifetch_is_always_miss(self):
        # The very first instruction fetch starts from an empty cache
        # on every path: the analysis must prove it a miss.
        program = _build("fib")
        report = classify_program(
            program, CacheGeometry(256, 16, 8), name="fib"
        )
        entry = next(s for s in report.sites if s.site == "0:ifetch")
        assert entry.classification is SiteClass.ALWAYS_MISS


class TestInputValidation:
    def test_word_larger_than_sub_block_is_rejected(self):
        program = _build("fib", word_size=4)
        with pytest.raises(ConfigurationError, match="sub_block_size"):
            classify_program(program, CacheGeometry(256, 16, 2))

    def test_error_program_is_refused(self):
        bad = assemble("jmp 2\nhalt\n", word_size=2)
        with pytest.raises(StaticCheckError):
            classify_program(bad, CacheGeometry(256, 16, 8), name="bad")

    def test_error_program_accepted_without_check(self):
        bad = assemble("jmp 2\nhalt\n", word_size=2)
        report = classify_program(
            bad, CacheGeometry(256, 16, 8), name="bad", check=False
        )
        assert report.sites


class TestPredictKnee:
    NETS = (64, 128, 256, 512, 1024, 2048)

    def test_loop_program_has_a_knee(self):
        knee = predict_knee(
            _build("bubble"), self.NETS,
            block_size=16, sub_block_size=8, associativity=4,
        )
        assert knee in self.NETS
        assert knee >= 128  # bubble's hot loop does not fit 64 bytes

    def test_knee_feeds_compare_with_sweep(self):
        from repro.staticcheck.locality import compare_with_sweep, footprint

        class Point:
            def __init__(self, net, miss):
                self.geometry = CacheGeometry(net, 16, 8, associativity=4)
                self.miss_ratio = miss

        program = _build("bubble")
        knee = predict_knee(
            program, self.NETS,
            block_size=16, sub_block_size=8, associativity=4,
        )
        # A curve kneeing exactly where the analysis predicts.
        points = [
            Point(net, 0.5 if net < knee else 0.05) for net in self.NETS
        ]
        comparison = compare_with_sweep(
            footprint(program, name="bubble"), points, classified_knee=knee
        )
        assert comparison.predicted_bytes == knee
        assert comparison.observed_knee_net == knee
        assert comparison.consistent

    def test_loop_free_program_has_no_knee(self):
        flat = assemble("li r0, 1\nadd r0, r0\nhalt\n", word_size=2)
        assert predict_knee(
            flat, self.NETS, block_size=16, sub_block_size=8,
        ) is None
