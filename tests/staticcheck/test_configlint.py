"""Config-lint rule corpus: known-bad geometries with exact rule ids.

The corpus pins the rule id each defect class maps to, so service
clients and CI gates can key on them without parsing messages.
"""

import pytest

from repro.errors import StaticCheckError
from repro.staticcheck import (
    CONFIG_RULES,
    Severity,
    check_geometry,
    error_count,
    format_diagnostics,
    lint_cell_options,
    lint_geometry,
    lint_grid_axes,
)

#: (net, block, sub, assoc, fetch) -> the exact rule ids expected.
BAD_GEOMETRIES = [
    ((64, 16, 32, 4, None), {"geom-sub-gt-block"}),
    ((100, 16, 8, 4, None), {"geom-pow2"}),
    ((64, 16, 8, 0, None), {"geom-assoc-invalid"}),
    ((64, 16, 8, 3, None), {"geom-assoc-invalid"}),
    ((64, 128, 8, 1, None), {"geom-block-gt-net"}),
    ((64, 16, 16, 4, "load-forward"), {"fetch-lf-single-sub"}),
    ((64, 16, 16, 4, "load-forward-optimized"), {"fetch-lf-single-sub"}),
    ((64, 16, 8, 8, None), {"geom-assoc-clamped"}),
    ((0, 16, 8, 4, None), {"geom-pow2"}),
    ((64, -4, 8, 4, None), {"geom-pow2"}),
    (("1k", 16, 8, 4, None), {"geom-pow2"}),
    ((100, 16, 32, 0, None), {"geom-pow2", "geom-sub-gt-block", "geom-assoc-invalid"}),
]


class TestGeometryCorpus:
    @pytest.mark.parametrize("shape,expected", BAD_GEOMETRIES)
    def test_known_bad_shape_maps_to_exact_rules(self, shape, expected):
        net, block, sub, assoc, fetch = shape
        diagnostics = lint_geometry(net, block, sub, assoc=assoc, fetch=fetch)
        assert {d.rule for d in diagnostics} == expected

    def test_paper_shapes_are_clean(self):
        for net in (32, 64, 256, 1024, 4096):
            for block in (4, 8, 16, 32):
                if block > net:
                    continue
                assoc = min(4, net // block)
                assert lint_geometry(net, block, block // 2 or block, assoc=assoc) == []

    def test_rules_all_documented(self):
        for _, expected in BAD_GEOMETRIES:
            assert expected <= set(CONFIG_RULES)

    def test_single_sub_block_warning_severity(self):
        # table8 legitimately sweeps load-forward cells with sub == block,
        # so this must warn, never error.
        diagnostics = lint_geometry(64, 16, 16, fetch="load-forward")
        assert all(d.severity is Severity.WARNING for d in diagnostics)

    def test_assoc_clamped_is_warning(self):
        diagnostics = lint_geometry(64, 16, 8, assoc=16)
        assert [d.rule for d in diagnostics] == ["geom-assoc-clamped"]
        assert diagnostics[0].severity is Severity.WARNING


class TestCellOptions:
    def test_unknown_fetch_policy(self):
        diagnostics = lint_cell_options("prefetch-all", "lru", "fill")
        assert [d.rule for d in diagnostics] == ["policy-unknown-fetch"]

    def test_unknown_replacement_policy(self):
        diagnostics = lint_cell_options("demand", "mru", "fill")
        assert [d.rule for d in diagnostics] == ["policy-unknown-replacement"]

    @pytest.mark.parametrize("warmup", ["cold", -1, True, 2.5])
    def test_bad_warmup(self, warmup):
        diagnostics = lint_cell_options(None, None, warmup)
        assert [d.rule for d in diagnostics] == ["sweep-bad-warmup"]

    @pytest.mark.parametrize("warmup", ["fill", 0, 500, None])
    def test_good_warmup(self, warmup):
        assert lint_cell_options("demand", "lru", warmup) == []


class TestGridAxes:
    def test_empty_axis(self):
        diagnostics = lint_grid_axes({"net": []})
        assert [d.rule for d in diagnostics] == ["grid-axis-empty"]
        assert diagnostics[0].location == "net"

    def test_non_integer_axis_value(self):
        diagnostics = lint_grid_axes({"block": [16, "32"]})
        assert [d.rule for d in diagnostics] == ["grid-axis-type"]

    def test_none_axes_skipped(self):
        assert lint_grid_axes({"net": None, "block": [16]}) == []


class TestCheckGeometryGate:
    def test_raises_with_full_diagnostics(self):
        with pytest.raises(StaticCheckError) as excinfo:
            check_geometry(100, 32, 64, assoc=0)
        rules = {d.rule for d in excinfo.value.diagnostics}
        assert rules == {"geom-pow2", "geom-sub-gt-block", "geom-assoc-invalid"}
        assert "geom-" in str(excinfo.value)

    def test_warnings_pass_through(self):
        diagnostics = check_geometry(64, 16, 16, fetch="load-forward")
        assert error_count(diagnostics) == 0
        assert [d.rule for d in diagnostics] == ["fetch-lf-single-sub"]

    def test_format_orders_errors_first(self):
        diagnostics = lint_geometry(64, 16, 16, assoc=0, fetch="load-forward")
        rendered = format_diagnostics(diagnostics).splitlines()
        assert "[geom-assoc-invalid]" in rendered[0]
        assert "[fetch-lf-single-sub]" in rendered[-1]
