"""Control-flow graph construction tests."""

from repro.staticcheck.cfg import build_cfg
from repro.workloads.assembler import assemble

LOOP_SOURCE = """
    li   r0, 0
    li   r1, 10
loop:
    addi r0, 1
    blt  r0, r1, loop
    halt
"""

CALL_SOURCE = """
    li   r0, 5
    call sub
    halt
sub:
    ret
"""


class TestBasicBlocks:
    def test_loop_program_splits_into_three_blocks(self):
        cfg = build_cfg(assemble(LOOP_SOURCE))
        assert [(b.start, b.end) for b in cfg.blocks] == [(0, 2), (2, 4), (4, 5)]
        # Every instruction maps back to its block.
        assert cfg.block_of == [0, 0, 1, 1, 2]

    def test_edges_follow_branch_and_fallthrough(self):
        cfg = build_cfg(assemble(LOOP_SOURCE))
        assert cfg.blocks[0].successors == [1]
        assert sorted(cfg.blocks[1].successors) == [1, 2]  # back edge + exit
        assert cfg.blocks[2].successors == []
        assert sorted(cfg.blocks[1].predecessors) == [0, 1]

    def test_block_at_addr_resolves_byte_addresses(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        loop_addr = program.symbols["loop"]
        block = cfg.block_at_addr(loop_addr)
        assert block is not None and block.index == 1
        assert cfg.block_at_addr(loop_addr + 1) is None  # mid-instruction

    def test_empty_program_yields_empty_graph(self):
        cfg = build_cfg(assemble("; nothing but a comment"))
        assert cfg.blocks == [] and cfg.block_of == []
        assert cfg.reachable_blocks() == set()
        assert cfg.natural_loops() == []


class TestCallEdges:
    def test_call_adds_callee_and_return_edges(self):
        program = assemble(CALL_SOURCE)
        cfg = build_cfg(program)
        entry = cfg.blocks[0]
        sub_index = cfg.block_of[program.addr_to_index[program.symbols["sub"]]]
        assert sub_index in entry.successors  # call edge
        assert cfg.block_of[2] in entry.successors  # return (fall-through) edge

    def test_call_target_marked_as_subroutine_entry(self):
        cfg = build_cfg(assemble(CALL_SOURCE))
        entries = cfg.subroutine_entries()
        assert len(entries) == 1
        assert cfg.blocks[entries[0]].is_call_target


class TestDominatorsAndLoops:
    def test_dominators_of_straight_loop(self):
        cfg = build_cfg(assemble(LOOP_SOURCE))
        dom = cfg.dominators()
        assert dom[0] == {0}
        assert dom[1] == {0, 1}
        assert dom[2] == {0, 1, 2}

    def test_natural_loop_found_with_correct_body(self):
        cfg = build_cfg(assemble(LOOP_SOURCE))
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].header == 1
        assert loops[0].back_edge_tail == 1
        assert loops[0].body == frozenset({1})

    def test_nested_loops_sorted_innermost_first(self):
        source = """
            li   r0, 0
        outer:
            li   r1, 0
        inner:
            addi r1, 1
            blt  r1, r2, inner
            addi r0, 1
            blt  r0, r2, outer
            halt
        """
        cfg = build_cfg(assemble(source))
        loops = cfg.natural_loops()
        assert len(loops) == 2
        assert len(loops[0].body) < len(loops[1].body)
        assert loops[0].body < loops[1].body  # inner nested in outer

    def test_unreachable_block_excluded_from_loops(self):
        source = """
            halt
        dead:
            addi r0, 1
            jmp  dead
        """
        cfg = build_cfg(assemble(source))
        assert cfg.reachable_blocks() == {0}
        assert cfg.natural_loops() == []
