"""Static phase analysis: plans, determinism, and diagnostics.

``analyze_trace`` is the planning half of the sampled-simulation
pipeline (docs/sampling.md): the same trace, interval, ``k``, and seed
must always yield the same :class:`PhasePlan`, because the plan's
identity participates in checkpoint fingerprints.  The ``phase-*``
diagnostic rule ids are stable and pinned here.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.staticcheck.diagnostics import Severity
from repro.staticcheck.phases import (
    DEFAULT_K,
    PhasePlan,
    SamplingConfig,
    analyze_trace,
)
from repro.trace.record import Trace
from repro.workloads.assembler import assemble
from repro.workloads.generator import program_trace
from repro.workloads.programs import PROGRAMS


def synthetic_trace(n=4000, name="synth"):
    """A two-phase synthetic trace: a hot loop, then a cold stride."""
    half = n // 2
    addrs = [0x100 + (i % 8) * 2 for i in range(half)]
    addrs += [0x4000 + i * 64 for i in range(n - half)]
    return Trace(addrs, [2] * n, 2, name=name)


def matmul_inputs(length=4000, word=2):
    trace = program_trace("matmul", length, word_size=word)
    program = assemble(PROGRAMS["matmul"]().source, word_size=word)
    return trace, program


class TestSamplingConfig:
    def test_parse_interval_only(self):
        config = SamplingConfig.parse("2000")
        assert config == SamplingConfig(interval=2000, k=None, seed=0)

    def test_parse_interval_and_k(self):
        assert SamplingConfig.parse("2000,4") == SamplingConfig(2000, 4)

    @pytest.mark.parametrize("text", ["", "2000,", "2000,4,1", "abc", "2k"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ConfigurationError, match="--sample"):
            SamplingConfig.parse(text)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0},
            {"interval": -1},
            {"interval": "2000"},
            {"interval": True},
            {"interval": 2000, "k": 0},
            {"interval": 2000, "k": "4"},
            {"interval": 2000, "seed": "0"},
        ],
    )
    def test_constructor_validates(self, kwargs):
        with pytest.raises(ConfigurationError, match="sample"):
            SamplingConfig(**kwargs)

    def test_coerce_accepts_all_forms(self):
        config = SamplingConfig(2000, 4, seed=7)
        assert SamplingConfig.coerce(None) is None
        assert SamplingConfig.coerce(config) is config
        assert SamplingConfig.coerce("2000,4") == SamplingConfig(2000, 4)
        assert SamplingConfig.coerce(
            {"interval": 2000, "k": 4, "seed": 7}
        ) == config

    def test_coerce_rejects_unknown_keys_and_missing_interval(self):
        with pytest.raises(ConfigurationError, match="unknown sample keys"):
            SamplingConfig.coerce({"interval": 2000, "stride": 3})
        with pytest.raises(ConfigurationError, match="interval"):
            SamplingConfig.coerce({"k": 4})
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            SamplingConfig.coerce(2000)

    def test_key_pins_every_identity_axis(self):
        assert SamplingConfig(2000, 4, seed=1).key() == "i2000,k4,s1"
        assert SamplingConfig(2000).key() == "i2000,kauto,s0"
        # Everything that changes which intervals run changes the key.
        base = SamplingConfig(2000, 4).key()
        assert SamplingConfig(1000, 4).key() != base
        assert SamplingConfig(2000, 5).key() != base
        assert SamplingConfig(2000, 4, seed=1).key() != base

    def test_to_dict_round_trips_through_coerce(self):
        config = SamplingConfig(2000, 4, seed=3)
        assert SamplingConfig.coerce(config.to_dict()) == config


class TestPlanStructure:
    @pytest.fixture(scope="class")
    def plan(self):
        return analyze_trace(synthetic_trace(), 500, 3, seed=0)

    def test_members_partition_the_intervals(self, plan):
        members = sorted(m for phase in plan.phases for m in phase.members)
        assert members == list(range(plan.intervals))

    def test_weights_sum_to_one(self, plan):
        assert sum(phase.weight for phase in plan.phases) == pytest.approx(1.0)
        assert sum(phase.accesses for phase in plan.phases) == plan.trace_length

    def test_representative_and_witness_are_members(self, plan):
        for phase in plan.phases:
            assert phase.representative in phase.members
            if len(phase.members) == 1:
                assert phase.witness is None
            else:
                assert phase.witness in phase.members
                assert phase.witness != phase.representative

    def test_bounds_cover_the_trace_without_overlap(self, plan):
        edges = [plan.bounds(i) for i in range(plan.intervals)]
        assert edges[0][0] == 0
        assert edges[-1][1] == plan.trace_length
        for (_, end), (start, _) in zip(edges, edges[1:]):
            assert end == start
        with pytest.raises(ConfigurationError, match="out of range"):
            plan.bounds(plan.intervals)

    def test_simulated_accesses_match_reps_and_witnesses(self, plan):
        expected = 0
        for phase in plan.phases:
            start, end = plan.bounds(phase.representative)
            expected += end - start
            if phase.witness is not None:
                start, end = plan.bounds(phase.witness)
                expected += end - start
        assert plan.simulated_accesses == expected
        assert 0.0 < plan.simulated_fraction <= 1.0

    def test_k_clamps_to_interval_count(self):
        plan = analyze_trace(synthetic_trace(1000), 250, 50)
        assert plan.intervals == 4
        assert plan.k == len(plan.phases) <= 4

    def test_default_k(self):
        plan = analyze_trace(synthetic_trace(8000), 500)
        assert plan.intervals == 16
        assert len(plan.phases) <= DEFAULT_K


class TestDeterminism:
    def test_same_inputs_same_plan(self):
        trace = synthetic_trace()
        one = analyze_trace(trace, 500, 3, seed=5)
        two = analyze_trace(trace, 500, 3, seed=5)
        assert one == two
        assert one.to_dict() == two.to_dict()

    def test_cfg_fingerprints_are_deterministic_too(self):
        trace, program = matmul_inputs()
        one = analyze_trace(trace, 500, 3, program=program)
        two = analyze_trace(trace, 500, 3, program=program)
        assert one.to_dict() == two.to_dict()

    def test_seed_is_part_of_the_identity(self):
        trace = synthetic_trace()
        assert analyze_trace(trace, 500, 3, seed=0).seed == 0
        assert analyze_trace(trace, 500, 3, seed=1).seed == 1


class TestFingerprintSource:
    def test_program_gives_cfg_source(self):
        trace, program = matmul_inputs()
        assert analyze_trace(trace, 1000, 2, program=program).source == "cfg"

    def test_no_program_falls_back_to_address(self):
        assert analyze_trace(synthetic_trace(), 1000, 2).source == "address"


class TestDegeneratePlan:
    def test_whole_trace_interval_is_one_singleton_phase(self):
        trace = synthetic_trace(1000)
        plan = analyze_trace(trace, 5000, 4)
        assert plan.intervals == 1
        assert len(plan.phases) == 1
        phase = plan.phases[0]
        assert phase.members == (0,)
        assert phase.representative == 0
        assert phase.witness is None
        assert plan.simulated_fraction == 1.0

    def test_empty_trace_is_refused(self):
        with pytest.raises(ConfigurationError, match="empty trace"):
            analyze_trace(Trace([], [], 2, name="void"), 100)

    def test_non_positive_interval_is_refused(self):
        with pytest.raises(ConfigurationError, match="interval"):
            analyze_trace(synthetic_trace(100), 0)


class TestDiagnostics:
    @pytest.fixture(scope="class")
    def plan(self):
        return analyze_trace(synthetic_trace(name="twophase"), 500, 3)

    def test_rule_ids_are_stable_and_info_severity(self, plan):
        findings = plan.diagnostics()
        rules = {finding.rule for finding in findings}
        assert "phase-plan" in rules
        assert "phase-cluster" in rules
        assert rules <= {"phase-plan", "phase-cluster", "phase-singleton"}
        assert all(f.severity is Severity.INFO for f in findings)
        assert all(f.source == "phases:twophase" for f in findings)

    def test_one_cluster_finding_per_phase(self, plan):
        clusters = [
            f for f in plan.diagnostics() if f.rule == "phase-cluster"
        ]
        assert len(clusters) == len(plan.phases)

    def test_singleton_finding_tracks_witnessless_phases(self, plan):
        singletons = [
            phase.index for phase in plan.phases if phase.witness is None
        ]
        findings = [
            f for f in plan.diagnostics() if f.rule == "phase-singleton"
        ]
        if singletons:
            assert len(findings) == 1
            assert findings[0].data["phases"] == singletons
        else:
            assert findings == []

    def test_degenerate_plan_always_reports_a_singleton(self):
        plan = analyze_trace(synthetic_trace(200), 1000, 1)
        assert any(
            f.rule == "phase-singleton" for f in plan.diagnostics()
        )

    def test_to_dict_is_json_shaped(self, plan):
        import json

        payload = plan.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["trace"] == "twophase"
        assert len(payload["phases"]) == len(plan.phases)
