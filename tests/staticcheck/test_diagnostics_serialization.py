"""Diagnostic serialization: lossless round-trip, property-tested.

Mirrors the :class:`~repro.core.stats.CacheStats` round-trip suite:
``to_dict``/``from_dict`` is what carries findings across the service's
400 payloads and ``lint``/``classify`` JSON reports, so it must be
exactly invertible — including the optional ``location`` and the
structured ``data`` payload — through a real JSON encode/decode.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.staticcheck import Diagnostic, Severity

text = st.text(max_size=40)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 12), max_value=10 ** 12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    text,
)

#: JSON-safe nested payloads, like the offending-value dumps the
#: checkers attach (lists of targets, nested geometry snapshots).
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)

diagnostics = st.builds(
    Diagnostic,
    rule=text,
    severity=st.sampled_from(list(Severity)),
    message=text,
    source=text,
    location=st.one_of(st.none(), text),
    data=st.dictionaries(st.text(max_size=10), json_values, max_size=5),
)


def as_tuple(diagnostic: Diagnostic):
    return (
        diagnostic.rule,
        diagnostic.severity,
        diagnostic.message,
        diagnostic.source,
        diagnostic.location,
        diagnostic.data,
    )


class TestRoundTripProperty:
    @given(diagnostics)
    def test_every_field_survives_a_json_round_trip(self, diagnostic):
        payload = json.loads(json.dumps(diagnostic.to_dict()))
        restored = Diagnostic.from_dict(payload)
        assert as_tuple(restored) == as_tuple(diagnostic)

    @given(diagnostics)
    def test_severity_and_render_agree_after_round_trip(self, diagnostic):
        restored = Diagnostic.from_dict(diagnostic.to_dict())
        assert restored.is_error == diagnostic.is_error
        assert restored.render() == diagnostic.render()


class TestStrictness:
    def payload(self):
        return Diagnostic(
            rule="r", severity=Severity.ERROR, message="m", source="s",
            location="addr 0x2", data={"target": 7},
        ).to_dict()

    def test_missing_key_rejected(self):
        payload = self.payload()
        payload.pop("message")
        with pytest.raises(ValueError, match="missing keys \\['message'\\]"):
            Diagnostic.from_dict(payload)

    def test_unknown_key_rejected(self):
        payload = self.payload()
        payload["confidence"] = 0.8
        with pytest.raises(ValueError, match="unknown keys \\['confidence'\\]"):
            Diagnostic.from_dict(payload)

    def test_unknown_severity_rejected(self):
        payload = self.payload()
        payload["severity"] = "catastrophic"
        with pytest.raises(ValueError, match="unknown severity"):
            Diagnostic.from_dict(payload)

    def test_optional_fields_default(self):
        restored = Diagnostic.from_dict(
            {"rule": "r", "severity": "warning", "message": "m", "source": ""}
        )
        assert restored.location is None
        assert restored.data == {}
