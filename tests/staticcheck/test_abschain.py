"""Soundness of the hierarchical (chain-aware) abstract cache analysis.

The load-bearing suite mirrors ``test_abscache.py`` but covers the
acceptance matrix of ISSUE 9: all bundled programs × the chain grid
{bare, vc4, mc4, sb2x4, l2, vc4+sb2x4+l2} at words 2 and 4.  Each
combination is classified statically and then *executed* through a
cold chained cache — a single contradicted hierarchical proof (a
``chain-hit@victim`` access serviced by memory, say) or a simulated
``MissPathStats`` counter outside its static ``[lo, hi]`` bound fails
the suite.

The regression class at the bottom pins the ISSUE's tighter-bound
criterion: with a chain, the static traffic bound must be *strictly*
tighter than the single-level (bare) bound on at least one
program/chain pair.
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro.core.config import CacheGeometry
from repro.staticcheck.abschain import (
    ChainSiteClass,
    classify_chain_program,
    lint_chain_report,
    predict_chain_knee,
    verify_chain_classification,
    verify_classification,
)
from repro.staticcheck.locality import compare_with_sweep, footprint
from repro.workloads.assembler import assemble
from repro.workloads.programs import PROGRAMS

#: The ISSUE 9 acceptance chain grid.
CHAINS = {
    "bare": {},
    "vc4": {"victim_entries": 4},
    "mc4": {"miss_entries": 4},
    "sb2x4": {"stream_buffers": 2, "stream_depth": 4},
    "l2": {"l2_net_size": 4096},
    "vc4+sb2x4+l2": {
        "victim_entries": 4,
        "stream_buffers": 2,
        "stream_depth": 4,
        "l2_net_size": 4096,
    },
}

GEOMETRY = dict(net_size=256, block_size=16, sub_block_size=16, associativity=2)

#: A straight-line program: every block is touched once, so a victim
#: or miss cache provably never services anything (the inert witness),
#: while stream buffers provably prefetch the sequential ifetch run.
STRAIGHT_SRC = """
main:
    li   r0, 7
    li   r1, data
    st   r0, r1, 0
    ld   r2, r1, 0
    add  r2, r0
    halt

.words data 0 0 0 0
"""


def _build(name, word_size=2):
    builder = PROGRAMS[name]
    params = (
        {"seed": 0}
        if "seed" in inspect.signature(builder).parameters
        else {}
    )
    return assemble(builder(**params).source, word_size=word_size)


@pytest.mark.parametrize("word", [2, 4])
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_differential_soundness(name, word):
    """No chain proof contradicted, no counter outside its bounds."""
    program = _build(name, word_size=word)
    geometry = CacheGeometry(**GEOMETRY)
    for chain_name, miss_path in CHAINS.items():
        report = classify_chain_program(
            program, geometry, miss_path=miss_path, name=name
        )
        assert report.sites, f"{name}/{chain_name}: no sites"
        result = verify_classification(program, report, max_refs=80_000)
        assert result.ok, (
            f"{name} word={word} chain={chain_name}: "
            f"{len(result.violations)} violated proof(s) "
            f"{result.violations[:3]}, "
            f"{len(result.bound_violations)} bound violation(s) "
            f"{result.bound_violations[:3]}"
        )
        # Airtight accounting: every replayed access is either checked
        # against a proof or counted as unclassified — never dropped.
        assert (
            result.checked + result.unclassified_accesses == result.accesses
        )
        assert result.accesses > 0
        assert report.classified_fraction > 0.0


class TestChainProofs:
    def test_stream_buffer_hit_is_proven_and_verified(self):
        """hanoi's sequential code run is a provable stream-buffer hit."""
        program = _build("hanoi")
        report = classify_chain_program(
            program,
            CacheGeometry(**GEOMETRY),
            miss_path=CHAINS["sb2x4"],
            name="hanoi",
        )
        assert report.counts["chain-hit@stream"] >= 1
        assert verify_classification(program, report, max_refs=80_000).ok

    def test_miss_cache_hit_is_proven_and_verified(self):
        """bubble re-misses a conflicting block while its tag is cached."""
        program = _build("bubble")
        report = classify_chain_program(
            program,
            CacheGeometry(512, 32, 8, associativity=4),
            miss_path=CHAINS["mc4"],
            name="bubble",
        )
        chain_hits = sum(
            count
            for key, count in report.counts.items()
            if key.startswith("chain-hit")
        )
        assert chain_hits >= 1
        assert verify_classification(program, report, max_refs=80_000).ok

    def test_bare_chain_degenerates_to_single_level_classes(self):
        program = _build("fib")
        report = classify_chain_program(
            program, CacheGeometry(**GEOMETRY), name="fib"
        )
        for key, count in report.counts.items():
            if key.startswith("chain-hit"):
                assert count == 0, f"bare chain proved {key}"

    def test_write_misses_bypass_the_chain(self):
        """Write misses never probe (no-allocate), so no write site may
        carry a chain-hit or memory-bound proof."""
        for name in ("bubble", "qsort", "matmul"):
            report = classify_chain_program(
                _build(name),
                CacheGeometry(**GEOMETRY),
                miss_path=CHAINS["vc4+sb2x4+l2"],
                name=name,
            )
            for site in report.sites:
                if site.kind == "write":
                    assert site.classification in (
                        ChainSiteClass.L1_HIT,
                        ChainSiteClass.UNCLASSIFIED,
                    ), f"{name} {site.site}: {site.classification}"


class TestStaticBounds:
    def test_matmul_bounds_are_finite(self):
        """Trip-count detection bounds the whole triple loop nest."""
        report = classify_chain_program(
            _build("matmul"), CacheGeometry(**GEOMETRY), name="matmul"
        )
        for key in ("demand_misses", "memory_fetches", "memory_bytes_fetched"):
            bound = report.bound(key)
            assert bound is not None
            lo, hi = bound
            assert hi is not None, f"{key} upper bound is unbounded"
            assert 0 <= lo <= hi

    def test_recursive_program_upper_bounds_are_unbounded(self):
        """hanoi's recursion depth is data-dependent: hi must be None,
        never a guessed finite number."""
        report = classify_chain_program(
            _build("hanoi"), CacheGeometry(**GEOMETRY), name="hanoi"
        )
        assert report.bound("demand_misses")[1] is None

    def test_lower_bounds_only_checked_for_halted_runs(self):
        program = _build("matmul")
        report = classify_chain_program(
            program, CacheGeometry(**GEOMETRY), name="matmul"
        )
        # A 100-access prefix cannot reach the halting lower bounds;
        # the verifier must not hold the prefix to them.
        result = verify_classification(program, report, max_refs=100)
        assert not result.halted
        assert result.ok


class TestTighterThanSingleLevel:
    """ISSUE 9 regression pin: the chain-aware traffic bound is
    strictly tighter than the PR 5-era single-level (bare) bound."""

    @pytest.mark.parametrize("name", ["matmul", "wordcount", "format_text"])
    def test_chain_bound_strictly_tighter_on(self, name):
        program = _build(name)
        geometry = CacheGeometry(**GEOMETRY)
        bare = classify_chain_program(program, geometry, name=name)
        chained = classify_chain_program(
            program, geometry, miss_path=CHAINS["vc4+sb2x4+l2"], name=name
        )
        bare_hi = bare.bound("memory_bytes_fetched")[1]
        chained_hi = chained.bound("memory_bytes_fetched")[1]
        assert bare_hi is not None and chained_hi is not None
        assert chained_hi < bare_hi, (
            f"{name}: chain bound {chained_hi} not tighter than "
            f"bare {bare_hi}"
        )
        # Both remain sound: the simulated counters sit inside them.
        assert verify_classification(program, chained, max_refs=80_000).ok

    def test_matmul_tightness_does_not_regress(self):
        """Pin the concrete matmul ratio: the L2-persistence argument
        halves the bare traffic bound.  An analysis change may tighten
        this further, never loosen it past bare/1.5."""
        program = _build("matmul")
        geometry = CacheGeometry(**GEOMETRY)
        bare_hi = classify_chain_program(program, geometry, name="matmul")
        chained_hi = classify_chain_program(
            program,
            geometry,
            miss_path=CHAINS["vc4+sb2x4+l2"],
            name="matmul",
        )
        ratio = (
            bare_hi.bound("memory_bytes_fetched")[1]
            / chained_hi.bound("memory_bytes_fetched")[1]
        )
        assert ratio >= 1.5


class TestChainInertLint:
    def test_victim_cache_on_straight_line_code_is_inert(self):
        program = assemble(STRAIGHT_SRC, word_size=2)
        report = classify_chain_program(
            program,
            CacheGeometry(**GEOMETRY),
            miss_path={"victim_entries": 4},
            name="straight",
        )
        findings = lint_chain_report(report)
        assert [d.rule for d in findings] == ["abschain-chain-inert"]
        assert findings[0].data["structure"] == "victim"
        # The lint is embedded in the report's diagnostics view too.
        assert "abschain-chain-inert" in [
            d.rule for d in report.to_diagnostics()
        ]

    def test_stream_buffers_on_the_same_code_are_not_inert(self):
        """Sequential ifetch makes the stream buffer provably useful —
        the lint must distinguish, not blanket-warn."""
        program = assemble(STRAIGHT_SRC, word_size=2)
        report = classify_chain_program(
            program,
            CacheGeometry(**GEOMETRY),
            miss_path={"stream_buffers": 2},
            name="straight",
        )
        assert report.counts["chain-hit@stream"] >= 1
        assert lint_chain_report(report) == []
        assert verify_classification(program, report).ok


class TestReportSchema:
    def test_to_dict_has_chain_key_and_sorted_bounds(self):
        report = classify_chain_program(
            _build("fib"),
            CacheGeometry(**GEOMETRY),
            miss_path=CHAINS["vc4+sb2x4+l2"],
            name="fib",
        )
        payload = report.to_dict()
        assert payload["schema_version"] == 1
        assert payload["miss_path"]["key"] == "vc4+sb2x4+l2:4096/0/0@4"
        assert list(payload["bounds"]) == sorted(payload["bounds"])
        assert payload["total_sites"] == len(payload["sites"])

    def test_json_output_is_deterministic(self):
        """Two analyses of the same inputs serialize byte-identically,
        sites in instruction order (the diff-cleanly requirement)."""
        dumps = []
        for _ in range(2):
            report = classify_chain_program(
                _build("qsort"),
                CacheGeometry(**GEOMETRY),
                miss_path=CHAINS["l2"],
                name="qsort",
            )
            dumps.append(json.dumps(report.to_dict(), sort_keys=False))
        assert dumps[0] == dumps[1]
        sites = [s["site"] for s in report.to_dict()["sites"]]
        keys = [
            (int(s.split(":")[0]), s.split(":")[1]) for s in sites
        ]
        assert keys == sorted(keys, key=lambda k: (k[0],))

    def test_proof_rows_cover_every_chain_structure(self):
        report = classify_chain_program(
            _build("fib"),
            CacheGeometry(**GEOMETRY),
            miss_path=CHAINS["vc4+sb2x4+l2"],
            name="fib",
        )
        rows = report.proof_rows()
        assert [row["structure"] for row in rows] == ["victim", "stream", "l2"]
        for row in rows:
            assert set(row) == {
                "structure", "proven_hits", "probes", "hits",
                "fills", "evictions",
            }


class TestVerifierSanitize:
    def test_checked_engine_replay(self):
        """sanitize=True replays through the checked engine, which
        cross-asserts the chain conservation laws on every access."""
        program = _build("sieve")
        report = classify_chain_program(
            program,
            CacheGeometry(**GEOMETRY),
            miss_path=CHAINS["vc4+sb2x4+l2"],
            name="sieve",
        )
        result = verify_classification(
            program, report, max_refs=40_000, sanitize=True
        )
        assert result.ok
        assert result.sanitized

    def test_alias_is_the_same_function(self):
        assert verify_chain_classification is verify_classification


class TestChainAwareKnee:
    def test_chain_knee_feeds_compare_with_sweep(self):
        """The chain-aware knee is accepted by the locality comparison
        exactly like the single-level one."""
        program = _build("sieve")
        nets = [64, 128, 256, 512, 1024, 2048]
        knee = predict_chain_knee(
            program,
            nets,
            block_size=16,
            associativity=2,
            miss_path=CHAINS["sb2x4"],
            name="sieve",
        )
        assert knee in nets

        class _Point:
            def __init__(self, net, miss):
                self.geometry = CacheGeometry(net, 16, 16, associativity=2)
                self.miss_ratio = miss

        curve = [
            _Point(64, 0.5), _Point(128, 0.3), _Point(256, 0.12),
            _Point(512, 0.02), _Point(1024, 0.02), _Point(2048, 0.02),
        ]
        comparison = compare_with_sweep(
            footprint(program, name="sieve"), curve, classified_knee=knee
        )
        assert comparison.predicted_bytes == knee

    def test_chain_never_delays_the_knee(self):
        """Extra structures only service misses; the chain-aware knee
        must be at or before the bare knee for the same program."""
        program = _build("matmul")
        nets = [64, 128, 256, 512, 1024]
        bare = predict_chain_knee(
            program, nets, block_size=16, associativity=2, name="matmul"
        )
        chained = predict_chain_knee(
            program,
            nets,
            block_size=16,
            associativity=2,
            miss_path=CHAINS["vc4+sb2x4+l2"],
            name="matmul",
        )
        if bare is not None and chained is not None:
            assert chained <= bare
