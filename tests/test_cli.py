"""Command-line interface tests."""

import pytest

from repro.cli import main
from repro.trace.reader import read_din

LEN = ["--length", "6000"]


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_dunder_version_is_a_version_string(self):
        import repro

        major = repro.__version__.split(".")[0]
        assert major.isdigit()


class TestServeCommand:
    def test_serve_flags_parse(self):
        # The serve loop itself is covered by tests/service; here we
        # only pin that the CLI wires the flags into a ServiceConfig.
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            [
                "serve", "--port", "0", "--workers", "3",
                "--cache-size", "99", "--disk-cache", "/tmp/c.jsonl",
                "--max-inflight", "4", "--max-queue", "7",
                "--breaker-failures", "0", "--engine", "reference",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.workers == 3
        assert args.cache_size == 99
        assert args.breaker_failures == 0
        assert args.engine == "reference"


class TestTableCommands:
    def test_table7(self, capsys):
        assert main(LEN + ["table7", "z8000"]) == 0
        out = capsys.readouterr().out
        assert "Table 7 (z8000)" in out
        assert "16,8" in out

    def test_table8(self, capsys):
        assert main(LEN + ["table8"]) == 0
        out = capsys.readouterr().out
        assert "load-forward" in out
        assert "16,2,LF" in out

    def test_table6(self, capsys):
        assert main(["--length", "20000", "table6"]) == 0
        out = capsys.readouterr().out
        assert "360/85" in out


class TestFigureCommand:
    def test_figure_4(self, capsys):
        assert main(LEN + ["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "traffic ratio (log)" in out

    def test_figure_8_is_nibble_mode(self, capsys):
        assert main(LEN + ["figure", "8"]) == 0
        assert "nibble mode" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(LEN + ["figure", "12"])


class TestOtherCommands:
    def test_riscii(self, capsys):
        assert main(["--length", "10000", "riscii"]) == 0
        out = capsys.readouterr().out
        assert "remote PC accuracy" in out

    def test_suites_listing(self, capsys):
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        assert "pdp11:" in out
        assert "NROFF" in out

    def test_trace_summary(self, capsys):
        assert main(LEN + ["trace", "z8000", "GREP"]) == 0
        assert "unique addresses" in capsys.readouterr().out

    def test_trace_export_din(self, tmp_path, capsys):
        out_file = tmp_path / "grep.din"
        assert main(LEN + ["trace", "z8000", "GREP", "--out", str(out_file)]) == 0
        trace = read_din(out_file, size=2)
        assert len(trace) == 6000

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestSimulateCommand:
    @pytest.fixture()
    def din_file(self, tmp_path):
        path = tmp_path / "grep.din"
        main(LEN + ["trace", "z8000", "GREP", "--out", str(path)])
        return str(path)

    def test_defaults(self, din_file, capsys):
        assert main(["simulate", din_file]) == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "1024B net (16,16)" in out or "1024B net" in out

    def test_geometry_flags(self, din_file, capsys):
        assert main([
            "simulate", din_file, "--net", "256", "--block", "16",
            "--sub", "8", "--assoc", "2",
        ]) == 0
        assert "256B net (16,8) 2-way" in capsys.readouterr().out

    def test_fetch_and_replacement_flags(self, din_file, capsys):
        assert main([
            "simulate", din_file, "--sub", "2",
            "--fetch", "load-forward", "--replacement", "fifo",
        ]) == 0
        out = capsys.readouterr().out
        assert "fifo replacement" in out
        assert "load-forward fetch" in out

    def test_cold_and_keep_writes(self, din_file, capsys):
        assert main(["simulate", din_file, "--cold", "--keep-writes"]) == 0
        assert "miss ratio" in capsys.readouterr().out


class TestResilienceFlags:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
            main(LEN + ["table7", "z8000", "--resume"])

    def test_checkpoint_and_resume_round_trip(self, tmp_path, capsys):
        ck = str(tmp_path / "t7.jsonl")
        assert main(LEN + ["table7", "z8000", "--checkpoint", ck]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "t7.jsonl").exists()
        assert main(
            LEN + ["table7", "z8000", "--checkpoint", ck, "--resume"]
        ) == 0
        assert capsys.readouterr().out == first

    def test_lenient_and_retry_flags_accepted(self, capsys):
        assert main(
            LEN + ["table7", "z8000", "--lenient", "--max-retries", "2"]
        ) == 0
        assert "Table 7" in capsys.readouterr().out


class TestChaosCommand:
    def test_quick_chaos_run_passes(self, capsys):
        assert main(["chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out


class TestLintCommand:
    def test_all_programs_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "checked 13 program(s): 0 error(s), 0 warning(s)" in out
        assert "fib:" in out and "editor:" in out

    def test_json_format(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert len(payload["programs"]) == 13
        by_name = {entry["name"]: entry for entry in payload["programs"]}
        assert by_name["fib"]["diagnostics"] == []
        assert by_name["fib"]["footprint"]["hot_loop_bytes"] > 0

    def test_program_subset_and_word_size(self, capsys):
        assert main(["lint", "--programs", "fib", "--word", "4"]) == 0
        out = capsys.readouterr().out
        assert "checked 1 program(s)" in out

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit, match="unknown programs"):
            main(["lint", "--programs", "quux"])

    def test_findings_fail_the_command(self, capsys, monkeypatch):
        from repro.workloads.programs import PROGRAMS, ProgramSpec

        def bad_build(**_params):
            return ProgramSpec(
                name="bad", source="loop:\n    addi r0, 1\n    jmp loop\n",
                params={},
            )

        monkeypatch.setitem(PROGRAMS, "bad", bad_build)
        assert main(["lint", "--programs", "bad"]) == 1
        out = capsys.readouterr().out
        assert "[no-halt-path]" in out

    def test_strict_promotes_warnings(self, capsys, monkeypatch):
        from repro.workloads.programs import PROGRAMS, ProgramSpec

        def warn_build(**_params):
            # Dead code after halt: a warning, not an error.
            return ProgramSpec(
                name="warn",
                source="    li r0, 1\n    halt\ndead:\n    halt\n",
                params={},
            )

        monkeypatch.setitem(PROGRAMS, "warn", warn_build)
        assert main(["lint", "--programs", "warn"]) == 0
        capsys.readouterr()
        assert main(["lint", "--programs", "warn", "--strict"]) == 1


class TestFigureCsv:
    def test_csv_output(self, capsys):
        assert main(LEN + ["figure", "4", "--csv"]) == 0
        out = capsys.readouterr().out
        header, first = out.splitlines()[:2]
        assert header == "net_size,series,solid,traffic_ratio,miss_ratio"
        fields = first.split(",")
        assert len(fields) == 5
        float(fields[3]), float(fields[4])  # parses as numbers


class TestMisspathCli:
    @pytest.fixture()
    def din_file(self, tmp_path):
        path = tmp_path / "grep.din"
        main(LEN + ["trace", "z8000", "GREP", "--out", str(path)])
        return str(path)

    def test_simulate_reports_the_chain(self, din_file, capsys):
        assert main([
            "simulate", din_file, "--net", "256",
            "--victim-entries", "4", "--stream-buffers", "2",
            "--l2-net", "4096",
        ]) == 0
        out = capsys.readouterr().out
        assert "miss path:    vc4+sb2x4+l2:4096/0/0@4" in out
        assert "victim" in out and "stream" in out
        assert "memory  fetches" in out

    def test_simulate_without_chain_is_silent_about_it(self, din_file, capsys):
        assert main(["simulate", din_file]) == 0
        assert "miss path" not in capsys.readouterr().out

    def test_lint_misspath_clean(self, capsys):
        assert main([
            "lint", "--misspath", '{"victim_entries": 4}',
        ]) == 0
        out = capsys.readouterr().out
        assert "misspath config: 0 finding(s)" in out

    def test_lint_misspath_typo_fails(self, capsys):
        assert main([
            "lint", "--misspath", '{"victim_entires": 4}',
        ]) == 1
        out = capsys.readouterr().out
        assert "misspath-unknown-key" in out

    def test_lint_misspath_json_format(self, capsys):
        import json

        assert main([
            "lint", "--format", "json",
            "--misspath", '{"stream_depth": 0}',
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = [
            d["rule"] for d in payload["misspath"]["diagnostics"]
        ]
        assert rules == ["misspath-bad-value"]

    def test_lint_misspath_invalid_json_rejected(self):
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["lint", "--misspath", "{nope"])


class TestClassifyCommand:
    CHAIN = [
        "--victim-entries", "4", "--stream-buffers", "2", "--l2-net", "4096",
    ]

    def test_chain_flags_parse(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args([
            "classify", "matmul", "--net", "256", "--assoc", "2",
            "--victim-entries", "4", "--miss-entries", "0",
            "--stream-buffers", "2", "--stream-depth", "8",
            "--l2-net", "4096", "--l2-block", "32", "--l2-sub", "16",
            "--l2-assoc", "8",
        ])
        assert args.victim_entries == 4
        assert args.stream_buffers == 2
        assert args.stream_depth == 8
        assert args.l2_net == 4096
        assert args.l2_block == 32
        assert args.l2_assoc == 8

    def test_bare_classify_has_no_chain_noise(self, capsys):
        assert main(["classify", "matmul", "--net", "256"]) == 0
        out = capsys.readouterr().out
        assert "site(s)" in out
        assert "chain none" in out
        assert "per-structure proofs" not in out

    def test_chain_header_bounds_and_proof_table(self, capsys):
        assert main([
            "classify", "matmul", "--net", "256", "--assoc", "2",
        ] + self.CHAIN) == 0
        out = capsys.readouterr().out
        assert "chain vc4+sb2x4+l2:4096/0/0@4" in out
        assert "static counter bounds:" in out
        assert "memory_bytes_fetched" in out
        assert "per-structure proofs:" in out
        # One proof row per configured structure, in chain order.
        proofs = out.split("per-structure proofs:", 1)[1]
        assert (
            proofs.index("victim") < proofs.index("stream")
            < proofs.index("l2 ")
        )

    def test_chain_verify_passes(self, capsys):
        assert main([
            "classify", "sieve", "--net", "256", "--assoc", "2", "--verify",
        ] + self.CHAIN) == 0
        assert "verification PASSED" in capsys.readouterr().out

    def test_json_is_deterministic_and_carries_the_chain_key(self, capsys):
        import json

        argv = [
            "classify", "matmul", "--net", "256", "--assoc", "2",
            "--format", "json",
        ] + self.CHAIN
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # byte-identical across runs
        payload = json.loads(first)
        assert payload["miss_path"]["key"] == "vc4+sb2x4+l2:4096/0/0@4"
        sites = payload["sites"]
        # Deterministic site order: sorted by instruction index.
        indices = [int(s["site"].split(":", 1)[0]) for s in sites]
        assert indices == sorted(indices)

    def test_bad_chain_geometry_fails(self, capsys):
        assert main([
            "classify", "matmul", "--net", "256", "--l2-net", "100",
        ]) == 1
        assert "classify failed" in capsys.readouterr().err


class TestPhasesCommand:
    def test_text_report(self, capsys):
        assert main(LEN + ["phases", "matmul", "--interval", "1000"]) == 0
        out = capsys.readouterr().out
        assert "matmul: 6000 accesses" in out
        assert "phase 0:" in out
        assert "simulated fraction" in out
        assert "fingerprints from cfg" in out
        assert "[phase-plan]" in out

    def test_json_report(self, capsys):
        import json

        argv = LEN + [
            "phases", "matmul", "--interval", "1000", "--k", "2",
            "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["trace"] == "matmul"
        assert payload["interval_length"] == 1000
        assert payload["source"] == "cfg"
        assert payload["phases"]
        # Deterministic plans: byte-identical across runs.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit, match="unknown program"):
            main(LEN + ["phases", "quux"])

    def test_bad_interval_rejected(self):
        with pytest.raises(SystemExit, match="interval"):
            main(LEN + ["phases", "matmul", "--interval", "0"])


class TestSampleFlag:
    def test_table7_accepts_sample(self, capsys):
        assert main(LEN + ["table7", "z8000", "--sample", "2000,2"]) == 0
        assert "Table 7 (z8000)" in capsys.readouterr().out

    def test_sample_requires_sweep_coverage_in_lint(self):
        with pytest.raises(SystemExit, match="sweep-coverage"):
            main(["lint", "--sample", "100"])

    def test_lint_sweep_coverage_reports_sampled_cells(self, capsys):
        assert main(
            ["lint", "--sweep-coverage", "1024", "--sample", "2000,4"]
        ) == 0
        out = capsys.readouterr().out
        assert "[sweep-sample-coverage]" in out
        assert "i2000,k4,s0" in out

    def test_malformed_sample_rejected(self):
        with pytest.raises(SystemExit, match="--sample"):
            main(["lint", "--sweep-coverage", "1024", "--sample", "abc"])
