"""Parameter sweeps over cache geometries and trace suites.

The paper's core experiment: simulate every (net size, block size,
sub-block size) combination over a suite of traces and report the
*unweighted average* of per-trace miss and traffic ratios ("multiple-
trace miss and traffic ratios are the unweighted average of the miss
and traffic ratios of individual runs", Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy
from repro.memory.nibble import NIBBLE_MODE_BUS, BusCostModel
from repro.trace.record import Trace

__all__ = ["SweepPoint", "sweep", "geometry_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """Averaged results for one geometry over a suite.

    Attributes:
        geometry: The simulated cache shape.
        miss_ratio / traffic_ratio: Unweighted suite averages.
        scaled_traffic_ratio: Suite-average scaled (nibble-mode)
            traffic ratio.
        per_trace: ``{trace name: (miss, traffic, scaled traffic)}``.
        fetch_name: Fetch policy used (``demand`` / ``load-forward``).
        skipped_traces: Traces excluded from the averages because their
            cells failed (lenient resilient runs only; empty for a
            clean sweep).  The averages cover ``per_trace`` only, so a
            non-empty value marks a *partial* point.
    """

    geometry: CacheGeometry
    miss_ratio: float
    traffic_ratio: float
    scaled_traffic_ratio: float
    per_trace: Dict[str, tuple] = field(default_factory=dict, compare=False)
    fetch_name: str = "demand"
    skipped_traces: Tuple[str, ...] = field(default=(), compare=False)

    @property
    def gross_size(self) -> float:
        return self.geometry.gross_size

    @property
    def label(self) -> str:
        return self.geometry.label


def sweep(
    traces: Sequence[Trace],
    geometries: Sequence[CacheGeometry],
    word_size: int = 2,
    fetch: Union[str, FetchPolicy, None] = None,
    replacement: str = "lru",
    warmup: Union[int, str] = "fill",
    bus_model: BusCostModel = NIBBLE_MODE_BUS,
    filter_writes: bool = True,
    runner_config: Optional["RunnerConfig"] = None,
    miss_path=None,
    sample=None,
) -> List[SweepPoint]:
    """Simulate each geometry over each trace and average the ratios.

    Execution goes through the resilient runner
    (:func:`repro.runner.run_sweep`); with the default ``runner_config``
    that layer is inert — strict, no retries, no checkpoint — and the
    results are identical to a monolithic loop.

    Args:
        traces: Suite traces (already generated).
        geometries: Cache shapes to evaluate.
        word_size: Data-path width of the traced architecture.
        fetch: Fetch policy (name or instance); demand when None.
        replacement: Replacement policy name (fresh instance per run).
        warmup: Warm-start mode forwarded to the simulator.
        bus_model: Cost model used for the scaled traffic ratio.
        filter_writes: Apply the paper's read-only filtering first.
        runner_config: Resilience knobs (checkpointing, retries,
            timeouts, lenient degradation, fault injection).
        miss_path: Optional miss-path chain
            (:class:`~repro.core.misspath.MissPathConfig` or its dict
            form) applied to every cell; ratios then reflect the chain
            (traffic charged only for fetches no structure serviced).
        sample: Optional sampling config
            (:class:`~repro.staticcheck.phases.SamplingConfig`, its
            ``INTERVAL[,K]`` string form, or a dict); cells then run
            representative-interval sampled simulation and the ratios
            are estimates with error bounds in the checkpoint records
            (docs/sampling.md).

    Returns:
        One :class:`SweepPoint` per geometry, in input order.  Under a
        lenient ``runner_config``, points may be partial — see
        :attr:`SweepPoint.skipped_traces`.
    """
    # Imported here, not at module level: repro.runner imports this
    # module for SweepPoint.
    from repro.runner.runner import run_sweep

    points, _report = run_sweep(
        traces,
        geometries,
        word_size=word_size,
        fetch=fetch,
        replacement=replacement,
        warmup=warmup,
        bus_model=bus_model,
        filter_writes=filter_writes,
        config=runner_config,
        miss_path=miss_path,
        sample=sample,
    )
    return points


def geometry_grid(
    net_sizes: Sequence[int],
    block_sizes: Sequence[int] = (2, 4, 8, 16, 32, 64),
    sub_block_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    associativity: int = 4,
    min_sub: int = 2,
    max_block_fraction: int = 4,
) -> List[CacheGeometry]:
    """Build the paper's geometry grid (Table 1 parameter ranges).

    Includes every (net, block, sub) with ``sub <= block``,
    ``sub >= min_sub``, and ``block <= net / max_block_fraction`` (the
    paper never simulates blocks larger than a quarter of the cache).

    Args:
        net_sizes: Net cache sizes in bytes.
        block_sizes / sub_block_sizes: Candidate values (Table 1 lists
            blocks 2–64 and sub-blocks 2–32).
        associativity: Requested associativity (clamped per geometry).
        min_sub: Smallest sub-block; use the word size so 32-bit
            architectures skip 2-byte sub-blocks, as Table 7 does.
        max_block_fraction: Excludes blocks bigger than
            ``net / max_block_fraction``.
    """
    grid = []
    for net in net_sizes:
        for block in block_sizes:
            if block > net // max_block_fraction:
                continue
            for sub in sub_block_sizes:
                if sub > block or sub < min_sub:
                    continue
                grid.append(
                    CacheGeometry(net, block, sub, associativity=associativity)
                )
    return grid
