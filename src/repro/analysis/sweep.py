"""Parameter sweeps over cache geometries and trace suites.

The paper's core experiment: simulate every (net size, block size,
sub-block size) combination over a suite of traces and report the
*unweighted average* of per-trace miss and traffic ratios ("multiple-
trace miss and traffic ratios are the unweighted average of the miss
and traffic ratios of individual runs", Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy, make_fetch
from repro.core.replacement import make_replacement
from repro.core.sim import run_config
from repro.memory.nibble import BusCostModel, NIBBLE_MODE_BUS
from repro.trace.record import Trace
from repro.trace.filters import reads_only

__all__ = ["SweepPoint", "sweep", "geometry_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """Averaged results for one geometry over a suite.

    Attributes:
        geometry: The simulated cache shape.
        miss_ratio / traffic_ratio: Unweighted suite averages.
        scaled_traffic_ratio: Suite-average scaled (nibble-mode)
            traffic ratio.
        per_trace: ``{trace name: (miss, traffic, scaled traffic)}``.
        fetch_name: Fetch policy used (``demand`` / ``load-forward``).
    """

    geometry: CacheGeometry
    miss_ratio: float
    traffic_ratio: float
    scaled_traffic_ratio: float
    per_trace: Dict[str, tuple] = field(default_factory=dict, compare=False)
    fetch_name: str = "demand"

    @property
    def gross_size(self) -> float:
        return self.geometry.gross_size

    @property
    def label(self) -> str:
        return self.geometry.label


def sweep(
    traces: Sequence[Trace],
    geometries: Sequence[CacheGeometry],
    word_size: int = 2,
    fetch: Union[str, FetchPolicy, None] = None,
    replacement: str = "lru",
    warmup: Union[int, str] = "fill",
    bus_model: BusCostModel = NIBBLE_MODE_BUS,
    filter_writes: bool = True,
) -> List[SweepPoint]:
    """Simulate each geometry over each trace and average the ratios.

    Args:
        traces: Suite traces (already generated).
        geometries: Cache shapes to evaluate.
        word_size: Data-path width of the traced architecture.
        fetch: Fetch policy (name or instance); demand when None.
        replacement: Replacement policy name (fresh instance per run).
        warmup: Warm-start mode forwarded to the simulator.
        bus_model: Cost model used for the scaled traffic ratio.
        filter_writes: Apply the paper's read-only filtering first.

    Returns:
        One :class:`SweepPoint` per geometry, in input order.
    """
    prepared = [reads_only(trace) if filter_writes else trace for trace in traces]
    points = []
    for geometry in geometries:
        per_trace: Dict[str, tuple] = {}
        miss_sum = traffic_sum = scaled_sum = 0.0
        for trace in prepared:
            fetch_policy = (
                make_fetch(fetch) if isinstance(fetch, str)
                else fetch if fetch is not None
                else None
            )
            stats = run_config(
                geometry,
                trace,
                replacement=make_replacement(replacement),
                fetch=fetch_policy,
                word_size=word_size,
                warmup=warmup,
            )
            miss = stats.miss_ratio
            traffic = stats.traffic_ratio()
            scaled = stats.scaled_traffic_ratio(bus_model, word_size)
            per_trace[trace.name] = (miss, traffic, scaled)
            miss_sum += miss
            traffic_sum += traffic
            scaled_sum += scaled
        count = max(len(prepared), 1)
        fetch_name = (
            fetch if isinstance(fetch, str)
            else fetch.name if fetch is not None
            else "demand"
        )
        points.append(
            SweepPoint(
                geometry=geometry,
                miss_ratio=miss_sum / count,
                traffic_ratio=traffic_sum / count,
                scaled_traffic_ratio=scaled_sum / count,
                per_trace=per_trace,
                fetch_name=fetch_name,
            )
        )
    return points


def geometry_grid(
    net_sizes: Sequence[int],
    block_sizes: Sequence[int] = (2, 4, 8, 16, 32, 64),
    sub_block_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    associativity: int = 4,
    min_sub: int = 2,
    max_block_fraction: int = 4,
) -> List[CacheGeometry]:
    """Build the paper's geometry grid (Table 1 parameter ranges).

    Includes every (net, block, sub) with ``sub <= block``,
    ``sub >= min_sub``, and ``block <= net / max_block_fraction`` (the
    paper never simulates blocks larger than a quarter of the cache).

    Args:
        net_sizes: Net cache sizes in bytes.
        block_sizes / sub_block_sizes: Candidate values (Table 1 lists
            blocks 2–64 and sub-blocks 2–32).
        associativity: Requested associativity (clamped per geometry).
        min_sub: Smallest sub-block; use the word size so 32-bit
            architectures skip 2-byte sub-blocks, as Table 7 does.
        max_block_fraction: Excludes blocks bigger than
            ``net / max_block_fraction``.
    """
    grid = []
    for net in net_sizes:
        for block in block_sizes:
            if block > net // max_block_fraction:
                continue
            for sub in sub_block_sizes:
                if sub > block or sub < min_sub:
                    continue
                grid.append(
                    CacheGeometry(net, block, sub, associativity=associativity)
                )
    return grid
