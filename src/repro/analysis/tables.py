"""Text rendering of the paper's tables.

These functions format experiment results in the layout of the paper's
Tables 6, 7 and 8, optionally alongside the published values, so a
reproduction run prints something directly comparable to the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.experiments import Table6Row, Table8Row
from repro.analysis.paper_data import TABLE6, TABLE7, TABLE8, PaperPoint
from repro.analysis.sweep import SweepPoint

__all__ = ["format_table6", "format_table7", "format_table8"]


def _fmt(value: Optional[float], width: int = 7, digits: int = 4) -> str:
    if value is None:
        return " " * width
    return f"{value:{width}.{digits}f}"


def format_table6(rows: Sequence[Table6Row], include_paper: bool = True) -> str:
    """Render the 360/85 comparison (Table 6)."""
    lines = [
        "Table 6: 16 KiB caches on the 360/85 workload",
        f"{'organization':>12s} {'miss':>8s} {'rel':>6s} {'util':>6s}"
        + ("   | paper miss / rel" if include_paper else ""),
    ]
    for row in rows:
        line = (
            f"{row.organization:>12s} {row.miss_ratio:8.4f} "
            f"{row.relative_to_sector:6.3f} {row.sub_block_utilization:6.3f}"
        )
        if include_paper and row.organization in TABLE6:
            miss, rel = TABLE6[row.organization]
            line += f"   | {miss:.4f} / {rel:.3f}"
        lines.append(line)
    return "\n".join(lines)


def format_table7(
    arch: str, points: Sequence[SweepPoint], include_paper: bool = True
) -> str:
    """Render one architecture's Table 7 column.

    Columns: gross size, block,sub label, then measured miss, traffic,
    and nibble-scaled traffic ratios — with the published triple
    alongside where the paper has one.
    """
    header = (
        f"{'net':>5s} {'gross':>6s} {'b,s':>6s} "
        f"{'miss':>7s} {'traffic':>8s} {'nibble':>7s}"
    )
    if include_paper:
        header += f"   | {'paper miss':>10s} {'traffic':>8s}"
    lines = [f"Table 7 ({arch})", header]
    published = TABLE7.get(arch, {})
    for point in points:
        geometry = point.geometry
        line = (
            f"{geometry.net_size:>5d} {geometry.gross_size:>6.0f} "
            f"{geometry.label:>6s} {point.miss_ratio:7.4f} "
            f"{point.traffic_ratio:8.4f} {point.scaled_traffic_ratio:7.4f}"
        )
        if include_paper:
            key = (geometry.net_size, geometry.block_size, geometry.sub_block_size)
            paper: Optional[PaperPoint] = published.get(key)
            if paper is not None:
                line += f"   | {paper.miss_ratio:10.4f} {paper.traffic_ratio:8.4f}"
        lines.append(line)
    return "\n".join(lines)


def format_table8(rows: Sequence[Table8Row], include_paper: bool = True) -> str:
    """Render the load-forward comparison (Table 8)."""
    header = (
        f"{'net':>5s} {'gross':>6s} {'config':>9s} "
        f"{'miss':>7s} {'traffic':>8s} {'nibble':>7s} {'redund':>7s}"
    )
    if include_paper:
        header += f"   | {'paper miss':>10s} {'traffic':>8s}"
    lines = ["Table 8: load-forward on Z8000 CPP/C1/C2", header]
    for row in rows:
        geometry = row.geometry
        line = (
            f"{geometry.net_size:>5d} {geometry.gross_size:>6.0f} "
            f"{row.label:>9s} {row.miss_ratio:7.4f} "
            f"{row.traffic_ratio:8.4f} {row.scaled_traffic_ratio:7.4f} "
            f"{row.redundant_fraction:7.4f}"
        )
        if include_paper:
            key = (
                geometry.net_size,
                geometry.block_size,
                geometry.sub_block_size,
                row.load_forward,
            )
            paper = TABLE8.get(key)
            if paper is not None:
                line += f"   | {paper.miss_ratio:10.4f} {paper.traffic_ratio:8.4f}"
        lines.append(line)
    return "\n".join(lines)
