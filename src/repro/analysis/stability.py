"""Measurement-stability analysis (reproduction hygiene).

The paper runs 1 M-reference traces; this library defaults to shorter
ones.  :func:`length_sensitivity` quantifies what that costs: it
re-simulates a configuration at a ladder of trace lengths and reports
how the metrics converge, so EXPERIMENTS.md claims like "shapes are
stable across lengths" are backed by data rather than hope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.config import CacheGeometry
from repro.core.sim import run_config
from repro.errors import ConfigurationError
from repro.trace.filters import reads_only
from repro.trace.record import Trace

__all__ = ["StabilityPoint", "length_sensitivity", "max_relative_drift"]


@dataclass(frozen=True)
class StabilityPoint:
    """Metrics measured at one trace length."""

    length: int
    miss_ratio: float
    traffic_ratio: float


def length_sensitivity(
    build_trace: Callable[[int], Trace],
    geometry: CacheGeometry,
    lengths: Sequence[int],
    word_size: int = 2,
) -> List[StabilityPoint]:
    """Measure one configuration at several trace lengths.

    Args:
        build_trace: Callback producing a trace of a requested length
            (e.g. ``lambda n: suite_trace("pdp11", "ED", length=n)``).
        geometry: Cache configuration to evaluate.
        lengths: Trace lengths, in increasing order.
        word_size: Data-path width.

    Raises:
        ConfigurationError: If ``lengths`` is empty or unsorted.
    """
    if not lengths:
        raise ConfigurationError("at least one length is required")
    if list(lengths) != sorted(lengths):
        raise ConfigurationError("lengths must be increasing")
    points = []
    for length in lengths:
        trace = reads_only(build_trace(length))
        stats = run_config(geometry, trace, word_size=word_size)
        points.append(
            StabilityPoint(
                length=length,
                miss_ratio=stats.miss_ratio,
                traffic_ratio=stats.traffic_ratio(),
            )
        )
    return points


def max_relative_drift(points: Sequence[StabilityPoint]) -> float:
    """Largest relative change in miss ratio between adjacent lengths.

    A value of 0.10 means no doubling of trace length moved the miss
    ratio by more than 10% — the convergence criterion used by the
    stability benchmark.
    """
    drift = 0.0
    for previous, current in zip(points, points[1:]):
        if previous.miss_ratio > 0:
            drift = max(
                drift,
                abs(current.miss_ratio - previous.miss_ratio) / previous.miss_ratio,
            )
    return drift
