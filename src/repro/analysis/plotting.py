"""ASCII rendering of miss-versus-traffic figures.

A dependency-free stand-in for the paper's plots: a log-log character
grid with one marker per cache configuration, suitable for terminals,
logs, and EXPERIMENTS.md.  Markers cycle per series; a legend maps them
back to the paper's ``b``/``s`` labels.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.analysis.figures import FigureSeries
from repro.errors import ConfigurationError

__all__ = ["ascii_figure"]

_MARKERS = "ox+*#@%&$abcdefghijklm"


def ascii_figure(
    series: Sequence[FigureSeries],
    width: int = 72,
    height: int = 24,
    title: str = "",
    x_label: str = "traffic ratio",
    y_label: str = "miss ratio",
) -> str:
    """Render figure series as a log-log ASCII scatter plot.

    Args:
        series: Lines to plot (see
            :func:`repro.analysis.figures.figure_series`).
        width / height: Plot area in characters.
        title: Optional heading.
        x_label / y_label: Axis captions.

    Returns:
        The plot as a multi-line string (empty-series input yields a
        short placeholder).
    """
    if width < 10 or height < 5:
        raise ConfigurationError("plot area must be at least 10x5 characters")
    points = [
        (x, y)
        for line in series
        for (x, y) in line.points
        if x > 0 and y > 0
    ]
    if not points:
        return f"{title}\n(no positive data points)"

    xs = [math.log10(x) for x, _ in points]
    ys = [math.log10(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((math.log10(x) - x_lo) / x_span * (width - 1))
        row = round((y_hi - math.log10(y)) / y_span * (height - 1))
        grid[row][col] = marker

    legend: List[str] = []
    for index, line in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        kind = "solid" if line.solid else "dashed"
        legend.append(f"  {marker} {line.label} (net {line.net_size}, {kind})")
        for x, y in line.points:
            if x > 0 and y > 0:
                place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (log) {10 ** y_hi:.3f}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f"{10 ** x_lo:.3f}  {x_label} (log)  {10 ** x_hi:.3f}   "
        f"(y min {10 ** y_lo:.3f})"
    )
    lines.extend(legend)
    return "\n".join(lines)
