"""Mattson stack-distance analysis (single-pass all-sizes LRU).

The paper chooses LRU partly because "LRU permits more efficient
simulation" [Mattson et al. 1970]: one pass over a trace yields the
miss ratio of *every* fully-associative LRU cache size at once, via the
stack-distance histogram.  The distance machinery itself now lives in
the grid-level subsystem (:mod:`repro.stackdist`), which generalizes it
to set-associative geometries and sub-block traffic; this module keeps
the original fully-associative analysis API as thin wrappers over
:func:`repro.stackdist.engine.distance_histogram` (``num_sets=1``).
Cold first touches are consistently reported under the ``-1`` bucket,
the same convention the per-set implementation uses.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.stackdist.engine import distance_histogram
from repro.trace.record import Trace

__all__ = [
    "stack_distance_histogram",
    "miss_ratio_curve",
    "success_function",
]


def stack_distance_histogram(trace: Trace, block_size: int) -> Dict[int, int]:
    """LRU stack-distance histogram of a trace at block granularity.

    The distance of a reference is the number of *distinct* blocks
    referenced since the last touch of its block (1 = immediate reuse).
    Cold first touches are recorded under distance ``-1``.

    Back-compat wrapper over
    :func:`repro.stackdist.engine.distance_histogram` with a single
    set (fully associative).

    Args:
        trace: Input trace (all access kinds are included; filter
            first if needed).
        block_size: Block granularity in bytes (power of two).

    Returns:
        Mapping distance -> count, with ``-1`` for cold misses.
    """
    return distance_histogram(trace, block_size, num_sets=1)


def miss_ratio_curve(
    trace: Trace, block_size: int, sizes: Sequence[int]
) -> Dict[int, float]:
    """Miss ratio of every fully-associative LRU size, in one pass.

    Args:
        trace: Input trace.
        block_size: Block size in bytes (equal to the sub-block size —
            this is the conventional-cache special case).
        sizes: Net cache sizes in bytes; each must be a multiple of
            ``block_size``.

    Returns:
        Mapping net size -> cold-start miss ratio.
    """
    histogram = stack_distance_histogram(trace, block_size)
    total = sum(histogram.values())
    if total == 0:
        return {size: 0.0 for size in sizes}
    curve = {}
    for size in sizes:
        if size % block_size:
            raise ConfigurationError(
                f"size {size} is not a multiple of block_size {block_size}"
            )
        capacity = size // block_size
        # Cold misses sit in the -1 bucket, never a hit at any size.
        hits = sum(
            count
            for distance, count in histogram.items()
            if 0 <= distance <= capacity
        )
        curve[size] = 1.0 - hits / total
    return curve


def success_function(trace: Trace, block_size: int) -> List[float]:
    """Cumulative hit ratio by stack depth (Mattson's success function).

    Element ``i`` is the hit ratio of a fully-associative LRU cache of
    ``i + 1`` blocks.  The list is as long as the deepest reuse seen.
    """
    histogram = stack_distance_histogram(trace, block_size)
    total = sum(histogram.values())
    if total == 0:
        return []
    depth = max((d for d in histogram if d > 0), default=0)
    cumulative = []
    running = 0
    for distance in range(1, depth + 1):
        running += histogram.get(distance, 0)
        cumulative.append(running / total)
    return cumulative
