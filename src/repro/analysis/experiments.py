"""Turn-key reproductions of the paper's experiments.

Each function regenerates the data behind one table or figure:

* :func:`table6_experiment` — the 360/85 sector cache versus modern
  set-associative mappings (Section 4.1).
* :func:`table7_experiment` — the big miss/traffic/nibble-traffic table
  for one architecture (Section 4.2), simulating exactly the
  (net, block, sub) combinations the paper publishes.
* :func:`table8_experiment` — load-forward on the Z8000 compiler traces
  (Section 4.4).
* :func:`figure_experiment` — the full geometry grid behind Figures
  1–8 for one architecture and a list of net sizes.

Trace length defaults to :func:`default_trace_length`, which honours
the ``REPRO_TRACE_LEN`` environment variable (the paper used 1 M
references; the default here is 100 k so a full reproduction finishes
in minutes on a laptop — see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.paper_data import TABLE7, TABLE8
from repro.analysis.sweep import SweepPoint, geometry_grid, sweep
from repro.core.config import CacheGeometry
from repro.core.fetch import LoadForwardFetch
from repro.core.sector import model85_cache, set_associative_equivalent
from repro.core.sim import simulate
from repro.errors import ConfigurationError
from repro.runner.runner import RunnerConfig
from repro.trace.filters import reads_only
from repro.workloads.architectures import get_architecture
from repro.workloads.suites import (
    Z8000_FIGURE_TRACES,
    Z8000_LOADFORWARD_TRACES,
    suite_traces,
)

__all__ = [
    "default_trace_length",
    "Table6Row",
    "table6_experiment",
    "table7_experiment",
    "table8_experiment",
    "figure_experiment",
    "FIGURE_NETS",
]

#: Net sizes of the two figure families (Figures 1/3/7 and 2/4/5/6/8).
FIGURE_NETS = {"part1": (32, 128, 512), "part2": (64, 256, 1024)}


def default_trace_length() -> int:
    """Trace length for experiments (env ``REPRO_TRACE_LEN``)."""
    value = os.environ.get("REPRO_TRACE_LEN", "")
    if value:
        try:
            parsed = int(value)
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_TRACE_LEN must be an integer, got {value!r}"
            ) from exc
        if parsed < 1:
            raise ConfigurationError(
                f"REPRO_TRACE_LEN must be >= 1, got {parsed}"
            )
        return parsed
    return 100_000


def _experiment_traces(arch: str, length: Optional[int]):
    """Suite traces for one architecture's experiments."""
    length = length if length is not None else default_trace_length()
    names = Z8000_FIGURE_TRACES if arch == "z8000" else None
    return suite_traces(arch, length=length, names=names)


@dataclass(frozen=True)
class Table6Row:
    """One organization of the Table 6 comparison."""

    organization: str
    miss_ratio: float
    relative_to_sector: float
    sub_block_utilization: float


def table6_experiment(length: Optional[int] = None) -> List[Table6Row]:
    """Reproduce Table 6: the 360/85 versus set-associative mapping.

    Returns rows for the sector cache and 4/8/16-way equivalents, with
    miss ratios averaged (unweighted) over the mainframe suite, plus
    the sub-block utilization statistic behind the paper's "72 percent
    of the sub-blocks ... are never referenced" finding.
    """
    length = length if length is not None else default_trace_length()
    traces = [reads_only(t) for t in suite_traces("mainframe", length=length)]
    organizations = [
        ("360/85", model85_cache),
        ("4-way", lambda: set_associative_equivalent(4)),
        ("8-way", lambda: set_associative_equivalent(8)),
        ("16-way", lambda: set_associative_equivalent(16)),
    ]
    raw = []
    for label, factory in organizations:
        miss_sum = util_sum = 0.0
        for trace in traces:
            stats = simulate(
                factory(), trace, warmup="fill", flush_at_end=True
            )
            miss_sum += stats.miss_ratio
            util_sum += stats.mean_eviction_utilization
        raw.append((label, miss_sum / len(traces), util_sum / len(traces)))
    sector_miss = raw[0][1]
    return [
        Table6Row(label, miss, miss / sector_miss if sector_miss else 0.0, util)
        for label, miss, util in raw
    ]


def table7_experiment(
    arch: str,
    length: Optional[int] = None,
    runner: Optional[RunnerConfig] = None,
    sample=None,
) -> List[SweepPoint]:
    """Reproduce one architecture's column of Table 7.

    Simulates exactly the (net, block, sub) combinations the paper
    publishes for that architecture, over its suite, with the paper's
    methodology (4-way, LRU, demand, warm start, reads only).

    Args:
        arch: One of the Table 7 architectures.
        length: Trace length; :func:`default_trace_length` when None.
        runner: Resilience knobs forwarded to the sweep (checkpoints,
            retries, timeouts, lenient degradation).
        sample: Optional ``--sample`` config — the table's ratios
            become sampled estimates (docs/sampling.md).
    """
    if arch not in TABLE7:
        raise ConfigurationError(
            f"unknown Table 7 architecture {arch!r}; choose from {sorted(TABLE7)}"
        )
    word = get_architecture(arch).word_size
    geometries = [
        CacheGeometry(net, block, sub)
        for (net, block, sub) in sorted(TABLE7[arch])
    ]
    return sweep(
        _experiment_traces(arch, length), geometries, word_size=word,
        runner_config=runner, sample=sample,
    )


@dataclass(frozen=True)
class Table8Row:
    """One configuration of the load-forward comparison."""

    geometry: CacheGeometry
    load_forward: bool
    miss_ratio: float
    traffic_ratio: float
    scaled_traffic_ratio: float
    redundant_fraction: float

    @property
    def label(self) -> str:
        suffix = ",LF" if self.load_forward else ""
        return f"{self.geometry.label}{suffix}"


def table8_experiment(
    length: Optional[int] = None,
    runner: Optional[RunnerConfig] = None,
    sample=None,
) -> List[Table8Row]:
    """Reproduce Table 8: load-forward on Z8000 traces CPP, C1, C2.

    With a checkpointed ``runner``, each table row gets its own
    checkpoint file (``.row<N>`` suffix) since the rows are separate
    sweeps with separate fingerprints.
    """
    length = length if length is not None else default_trace_length()
    traces = suite_traces(
        "z8000", length=length, names=Z8000_LOADFORWARD_TRACES
    )
    rows = []
    for index, (net, block, sub, load_forward) in enumerate(sorted(TABLE8)):
        geometry = CacheGeometry(net, block, sub)
        fetch = LoadForwardFetch() if load_forward else None
        row_runner = runner.for_tag(f"row{index}") if runner is not None else None
        points = sweep(
            [*traces], [geometry], word_size=2, fetch=fetch,
            runner_config=row_runner, sample=sample,
        )
        point = points[0]
        engine_name = runner.engine if runner is not None else "auto"
        redundant = _redundant_fraction(
            traces, geometry, load_forward, engine_name
        )
        rows.append(
            Table8Row(
                geometry=geometry,
                load_forward=load_forward,
                miss_ratio=point.miss_ratio,
                traffic_ratio=point.traffic_ratio,
                scaled_traffic_ratio=point.scaled_traffic_ratio,
                redundant_fraction=redundant,
            )
        )
    return rows


def _redundant_fraction(
    traces, geometry, load_forward: bool, engine_name: str = "auto"
) -> float:
    """Fraction of fetched bytes that were redundant re-loads."""
    if not load_forward:
        return 0.0
    from repro.engine import TraceView, resolve_engine

    total_fetched = total_redundant = 0
    for trace in traces:
        # The interned view shares one read-filtered copy (and the
        # decode arrays) with the sweep that just ran over this trace.
        filtered = TraceView.of(trace).reads_only()
        stats = resolve_engine(engine_name, filtered).run(
            geometry, filtered, fetch=LoadForwardFetch(), word_size=2,
            warmup="fill",
        )
        total_fetched += stats.bytes_fetched
        total_redundant += stats.redundant_bytes_fetched
    return total_redundant / total_fetched if total_fetched else 0.0


def figure_experiment(
    arch: str,
    net_sizes: Sequence[int],
    length: Optional[int] = None,
    runner: Optional[RunnerConfig] = None,
    sample=None,
) -> Dict[int, List[SweepPoint]]:
    """Sweep the full geometry grid behind Figures 1–8.

    Returns ``{net size: [SweepPoint, ...]}`` over the architecture's
    suite, for every (block, sub) pair of the paper's parameter ranges
    at each net size.  With a checkpointed ``runner``, each net size
    gets its own checkpoint file (``.net<N>`` suffix).
    """
    word = get_architecture(arch).word_size
    traces = _experiment_traces(arch, length)
    results: Dict[int, List[SweepPoint]] = {}
    for net in net_sizes:
        geometries = geometry_grid([net], min_sub=word)
        net_runner = runner.for_tag(f"net{net}") if runner is not None else None
        results[net] = sweep(
            traces, geometries, word_size=word, runner_config=net_runner,
            sample=sample,
        )
    return results
