"""Design-space exploration: the paper's Section 5 methodology.

The conclusions section reasons in terms of *design goals*: "a more
aggressive goal for an on-chip cache is to reduce references by a
factor of ten (miss ratio 0.10) and bus traffic by a factor of five
(traffic ratio 0.20)", then names the cheapest configuration achieving
it per architecture.  :func:`find_minimum_design` automates that
search: sweep a geometry grid and return the qualifying configuration
with the smallest gross size (the paper's cost metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.sweep import SweepPoint, geometry_grid, sweep
from repro.errors import ConfigurationError
from repro.trace.record import Trace

__all__ = ["DesignGoal", "DesignSearch", "find_minimum_design"]


@dataclass(frozen=True)
class DesignGoal:
    """Performance targets a design must meet.

    Attributes:
        max_miss_ratio: Upper bound on the suite-average miss ratio.
        max_traffic_ratio: Upper bound on the suite-average traffic
            ratio (the standard, linear-bus one).
    """

    max_miss_ratio: float = 0.10
    max_traffic_ratio: float = 0.20

    def __post_init__(self) -> None:
        if not 0 < self.max_miss_ratio <= 1:
            raise ConfigurationError(
                f"max_miss_ratio must be in (0, 1], got {self.max_miss_ratio}"
            )
        if self.max_traffic_ratio <= 0:
            raise ConfigurationError(
                f"max_traffic_ratio must be positive, got {self.max_traffic_ratio}"
            )

    def met_by(self, point: SweepPoint) -> bool:
        """True if a sweep point satisfies both bounds."""
        return (
            point.miss_ratio <= self.max_miss_ratio
            and point.traffic_ratio <= self.max_traffic_ratio
        )


@dataclass(frozen=True)
class DesignSearch:
    """Result of a design-space search.

    Attributes:
        best: Qualifying point with the smallest gross size, or None
            if no configuration meets the goal.
        qualifying: Every qualifying point, cheapest first.
        evaluated: Number of configurations simulated.
    """

    best: Optional[SweepPoint]
    qualifying: List[SweepPoint]
    evaluated: int


def find_minimum_design(
    traces: Sequence[Trace],
    goal: DesignGoal,
    word_size: int = 2,
    net_sizes: Sequence[int] = (64, 128, 256, 512, 1024, 2048),
) -> DesignSearch:
    """Find the cheapest cache meeting a design goal on a suite.

    Args:
        traces: Suite traces (write filtering is applied, as in every
            paper experiment).
        goal: Miss/traffic bounds to satisfy.
        word_size: Data-path width of the architecture.
        net_sizes: Net sizes to explore (the grid uses the paper's
            block/sub-block ranges at each).

    Returns:
        A :class:`DesignSearch`; ``best`` is None when the goal is out
        of reach on this workload (as the paper found for the
        System/370 at on-chip sizes).
    """
    geometries = geometry_grid(list(net_sizes), min_sub=word_size)
    points = sweep(traces, geometries, word_size=word_size)
    qualifying = sorted(
        (point for point in points if goal.met_by(point)),
        key=lambda point: (point.gross_size, point.miss_ratio),
    )
    return DesignSearch(
        best=qualifying[0] if qualifying else None,
        qualifying=qualifying,
        evaluated=len(points),
    )
