"""Paper-versus-measured comparison reports.

Absolute agreement with the 1984 numbers is not expected — the traces
are synthetic stand-ins — so these reports quantify *shape* agreement
instead:

* **rank correlation** (Spearman) between measured and published
  values over the shared configurations: do the same designs win?
* **direction checks**: for every pair of configurations, do measured
  and published values order the same way?
* **magnitude**: geometric mean and spread of the measured/published
  ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable

from scipy import stats as scipy_stats

__all__ = ["ShapeReport", "compare_shapes"]


@dataclass(frozen=True)
class ShapeReport:
    """Agreement statistics between measured and published series.

    Attributes:
        n: Number of shared configurations compared.
        spearman: Spearman rank correlation (1.0 = identical ordering).
        pair_agreement: Fraction of configuration pairs ordered the
            same way by both series (ties ignored).
        geometric_mean_ratio: Geometric mean of measured/published.
        max_ratio / min_ratio: Extremes of that ratio.
    """

    n: int
    spearman: float
    pair_agreement: float
    geometric_mean_ratio: float
    min_ratio: float
    max_ratio: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"n={self.n} spearman={self.spearman:.3f} "
            f"pairs={self.pair_agreement:.1%} "
            f"gm-ratio={self.geometric_mean_ratio:.2f} "
            f"[{self.min_ratio:.2f}, {self.max_ratio:.2f}]"
        )


def compare_shapes(
    measured: Dict[Hashable, float], published: Dict[Hashable, float]
) -> ShapeReport:
    """Compare two value series over their shared keys.

    Args:
        measured: Configuration -> measured value (e.g. miss ratio).
        published: Configuration -> the paper's value.

    Returns:
        A :class:`ShapeReport`; with fewer than two shared keys the
        correlation fields are reported as 1.0 (trivially ordered).
    """
    keys = sorted(set(measured) & set(published), key=repr)
    ours = [measured[key] for key in keys]
    paper = [published[key] for key in keys]
    n = len(keys)
    if n == 0:
        return ShapeReport(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    ratios = [
        mine / theirs if theirs else float("inf")
        for mine, theirs in zip(ours, paper)
    ]
    finite = [r for r in ratios if 0 < r < float("inf")]
    if finite:
        gm = math.exp(sum(math.log(r) for r in finite) / len(finite))
        lo, hi = min(finite), max(finite)
    else:
        gm = lo = hi = 0.0

    if n < 2:
        return ShapeReport(n, 1.0, 1.0, gm, lo, hi)

    if len(set(ours)) < 2 or len(set(paper)) < 2:
        rho = 1.0  # a constant series is trivially order-compatible
    else:
        rho = float(scipy_stats.spearmanr(ours, paper).statistic)
        if math.isnan(rho):
            rho = 1.0

    agree = total = 0
    for i in range(n):
        for j in range(i + 1, n):
            d_ours = ours[i] - ours[j]
            d_paper = paper[i] - paper[j]
            if d_ours == 0 or d_paper == 0:
                continue
            total += 1
            if (d_ours > 0) == (d_paper > 0):
                agree += 1
    pair_agreement = agree / total if total else 1.0
    return ShapeReport(n, rho, pair_agreement, gm, lo, hi)
