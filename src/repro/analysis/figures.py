"""Series construction for the paper's figures.

Every figure in the paper plots miss ratio against traffic ratio, with
*solid* lines connecting caches of constant block size (varying
sub-block size) and *dashed* lines connecting caches of constant
sub-block size (varying block size), one family per net cache size.
:func:`figure_series` reorganizes sweep results into exactly those
series; :mod:`repro.analysis.plotting` renders them as ASCII plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.sweep import SweepPoint

__all__ = ["FigureSeries", "figure_series", "series_to_csv"]


@dataclass(frozen=True)
class FigureSeries:
    """One line of a miss-vs-traffic figure.

    Attributes:
        label: The paper's label style — ``b16`` for a constant-block
            (solid) line, ``s4`` for a constant-sub-block (dashed) one.
        net_size: Net cache size of the family this line belongs to.
        solid: True for constant-block lines.
        points: ``(traffic ratio, miss ratio)`` pairs, ordered along
            the varying parameter.
    """

    label: str
    net_size: int
    solid: bool
    points: Tuple[Tuple[float, float], ...]


def figure_series(
    results: Dict[int, List[SweepPoint]],
    use_scaled_traffic: bool = False,
) -> List[FigureSeries]:
    """Build the constant-b and constant-s lines of a figure.

    Args:
        results: ``{net size: sweep points}`` as returned by
            :func:`repro.analysis.experiments.figure_experiment`.
        use_scaled_traffic: Plot the nibble-mode scaled traffic ratio
            instead of the standard one (Figures 7 and 8).

    Returns:
        All series of the figure, constant-block lines first.
    """
    series: List[FigureSeries] = []
    for net, points in sorted(results.items()):
        def traffic(point: SweepPoint) -> float:
            return (
                point.scaled_traffic_ratio
                if use_scaled_traffic
                else point.traffic_ratio
            )

        by_block: Dict[int, List[SweepPoint]] = {}
        by_sub: Dict[int, List[SweepPoint]] = {}
        for point in points:
            by_block.setdefault(point.geometry.block_size, []).append(point)
            by_sub.setdefault(point.geometry.sub_block_size, []).append(point)
        for block, group in sorted(by_block.items()):
            if len(group) < 2:
                continue
            group = sorted(group, key=lambda p: p.geometry.sub_block_size)
            series.append(
                FigureSeries(
                    label=f"b{block}",
                    net_size=net,
                    solid=True,
                    points=tuple((traffic(p), p.miss_ratio) for p in group),
                )
            )
        for sub, group in sorted(by_sub.items()):
            if len(group) < 2:
                continue
            group = sorted(group, key=lambda p: p.geometry.block_size)
            series.append(
                FigureSeries(
                    label=f"s{sub}",
                    net_size=net,
                    solid=False,
                    points=tuple((traffic(p), p.miss_ratio) for p in group),
                )
            )
    return series


def series_to_csv(series: Sequence[FigureSeries]) -> str:
    """Render figure series as CSV for external plotting tools.

    Columns: net size, series label, solid flag, traffic ratio, miss
    ratio — one row per point, ordered as plotted.
    """
    lines = ["net_size,series,solid,traffic_ratio,miss_ratio"]
    for line in series:
        for traffic, miss in line.points:
            lines.append(
                f"{line.net_size},{line.label},{int(line.solid)},"
                f"{traffic:.6f},{miss:.6f}"
            )
    return "\n".join(lines) + "\n"
