"""Analysis layer: sweeps, experiments, figures, tables, comparisons."""

from repro.analysis.design import DesignGoal, DesignSearch, find_minimum_design
from repro.analysis.experiments import (
    FIGURE_NETS,
    Table6Row,
    Table8Row,
    default_trace_length,
    figure_experiment,
    table6_experiment,
    table7_experiment,
    table8_experiment,
)
from repro.analysis.figures import FigureSeries, figure_series, series_to_csv
from repro.analysis.paper_data import (
    RISCII_MISS_RATIOS,
    RISCII_REMOTE_PC,
    TABLE6,
    TABLE7,
    TABLE8,
    PaperPoint,
    table7_point,
)
from repro.analysis.plotting import ascii_figure
from repro.analysis.report import ShapeReport, compare_shapes
from repro.analysis.stability import (
    StabilityPoint,
    length_sensitivity,
    max_relative_drift,
)
from repro.analysis.stackdist import (
    miss_ratio_curve,
    stack_distance_histogram,
    success_function,
)
from repro.analysis.sweep import SweepPoint, geometry_grid, sweep
from repro.analysis.tables import format_table6, format_table7, format_table8

__all__ = [
    "DesignGoal",
    "DesignSearch",
    "find_minimum_design",
    "FIGURE_NETS",
    "Table6Row",
    "Table8Row",
    "default_trace_length",
    "figure_experiment",
    "table6_experiment",
    "table7_experiment",
    "table8_experiment",
    "FigureSeries",
    "figure_series",
    "RISCII_MISS_RATIOS",
    "RISCII_REMOTE_PC",
    "TABLE6",
    "TABLE7",
    "TABLE8",
    "PaperPoint",
    "table7_point",
    "ascii_figure",
    "ShapeReport",
    "compare_shapes",
    "StabilityPoint",
    "length_sensitivity",
    "max_relative_drift",
    "series_to_csv",
    "miss_ratio_curve",
    "stack_distance_histogram",
    "success_function",
    "SweepPoint",
    "geometry_grid",
    "sweep",
    "format_table6",
    "format_table7",
    "format_table8",
]
