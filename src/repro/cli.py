"""Command-line interface: regenerate the paper's results from a shell.

Usage (after ``pip install -e .``)::

    python -m repro table6 [--length N]
    python -m repro table7 {pdp11,z8000,vax,s370} [--length N]
    python -m repro table8 [--length N]
    python -m repro figure {1,2,3,4,5,6,7,8} [--length N]
    python -m repro riscii [--length N]
    python -m repro suites
    python -m repro trace SUITE NAME [--length N] [--out FILE.din]
    python -m repro chaos [--quick] [--serve [--out FILE] [--budget S]]
    python -m repro serve [--host H] [--port P] [--supervised]
                          [--store-dir DIR]
    python -m repro lint [--format json] [--strict] [--misspath JSON]
    python -m repro classify PROGRAM [--net N] [--format json] [--verify]
    python -m repro phases PROGRAM [--interval N] [--k N] [--format json]
    python -m repro --version

``--length`` defaults to the ``REPRO_TRACE_LEN`` environment variable
or 100 000 references (the paper used 1 000 000).

The sweep-backed commands (``table7``, ``table8``, ``figure``) accept
resilience flags — ``--checkpoint FILE`` / ``--resume`` to survive
interruption, ``--max-retries`` / ``--cell-timeout`` to bound flaky or
runaway cells, and ``--lenient`` to degrade to partial suite averages
instead of failing; see ``docs/resilience.md``.  They also accept
execution flags — ``--engine {auto,reference,vectorized,checked}`` to
pick the simulation engine, ``--sanitize`` as a shorthand for the
``checked`` (per-access invariant-asserting) engine, ``--jobs N``
to fan cells out over worker processes (see ``docs/engines.md``), and
``--sample INTERVAL[,K]`` for representative-interval sampled
simulation with error bounds (``phases`` previews the plan; see
``docs/sampling.md``).
``chaos`` runs the fault-injection scenarios that prove the resilience
guarantees, under any engine.  ``serve`` starts the interactive HTTP
query service with its result cache, request coalescing, and admission
control; see ``docs/service.md``.  ``lint`` runs the static analyzer
(:mod:`repro.staticcheck`) over every bundled workload program —
CFG/dataflow program checks plus locality footprints — and exits
non-zero on error-severity findings.  ``classify`` runs the must/may
abstract-interpretation cache analysis over one bundled program,
optionally differentially verifying it against the simulator
(``--verify``); see ``docs/staticcheck.md`` for both JSON schemas and
the exit codes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    FIGURE_NETS,
    default_trace_length,
    figure_experiment,
    table6_experiment,
    table7_experiment,
    table8_experiment,
)
from repro.analysis.figures import figure_series, series_to_csv
from repro.analysis.plotting import ascii_figure
from repro.analysis.tables import format_table6, format_table7, format_table8
from repro.engine.base import ENGINE_NAMES
from repro.stackdist.planner import GRID_ENGINE_NAMES
from repro.runner.retry import RetryPolicy
from repro.runner.runner import RunnerConfig
from repro.trace.writer import write_din
from repro.workloads.suites import suite_names, suite_specs, suite_trace

__all__ = ["main"]

#: Figure number -> (architecture, net sizes, scaled-traffic?).
_FIGURES = {
    1: ("pdp11", FIGURE_NETS["part1"], False),
    2: ("pdp11", FIGURE_NETS["part2"], False),
    3: ("z8000", FIGURE_NETS["part1"], False),
    4: ("z8000", FIGURE_NETS["part2"], False),
    5: ("vax", FIGURE_NETS["part2"], False),
    6: ("s370", FIGURE_NETS["part2"], False),
    7: ("pdp11", FIGURE_NETS["part1"], True),
    8: ("pdp11", FIGURE_NETS["part2"], True),
}


def _add_resilience_flags(subparser: argparse.ArgumentParser) -> None:
    """Resilient-runner flags shared by the sweep-backed commands."""
    group = subparser.add_argument_group("resilience")
    group.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="JSONL checkpoint; completed cells survive interruption",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="reuse completed cells from --checkpoint instead of restarting",
    )
    group.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retries per cell for transient failures (default 0)",
    )
    group.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per (geometry, trace) cell",
    )
    group.add_argument(
        "--lenient", action="store_true",
        help="skip failing cells and report partial suite averages",
    )
    execution = subparser.add_argument_group("execution")
    execution.add_argument(
        "--engine", default="auto", choices=list(ENGINE_NAMES),
        help="simulation engine per cell (auto picks vectorized for "
             "plain traces; see docs/engines.md)",
    )
    execution.add_argument(
        "--sanitize", action="store_true",
        help="run every cell under the checked engine (per-access "
             "cache-invariant and conservation-law assertions)",
    )
    execution.add_argument(
        "--grid-engine", default="auto", choices=list(GRID_ENGINE_NAMES),
        help="grid-level strategy: auto answers coverable LRU pass "
             "groups from one stack-distance pass per trace, stackdist "
             "forces it, percell disables it (see docs/stackdist.md)",
    )
    execution.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep cells (default 1 = in-process)",
    )
    execution.add_argument(
        "--sample", default=None, metavar="INTERVAL[,K]",
        help="representative-interval sampled simulation: split each "
             "trace into INTERVAL-access intervals, cluster them into "
             "K phases (default 8), and simulate one representative "
             "per phase — ratios become estimates with error bounds "
             "(see docs/sampling.md)",
    )


def _runner_config(args: argparse.Namespace) -> Optional[RunnerConfig]:
    """Build the resilience config from CLI flags; None when inert."""
    if args.resume and args.checkpoint is None:
        raise SystemExit("repro: --resume requires --checkpoint")
    engine = "checked" if args.sanitize else args.engine
    if (
        args.checkpoint is None
        and args.max_retries == 0
        and args.cell_timeout is None
        and not args.lenient
        and engine == "auto"
        and args.grid_engine == "auto"
        and args.jobs == 1
    ):
        return None
    return RunnerConfig(
        retry=RetryPolicy(max_retries=args.max_retries),
        cell_timeout=args.cell_timeout,
        checkpoint=args.checkpoint,
        resume=args.resume,
        lenient=args.lenient,
        engine=engine,
        grid_engine=args.grid_engine,
        jobs=args.jobs,
    )


def _warn_partial(points) -> None:
    """Name skipped traces on stderr so partial tables are never silent."""
    skipped = {}
    for point in points:
        for name in point.skipped_traces:
            skipped[name] = skipped.get(name, 0) + 1
    for name, cells in sorted(skipped.items()):
        print(
            f"repro: warning: trace {name!r} skipped in {cells} cell(s); "
            "averages above are partial",
            file=sys.stderr,
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Hill & Smith (ISCA 1984) tables and figures.",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--length",
        type=int,
        default=None,
        help="trace length in references (default: REPRO_TRACE_LEN or 100000)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table6", help="360/85 sector cache comparison")
    table7 = commands.add_parser("table7", help="miss/traffic table, one architecture")
    table7.add_argument("arch", choices=["pdp11", "z8000", "vax", "s370"])
    _add_resilience_flags(table7)
    table8 = commands.add_parser("table8", help="load-forward results")
    _add_resilience_flags(table8)
    figure = commands.add_parser("figure", help="one of the paper's figures")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))
    figure.add_argument(
        "--csv", action="store_true", help="emit CSV instead of an ASCII plot"
    )
    _add_resilience_flags(figure)
    chaos = commands.add_parser(
        "chaos",
        help="fault-injection scenarios proving the resilience guarantees",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="smallest credible sweep (the CI smoke configuration)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="fault placement seed")
    chaos.add_argument(
        "--serve", action="store_true",
        help="run the service-level scenarios instead (worker kills, "
             "WAL corruption, slow-loris, drain; see docs/service.md)",
    )
    chaos.add_argument(
        "--out", default=None, metavar="FILE",
        help="with --serve: write the JSON scenario report here",
    )
    chaos.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="with --serve: fail if the run exceeds this wall clock",
    )
    chaos.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="keep scenario checkpoints here (default: temp dir)",
    )
    chaos.add_argument(
        "--engine", default="auto",
        choices=list(ENGINE_NAMES),
        help="simulation engine for the scenario sweeps",
    )
    chaos.add_argument(
        "--sanitize", action="store_true",
        help="run the scenario sweeps under the checked engine",
    )
    serve = commands.add_parser(
        "serve",
        help="HTTP simulation service (result cache, coalescing, metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8787, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="simulation worker threads (default 2)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024, metavar="N",
        help="result-cache memory entries (default 1024)",
    )
    serve.add_argument(
        "--disk-cache", default=None, metavar="FILE",
        help="JSONL disk tier for the result cache (survives restarts)",
    )
    serve.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="crash-safe WAL result store (fsync'd commits, torn-tail "
             "recovery, quarantine); alternative to --disk-cache",
    )
    serve.add_argument(
        "--supervised", action="store_true",
        help="run cells on supervised worker processes (crash isolation, "
             "heartbeats, automatic restarts) instead of threads",
    )
    serve.add_argument(
        "--worker-processes", type=int, default=2, metavar="N",
        help="supervised worker process count (default 2)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=2.0, metavar="SECONDS",
        help="worker silence treated as a hang (default 2.0)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-shutdown budget for in-flight work (default 10)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="simulation cells allowed to run concurrently (default 8)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="queries allowed to wait before 429 (default 64)",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=5, metavar="N",
        help="consecutive failures that open the breaker (0 disables)",
    )
    serve.add_argument(
        "--engine", default=None,
        choices=list(ENGINE_NAMES),
        help="force one engine for every query (default: per-query; "
             "checked opts the whole service into sanitized execution)",
    )
    serve.add_argument(
        "--grid-engine", default="auto", choices=list(GRID_ENGINE_NAMES),
        help="answer batched LRU pass groups from one stack-distance "
             "pass (auto), force it (stackdist), or disable it (percell)",
    )
    serve.add_argument(
        "--allow-sampling", action="store_true",
        help="serve queries carrying a 'sample' axis (representative-"
             "interval estimates, clearly marked exact: false; refused "
             "by default and incompatible with --supervised)",
    )
    serve.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error"],
        help="structured request-log verbosity",
    )
    lint = commands.add_parser(
        "lint",
        help="static analysis of the bundled workload programs",
    )
    lint.add_argument(
        "--format", dest="fmt", default="text", choices=["text", "json"],
        help="report format (json is what the CI gate parses)",
    )
    lint.add_argument(
        "--word", type=int, default=2, choices=[2, 4],
        help="data-path width to assemble for (default 2)",
    )
    lint.add_argument(
        "--programs", nargs="+", default=None, metavar="NAME",
        help="lint only these programs (default: every bundled program)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not just errors",
    )
    lint.add_argument(
        "--misspath", default=None, metavar="JSON",
        help="also lint a miss-path chain config (JSON object with "
             "victim_entries/miss_entries/stream_buffers/l2_* keys; "
             "see docs/misspath.md)",
    )
    lint.add_argument(
        "--sweep-coverage", nargs="+", type=int, default=None, metavar="NET",
        help="also report one-pass (stack-distance) coverage of the "
             "paper's geometry grid at these net sizes — info-level "
             "sweep-stackdist-* rules (see docs/stackdist.md)",
    )
    lint.add_argument(
        "--sample", default=None, metavar="INTERVAL[,K]",
        help="with --sweep-coverage: also report which cells of the "
             "grid a sampled sweep would estimate — info-level "
             "sweep-sample-* rules (see docs/sampling.md)",
    )
    phases = commands.add_parser(
        "phases",
        help="static phase analysis of one bundled program's trace",
    )
    phases.add_argument("program", help="bundled program name (see lint)")
    phases.add_argument("--word", type=int, default=2, choices=[2, 4],
                        help="data-path width to assemble for (default 2)")
    phases.add_argument(
        "--interval", type=int, default=2000, metavar="N",
        help="interval length in accesses (default 2000)",
    )
    phases.add_argument(
        "--k", type=int, default=None, metavar="N",
        help="phase count (default: min(8, interval count))",
    )
    phases.add_argument(
        "--seed", type=int, default=0, help="clustering seed (default 0)"
    )
    phases.add_argument(
        "--format", dest="fmt", default="text", choices=["text", "json"],
        help="report format",
    )
    classify = commands.add_parser(
        "classify",
        help="must/may abstract-interpretation cache analysis of one program",
    )
    classify.add_argument("program", help="bundled program name (see lint)")
    classify.add_argument("--net", type=int, default=1024, help="net size (bytes)")
    classify.add_argument("--block", type=int, default=16, help="block size")
    classify.add_argument("--sub", type=int, default=None, help="sub-block size")
    classify.add_argument("--assoc", type=int, default=4, help="associativity")
    classify.add_argument("--word", type=int, default=2, choices=[2, 4],
                          help="data-path width to assemble for (default 2)")
    classify.add_argument(
        "--fetch",
        default="demand",
        choices=["demand", "load-forward", "load-forward-optimized"],
    )
    classify.add_argument(
        "--stack-words", type=int, default=4096, metavar="N",
        help="machine stack capacity the analysis assumes (default 4096)",
    )
    classify.add_argument(
        "--format", dest="fmt", default="text", choices=["text", "json"],
        help="report format",
    )
    classify.add_argument(
        "--verify", action="store_true",
        help="differentially check the classification against an actual "
             "machine run through the simulator (exit 1 on any violation)",
    )
    classify_chain = classify.add_argument_group(
        "miss path",
        "optional structures between an L1 miss and memory; the "
        "analysis lifts its must/may proofs through the chain and "
        "bounds each structure's counters (see docs/staticcheck.md)",
    )
    classify_chain.add_argument(
        "--victim-entries", type=int, default=0, metavar="N",
        help="fully-associative victim cache entries (holds L1 evictions)",
    )
    classify_chain.add_argument(
        "--miss-entries", type=int, default=0, metavar="N",
        help="tag-only miss cache entries",
    )
    classify_chain.add_argument(
        "--stream-buffers", type=int, default=0, metavar="N",
        help="sequential-prefetch stream buffers",
    )
    classify_chain.add_argument(
        "--stream-depth", type=int, default=4, metavar="N",
        help="prefetch FIFO depth per stream buffer (default 4)",
    )
    classify_chain.add_argument(
        "--l2-net", type=int, default=0, metavar="BYTES",
        help="backing L2 net size (0 = no L2)",
    )
    classify_chain.add_argument(
        "--l2-block", type=int, default=0, metavar="BYTES",
        help="L2 block size (default: the L1 block size)",
    )
    classify_chain.add_argument(
        "--l2-sub", type=int, default=0, metavar="BYTES",
        help="L2 sub-block size (default: the L2 block size)",
    )
    classify_chain.add_argument(
        "--l2-assoc", type=int, default=4, metavar="N",
        help="L2 associativity (default 4)",
    )
    commands.add_parser("riscii", help="RISC II instruction-cache results")
    commands.add_parser("suites", help="list the workload suites and traces")
    trace = commands.add_parser("trace", help="generate one trace")
    trace.add_argument("suite")
    trace.add_argument("name")
    trace.add_argument("--out", default=None, help="write din format to this file")
    simulate = commands.add_parser(
        "simulate", help="simulate one cache over a din trace file"
    )
    simulate.add_argument("din", help="trace file in din format")
    simulate.add_argument("--net", type=int, default=1024, help="net size (bytes)")
    simulate.add_argument("--block", type=int, default=16, help="block size")
    simulate.add_argument("--sub", type=int, default=None, help="sub-block size")
    simulate.add_argument("--assoc", type=int, default=4, help="associativity")
    simulate.add_argument("--word", type=int, default=2, help="data-path width")
    simulate.add_argument(
        "--fetch",
        default="demand",
        choices=["demand", "load-forward", "load-forward-optimized"],
    )
    simulate.add_argument(
        "--replacement", default="lru", choices=["lru", "fifo", "random"]
    )
    simulate.add_argument(
        "--cold", action="store_true",
        help="cold-start statistics (default: the paper's warm start)",
    )
    simulate.add_argument(
        "--keep-writes", action="store_true",
        help="keep write accesses (default: the paper's read filtering)",
    )
    miss_path = simulate.add_argument_group(
        "miss path",
        "optional structures consulted between an L1 miss and memory "
        "(see docs/misspath.md); all default to off",
    )
    miss_path.add_argument(
        "--victim-entries", type=int, default=0, metavar="N",
        help="fully-associative victim cache entries (holds L1 evictions)",
    )
    miss_path.add_argument(
        "--miss-entries", type=int, default=0, metavar="N",
        help="tag-only miss cache entries",
    )
    miss_path.add_argument(
        "--stream-buffers", type=int, default=0, metavar="N",
        help="sequential-prefetch stream buffers",
    )
    miss_path.add_argument(
        "--stream-depth", type=int, default=4, metavar="N",
        help="prefetch FIFO depth per stream buffer (default 4)",
    )
    miss_path.add_argument(
        "--l2-net", type=int, default=0, metavar="BYTES",
        help="backing L2 net size (0 = no L2)",
    )
    miss_path.add_argument(
        "--l2-block", type=int, default=0, metavar="BYTES",
        help="L2 block size (default: the L1 block size)",
    )
    miss_path.add_argument(
        "--l2-sub", type=int, default=0, metavar="BYTES",
        help="L2 sub-block size (default: the L2 block size)",
    )
    miss_path.add_argument(
        "--l2-assoc", type=int, default=4, metavar="N",
        help="L2 associativity (default 4)",
    )
    return parser


def _cmd_riscii(length: int) -> None:
    from repro.analysis.paper_data import RISCII_MISS_RATIOS
    from repro.core.sim import simulate
    from repro.extensions.riscii import RemoteProgramCounter, riscii_icache
    from repro.trace.filters import only_kind
    from repro.trace.record import AccessType

    trace = only_kind(
        suite_trace("vax", "c2", length=length), AccessType.IFETCH
    )
    print("RISC II instruction cache (Section 2.3)")
    for size in sorted(RISCII_MISS_RATIOS):
        stats = simulate(riscii_icache(size), trace, warmup="fill")
        print(
            f"  {size:5d} B: miss {stats.miss_ratio:.4f} "
            f"(paper {RISCII_MISS_RATIOS[size]:.3f})"
        )
    rpc = RemoteProgramCounter(word_size=4)
    for access in trace:
        rpc.observe(access.addr)
    print(f"  remote PC accuracy: {rpc.accuracy:.3f} (paper 0.899)")


def _cmd_suites() -> None:
    for suite in suite_names():
        print(f"{suite}:")
        for spec in suite_specs(suite):
            source = spec.program or "synthetic"
            print(f"  {spec.name:<8s} {source}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    length = args.length if args.length is not None else default_trace_length()

    if args.command == "table6":
        print(format_table6(table6_experiment(length=length)))
    elif args.command == "table7":
        points = table7_experiment(
            args.arch, length=length, runner=_runner_config(args),
            sample=args.sample,
        )
        print(format_table7(args.arch, points))
        _warn_partial(points)
    elif args.command == "table8":
        print(
            format_table8(
                table8_experiment(
                    length=length, runner=_runner_config(args),
                    sample=args.sample,
                )
            )
        )
    elif args.command == "figure":
        arch, nets, scaled = _FIGURES[args.number]
        results = figure_experiment(
            arch, nets, length=length, runner=_runner_config(args),
            sample=args.sample,
        )
        for points in results.values():
            _warn_partial(points)
        series = figure_series(results, use_scaled_traffic=scaled)
        if args.csv:
            print(series_to_csv(series), end="")
        else:
            mode = " (nibble mode)" if scaled else ""
            print(ascii_figure(series, title=f"Figure {args.number}: {arch}{mode}"))
    elif args.command == "riscii":
        _cmd_riscii(length)
    elif args.command == "suites":
        _cmd_suites()
    elif args.command == "trace":
        trace = suite_trace(args.suite, args.name, length=length)
        if args.out:
            write_din(trace, args.out)
            print(f"wrote {len(trace)} accesses to {args.out}")
        else:
            print(f"{trace!r}: {trace.total_bytes} bytes referenced, "
                  f"{trace.unique_addresses()} unique addresses")
    elif args.command == "simulate":
        _cmd_simulate(args)
    elif args.command == "lint":
        return _cmd_lint(args)
    elif args.command == "classify":
        return _cmd_classify(args)
    elif args.command == "phases":
        return _cmd_phases(args, length)
    elif args.command == "chaos":
        if args.serve:
            from repro.service.chaos import run_serve_chaos

            return run_serve_chaos(
                quick=args.quick,
                seed=args.seed,
                budget=args.budget,
                report_path=args.out,
            )
        from repro.runner.chaos import run_chaos

        return run_chaos(
            quick=args.quick,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            engine="checked" if args.sanitize else args.engine,
        )
    elif args.command == "serve":
        from repro.service.app import run_server
        from repro.service.simulator import ServiceConfig

        return run_server(
            host=args.host,
            port=args.port,
            config=ServiceConfig(
                workers=args.workers,
                cache_size=args.cache_size,
                disk_cache=args.disk_cache,
                store_dir=args.store_dir,
                max_inflight=args.max_inflight,
                max_queue=args.max_queue,
                breaker_failures=args.breaker_failures or None,
                engine=args.engine,
                grid_engine=args.grid_engine,
                default_length=args.length,
                supervised=args.supervised,
                worker_processes=args.worker_processes,
                heartbeat_timeout=args.heartbeat_timeout,
                drain_timeout=args.drain_timeout,
                allow_sampling=args.allow_sampling,
            ),
            log_level=args.log_level,
        )
    return 0


def _cmd_lint(args) -> int:
    """Static-check every bundled program; non-zero exit on findings.

    Error-severity findings always fail the command (this is the CI
    gate); ``--strict`` extends that to warnings.
    """
    import inspect
    import json

    from repro.staticcheck import check_program, footprint
    from repro.workloads.assembler import assemble
    from repro.workloads.programs import PROGRAMS

    names = args.programs if args.programs else sorted(PROGRAMS)
    unknown = sorted(set(names) - set(PROGRAMS))
    if unknown:
        raise SystemExit(
            f"repro: unknown programs {unknown}; choose from {sorted(PROGRAMS)}"
        )

    entries = []
    errors = warnings = 0
    misspath_diagnostics = None
    if args.misspath is not None:
        from repro.staticcheck.configlint import lint_miss_path

        try:
            raw_misspath = json.loads(args.misspath)
        except ValueError as exc:
            raise SystemExit(f"repro: --misspath is not valid JSON: {exc}")
        misspath_diagnostics = lint_miss_path(raw_misspath, source="cli")
        errors += sum(1 for d in misspath_diagnostics if d.is_error)
        warnings += sum(1 for d in misspath_diagnostics if not d.is_error)
    coverage_diagnostics = None
    if args.sweep_coverage is not None:
        from repro.analysis.sweep import geometry_grid
        from repro.errors import ReproError
        from repro.staticcheck.configlint import lint_stackdist_coverage

        try:
            grid = geometry_grid(args.sweep_coverage, min_sub=args.word)
        except ReproError as exc:
            raise SystemExit(f"repro: --sweep-coverage: {exc}")
        # Info-severity planning report: never counted as warnings, so
        # --strict stays about real findings.
        coverage_diagnostics = lint_stackdist_coverage(
            grid, source="paper-grid"
        )
        if args.sample is not None:
            from repro.staticcheck.configlint import lint_sample_coverage
            from repro.staticcheck.phases import SamplingConfig

            try:
                SamplingConfig.coerce(args.sample)
            except ReproError as exc:
                raise SystemExit(f"repro: --sample: {exc}")
            coverage_diagnostics = list(coverage_diagnostics)
            coverage_diagnostics += lint_sample_coverage(
                grid, args.sample, source="paper-grid"
            )
    elif args.sample is not None:
        raise SystemExit("repro: --sample requires --sweep-coverage")
    for name in names:
        builder = PROGRAMS[name]
        params = (
            {"seed": 0}
            if "seed" in inspect.signature(builder).parameters
            else {}
        )
        spec = builder(**params)
        program = assemble(spec.source, word_size=args.word)
        diagnostics = check_program(program, name=name)
        errors += sum(1 for d in diagnostics if d.is_error)
        warnings += sum(1 for d in diagnostics if not d.is_error)
        entries.append((name, diagnostics, footprint(program, name=name)))

    if args.fmt == "json":
        payload = {
            "schema_version": 1,
            "programs": [
                {
                    "name": name,
                    "diagnostics": [d.to_dict() for d in diagnostics],
                    "footprint": report.to_dict(),
                }
                for name, diagnostics, report in entries
            ],
            "errors": errors,
            "warnings": warnings,
        }
        if misspath_diagnostics is not None:
            payload["misspath"] = {
                "diagnostics": [d.to_dict() for d in misspath_diagnostics],
            }
        if coverage_diagnostics is not None:
            payload["sweep_coverage"] = {
                "net_sizes": list(args.sweep_coverage),
                "diagnostics": [d.to_dict() for d in coverage_diagnostics],
            }
        print(json.dumps(payload, indent=2))
    else:
        if misspath_diagnostics is not None:
            print(f"misspath config: {len(misspath_diagnostics)} finding(s)")
            for diagnostic in misspath_diagnostics:
                print(f"  {diagnostic.render()}")
        if coverage_diagnostics is not None:
            nets = ", ".join(str(net) for net in args.sweep_coverage)
            print(f"sweep coverage (nets {nets}):")
            for diagnostic in coverage_diagnostics:
                print(f"  {diagnostic.render()}")
        for name, diagnostics, report in entries:
            loops = sum(1 for loop in report.loops if loop.innermost)
            print(
                f"{name}: {len(diagnostics)} finding(s) — "
                f"code {report.code_bytes} B, data {report.data_bytes} B, "
                f"{loops} innermost loop(s), "
                f"hot loop {report.hot_loop_bytes} B"
            )
            for diagnostic in diagnostics:
                print(f"  {diagnostic.render()}")
        print(
            f"checked {len(entries)} program(s): "
            f"{errors} error(s), {warnings} warning(s)"
        )
    failed = errors > 0 or (args.strict and warnings > 0)
    return 1 if failed else 0


def _cmd_phases(args, length: int) -> int:
    """Static phase analysis of one bundled program's generated trace.

    Builds the program's trace, fingerprints its intervals from the
    staticcheck CFG, clusters them, and prints the resulting
    :class:`~repro.staticcheck.phases.PhasePlan` — the same plan a
    ``--sample`` sweep would simulate from (see docs/sampling.md).
    """
    import inspect
    import json

    from repro.errors import ReproError
    from repro.staticcheck.phases import analyze_trace
    from repro.workloads.assembler import assemble
    from repro.workloads.generator import program_trace
    from repro.workloads.programs import PROGRAMS

    if args.program not in PROGRAMS:
        raise SystemExit(
            f"repro: unknown program {args.program!r}; "
            f"choose from {sorted(PROGRAMS)}"
        )
    builder = PROGRAMS[args.program]
    params = (
        {"seed": args.seed}
        if "seed" in inspect.signature(builder).parameters
        else {}
    )
    program = assemble(builder(**params).source, word_size=args.word)
    trace = program_trace(args.program, length, args.word, seed=args.seed)
    try:
        plan = analyze_trace(
            trace, args.interval, args.k, seed=args.seed, program=program
        )
    except ReproError as exc:
        raise SystemExit(f"repro: {exc}")
    if args.fmt == "json":
        print(json.dumps(plan.to_dict(), indent=2))
        return 0
    print(
        f"{args.program}: {plan.trace_length} accesses, "
        f"{plan.intervals} interval(s) of {plan.interval_length}, "
        f"{len(plan.phases)} phase(s), fingerprints from {plan.source}"
    )
    for phase in plan.phases:
        witness = phase.witness if phase.witness is not None else "-"
        print(
            f"  phase {phase.index}: {len(phase.members)} interval(s), "
            f"weight {phase.weight:.3f}, representative {phase.representative}, "
            f"witness {witness}, spread {phase.spread:.4f}"
        )
    print(
        f"simulated fraction {plan.simulated_fraction:.3f} "
        f"({plan.simulated_accesses} of {plan.trace_length} accesses)"
    )
    for diagnostic in plan.diagnostics():
        print(f"  {diagnostic.render()}")
    return 0


def _format_bound(bound) -> str:
    if bound is None:
        return "?"
    lo, hi = bound
    return f"[{lo}, {'∞' if hi is None else hi}]"


def _cmd_classify(args) -> int:
    """Hierarchical abstract-interpretation classification of one program.

    Always runs the chain-aware analyzer
    (:func:`repro.staticcheck.abschain.classify_chain_program`): with no
    miss-path flags the chain is bare and the hierarchy degenerates to
    the single-level proofs, but the static counter bounds are computed
    either way.

    Exit codes: 0 = analysis (and, with ``--verify``, the differential
    check) succeeded; 1 = the program has error-severity findings, the
    geometry is invalid, or verification found a violated proof or an
    out-of-bounds counter.
    """
    import inspect
    import json

    from repro.core.config import CacheGeometry
    from repro.errors import ConfigurationError
    from repro.staticcheck import (
        classify_chain_program,
        lint_chain_report,
        verify_chain_classification,
    )
    from repro.workloads.assembler import assemble
    from repro.workloads.programs import PROGRAMS

    if args.program not in PROGRAMS:
        raise SystemExit(
            f"repro: unknown program {args.program!r}; "
            f"choose from {sorted(PROGRAMS)}"
        )
    builder = PROGRAMS[args.program]
    params = (
        {"seed": 0}
        if "seed" in inspect.signature(builder).parameters
        else {}
    )
    program = assemble(builder(**params).source, word_size=args.word)
    miss_path = {
        "victim_entries": args.victim_entries,
        "miss_entries": args.miss_entries,
        "stream_buffers": args.stream_buffers,
        "stream_depth": args.stream_depth,
        "l2_net_size": args.l2_net,
        "l2_block_size": args.l2_block,
        "l2_sub_block_size": args.l2_sub,
        "l2_associativity": args.l2_assoc,
    }
    try:
        geometry = CacheGeometry(
            net_size=args.net,
            block_size=args.block,
            sub_block_size=args.sub if args.sub is not None else args.block,
            associativity=args.assoc,
        )
        report = classify_chain_program(
            program,
            geometry,
            miss_path=miss_path,
            fetch=args.fetch,
            stack_words=args.stack_words,
            name=args.program,
        )
    except ConfigurationError as error:
        print(f"repro: classify failed: {error}", file=sys.stderr)
        return 1
    verification = (
        verify_chain_classification(program, report) if args.verify else None
    )

    if args.fmt == "json":
        payload = report.to_dict()
        if verification is not None:
            payload["verification"] = verification.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        chained = report.miss_path.enabled
        print(
            f"{report.name}: {len(report.sites)} site(s) @ "
            f"net {report.net_size} B, block {report.block_size}, "
            f"sub-block {report.sub_block_size}, "
            f"{report.associativity}-way, {report.fetch} fetch, "
            f"chain {report.miss_path.key()}"
        )
        for key, value in report.counts.items():
            print(f"  {key:20s} {value}")
        print(f"  classified fraction: {report.classified_fraction:.3f}")
        print("  static counter bounds:")
        for key in (
            "demand_misses", "memory_fetches", "memory_bytes_fetched"
        ):
            print(f"    {key:22s} {_format_bound(report.bound(key))}")
        if chained:
            print("  per-structure proofs:")
            header = (
                f"    {'structure':9s} {'proven-hits':>11s} "
                f"{'probes':>14s} {'hits':>14s} "
                f"{'fills':>14s} {'evictions':>14s}"
            )
            print(header)
            for row in report.proof_rows():
                print(
                    f"    {row['structure']:9s} {row['proven_hits']:>11d} "
                    f"{_format_bound(row['probes']):>14s} "
                    f"{_format_bound(row['hits']):>14s} "
                    f"{_format_bound(row['fills']):>14s} "
                    f"{_format_bound(row['evictions']):>14s}"
                )
        for finding in lint_chain_report(report):
            print(f"  {finding.render()}")
        for site in report.sites:
            if site.classification.value in ("unclassified", "L1-hit"):
                continue
            target = (
                f" -> {site.target:#x}" if site.target is not None else ""
            )
            print(
                f"  addr {site.instr_addr:#06x} [{site.site}] "
                f"{site.kind}{target}: {site.classification.value}"
            )
        if verification is not None:
            status = "PASSED" if verification.ok else "FAILED"
            sanitized = " (checked engine)" if verification.sanitized else ""
            print(
                f"  verification {status}{sanitized}: "
                f"{verification.accesses} accesses "
                f"({verification.checked} against proofs, "
                f"{verification.unclassified_accesses} unclassified)"
            )
            for site, occurrence, expected, observed in (
                verification.violations[:10]
            ):
                print(
                    f"    VIOLATION {site} occurrence {occurrence}: "
                    f"expected {expected}, observed {observed}"
                )
            for counter, lo, hi, observed in (
                verification.bound_violations[:10]
            ):
                print(
                    f"    BOUND VIOLATION {counter}: observed {observed} "
                    f"outside {_format_bound((lo, hi))}"
                )
    if verification is not None and not verification.ok:
        return 1
    return 0


def _cmd_simulate(args) -> None:
    from repro.core.config import CacheGeometry
    from repro.core.fetch import make_fetch
    from repro.core.misspath import MissPathConfig
    from repro.core.replacement import make_replacement
    from repro.core.sim import run_config
    from repro.memory.nibble import NIBBLE_MODE_BUS
    from repro.trace.filters import reads_only
    from repro.trace.reader import read_din

    trace = read_din(args.din, size=args.word)
    if not args.keep_writes:
        trace = reads_only(trace)
    geometry = CacheGeometry(
        net_size=args.net,
        block_size=args.block,
        sub_block_size=args.sub if args.sub is not None else args.block,
        associativity=args.assoc,
    )
    miss_path = MissPathConfig(
        victim_entries=args.victim_entries,
        miss_entries=args.miss_entries,
        stream_buffers=args.stream_buffers,
        stream_depth=args.stream_depth,
        l2_net_size=args.l2_net,
        l2_block_size=args.l2_block,
        l2_sub_block_size=args.l2_sub,
        l2_associativity=args.l2_assoc,
    )
    stats = run_config(
        geometry,
        trace,
        replacement=make_replacement(args.replacement),
        fetch=make_fetch(args.fetch),
        word_size=args.word,
        warmup=0 if args.cold else "fill",
        miss_path=miss_path if miss_path.enabled else None,
    )
    print(f"trace:        {args.din} ({len(trace)} accesses after filtering)")
    print(f"cache:        {geometry}")
    print(f"policies:     {args.replacement} replacement, {args.fetch} fetch")
    print(f"miss ratio:   {stats.miss_ratio:.4f}")
    print(f"traffic:      {stats.traffic_ratio():.4f}")
    print(
        f"nibble:       "
        f"{stats.scaled_traffic_ratio(NIBBLE_MODE_BUS, args.word):.4f}"
    )
    if stats.misspath is not None:
        misspath = stats.misspath
        print(f"miss path:    {miss_path.key()} "
              f"({misspath.demand_misses} demand misses)")
        for name in misspath.chain:
            structure = misspath.structures[name]
            print(
                f"  {name:7s} probes {structure.probes:>8d}  "
                f"hits {structure.hits:>8d}  fills {structure.fills:>8d}  "
                f"evictions {structure.evictions:>8d}"
            )
        print(
            f"  memory  fetches {misspath.memory_fetches} "
            f"({misspath.memory_bytes_fetched} bytes)"
        )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
