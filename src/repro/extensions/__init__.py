"""Extensions: the paper's proposals and "further studies" items.

* :mod:`repro.extensions.instruction_buffer` — the Section 2.2 minimum
  cache and VAX/CRAY-style instruction buffers.
* :mod:`repro.extensions.riscii` — the Section 2.3 RISC II instruction
  cache, remote program counter, and code compaction.
* :mod:`repro.extensions.prefetch` — sequential prefetching.
"""

from repro.extensions.instruction_buffer import InstructionBuffer, minimum_cache
from repro.extensions.prefetch import simulate_with_prefetch
from repro.extensions.riscii import (
    RemoteProgramCounter,
    compact_code,
    riscii_icache,
)

__all__ = [
    "InstructionBuffer",
    "minimum_cache",
    "simulate_with_prefetch",
    "RemoteProgramCounter",
    "compact_code",
    "riscii_icache",
]
