"""Sequential prefetching (the paper's "further studies" item).

Section 3.1 puts prefetching beyond the paper's scope (load-forward
being its bounded cousin); Section 2.2's smart cache proposes it.
This extension adds the three classic sequential-prefetch policies of
Smith [11] on top of any :class:`~repro.core.cache.SubBlockCache`:

* ``always`` — after every access, prefetch the next sub-block.
* ``on-miss`` — prefetch the next sub-block only after a miss.
* ``tagged`` — prefetch on the first access to each sub-block (miss or
  first hit), the usual best-of-both.

Prefetch traffic counts toward bytes fetched (it is real bus traffic)
but not toward accesses or misses, so miss ratios stay comparable with
the demand-fetch results while the traffic ratio exposes the cost —
the "memory pollution" trade-off the paper describes.
"""

from __future__ import annotations

from typing import Set, Union

from repro.core.cache import SubBlockCache
from repro.core.stats import CacheStats
from repro.errors import ConfigurationError
from repro.trace.record import Trace

__all__ = ["PrefetchPolicy", "simulate_with_prefetch"]

PrefetchPolicy = str  # "always" | "on-miss" | "tagged"

_POLICIES = ("always", "on-miss", "tagged")


def simulate_with_prefetch(
    cache: SubBlockCache,
    trace: Trace,
    policy: PrefetchPolicy = "tagged",
    warmup: Union[int, str] = "fill",
) -> CacheStats:
    """Drive a cache with sequential sub-block prefetching.

    Args:
        cache: The cache to exercise.
        trace: Input reference stream.
        policy: ``always``, ``on-miss``, or ``tagged``.
        warmup: Warm-start mode, as in :func:`repro.core.sim.simulate`.

    Returns:
        The cache's stats (prefetch traffic included in bytes fetched;
        ``stats.prefetches`` counts issued prefetches).
    """
    if policy not in _POLICIES:
        raise ConfigurationError(
            f"unknown prefetch policy {policy!r}; choose from {_POLICIES}"
        )
    sub = cache.geometry.sub_block_size
    tagged_seen: Set[int] = set()
    fill_pending = warmup == "fill"
    countdown = warmup if isinstance(warmup, int) else 0

    for record in trace:
        hit = cache.access(record.addr, record.kind, record.size)
        sub_addr = record.addr // sub
        if policy == "always":
            do_prefetch = True
        elif policy == "on-miss":
            do_prefetch = not hit
        else:  # tagged: first touch of this sub-block
            do_prefetch = sub_addr not in tagged_seen
            tagged_seen.add(sub_addr)
        if do_prefetch:
            cache.prefetch((sub_addr + 1) * sub)

        if fill_pending and cache.is_full:
            cache.stats.reset()
            fill_pending = False
        elif countdown > 0:
            countdown -= 1
            if countdown == 0:
                cache.stats.reset()
    return cache.stats
