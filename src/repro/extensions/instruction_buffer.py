"""The minimum cache and instruction buffers (Section 2.2).

The paper sketches two cheap alternatives to a full cache:

* The **minimum cache** — "32 data words broken into 16 2-word blocks,
  where only the requested word is loaded on a miss ... 2-way
  set-associative placement with RANDOM replacement", costing "about
  190 bytes of RAM" on a 32-bit machine.  :func:`minimum_cache` builds
  exactly that configuration (its geometry's gross size is 190 bytes,
  matching the paper's arithmetic).
* **Instruction buffers** — a window of consecutive instruction bytes
  that reduces latency but, without branch-target recognition, "does
  not reduce the number of bytes required from the memory system".
  :class:`InstructionBuffer` models both variants: the VAX-style
  sequential window and the CRAY-style buffer set that recognizes
  branch targets (and so can hold entire loops).
"""

from __future__ import annotations

from typing import List

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.replacement import RandomReplacement
from repro.core.stats import CacheStats
from repro.errors import ConfigurationError
from repro.trace.record import AccessType

__all__ = ["minimum_cache", "InstructionBuffer"]


def minimum_cache(word_size: int = 4, seed: int = 0) -> SubBlockCache:
    """Build the paper's minimum cache for a given word size.

    32 data words as 16 two-word blocks, one-word sub-blocks, 2-way
    set-associative, RANDOM replacement.
    """
    geometry = CacheGeometry(
        net_size=32 * word_size,
        block_size=2 * word_size,
        sub_block_size=word_size,
        associativity=2,
    )
    return SubBlockCache(
        geometry,
        replacement=RandomReplacement(seed=seed),
        word_size=word_size,
    )


class InstructionBuffer:
    """A buffer of one or more blocks of consecutive instruction bytes.

    Args:
        blocks: Number of buffer entries (1 models the VAX-11/780's
            8-byte buffer; 4 x 512 bytes models the CRAY-1's).
        block_size: Bytes per entry.
        word_size: Fetch width in bytes.
        recognize_branch_targets: If True, a fetch that jumps to a
            block still resident in the buffer hits (CRAY-style, loops
            fit); if False, only the sequential window hits and any
            jump outside the newest block flushes nothing but simply
            misses (VAX-style).

    Attributes:
        stats: Accesses/misses/bytes in a
            :class:`~repro.core.stats.CacheStats` (only the fetch-side
            fields are used).
    """

    def __init__(
        self,
        blocks: int = 1,
        block_size: int = 8,
        word_size: int = 4,
        recognize_branch_targets: bool = False,
    ) -> None:
        if blocks < 1:
            raise ConfigurationError(f"blocks must be >= 1, got {blocks}")
        if block_size < word_size:
            raise ConfigurationError(
                f"block_size ({block_size}) must be >= word_size ({word_size})"
            )
        self.blocks = blocks
        self.block_size = block_size
        self.word_size = word_size
        self.recognize_branch_targets = recognize_branch_targets
        self.stats = CacheStats()
        self._resident: List[int] = []  # block addresses, oldest first

    def access(self, addr: int, kind: AccessType = AccessType.IFETCH, size: int = 0) -> bool:
        """Fetch one instruction word through the buffer."""
        if size <= 0:
            size = self.word_size
        stats = self.stats
        stats.accesses += 1
        stats.accesses_by_kind[kind] += 1
        stats.bytes_accessed += size
        block = addr // self.block_size
        if block in self._resident:
            if self.recognize_branch_targets or block == self._resident[-1]:
                return True
            # Sequential-only buffer: a backwards jump inside the window
            # still re-fetches (the buffer cannot recognize it).
        stats.misses += 1
        stats.misses_by_kind[kind] += 1
        stats.block_misses += 1
        stats.bytes_fetched += self.block_size
        stats.record_transaction(self.block_size // self.word_size)
        if block in self._resident:
            self._resident.remove(block)
        self._resident.append(block)
        if len(self._resident) > self.blocks:
            self._resident.pop(0)
            self.stats.evictions += 1
        return False

    def __repr__(self) -> str:
        kind = "branch-aware" if self.recognize_branch_targets else "sequential"
        return (
            f"<InstructionBuffer {self.blocks}x{self.block_size}B {kind}>"
        )
