"""The RISC II instruction cache (Section 2.3).

The paper's implemented example of a smart on-chip cache: a 512-byte
direct-mapped instruction cache (64 blocks of 8 bytes) with two
innovations — a *remote program counter* that guesses the next
instruction address so the cache can start its array access early, and
*code compaction* (selected 16-bit instruction forms) that shrinks the
code footprint about 20% and improved miss ratios 27%.

This module provides the cache constructor, a remote-PC model, and the
code-compaction trace transform, so the quoted results (miss ratios of
0.148/0.125/0.098/0.078 for 512–4096 bytes, 89.9% prediction accuracy)
can be re-derived on this library's workloads.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.trace.record import AccessType, Trace

__all__ = ["riscii_icache", "RemoteProgramCounter", "compact_code"]


def riscii_icache(net_size: int = 512, word_size: int = 4) -> SubBlockCache:
    """A RISC II-style direct-mapped instruction cache.

    Defaults to the implemented chip's geometry: 512 bytes as 64
    direct-mapped blocks of 8 bytes (block == sub-block).
    """
    geometry = CacheGeometry(
        net_size=net_size, block_size=8, sub_block_size=8, associativity=1
    )
    return SubBlockCache(geometry, word_size=word_size)


class RemoteProgramCounter:
    """Next-instruction-address predictor.

    Models the RISC II remote program counter: by default the next
    fetch is predicted sequential (current address + word); a small
    direct-mapped table of jump targets — standing in for the chip's
    "limited instruction-decode ability and static jump-likely hints" —
    overrides the sequential guess for addresses that recently jumped.

    Args:
        table_entries: Jump-target table size (power of two).
        word_size: Instruction word size in bytes.
    """

    def __init__(self, table_entries: int = 64, word_size: int = 4) -> None:
        if table_entries < 1 or table_entries & (table_entries - 1):
            raise ConfigurationError(
                f"table_entries must be a positive power of two, got {table_entries}"
            )
        self.word_size = word_size
        self._mask = table_entries - 1
        self._targets: Dict[int, int] = {}
        self._last_addr: int = -1
        self.predictions = 0
        self.correct = 0

    def _predict(self) -> int:
        slot = (self._last_addr // self.word_size) & self._mask
        target = self._targets.get(slot)
        if target is not None and self._targets.get(-slot - 1) == self._last_addr:
            return target
        return self._last_addr + self.word_size

    def observe(self, addr: int) -> bool:
        """Feed the actual next fetch address; returns prediction hit.

        The first observation primes the predictor and counts neither
        way.
        """
        if self._last_addr < 0:
            self._last_addr = addr
            return True
        predicted = self._predict()
        hit = predicted == addr
        self.predictions += 1
        self.correct += int(hit)
        if addr != self._last_addr + self.word_size:
            slot = (self._last_addr // self.word_size) & self._mask
            self._targets[slot] = addr
            self._targets[-slot - 1] = self._last_addr  # tag for the slot
        self._last_addr = addr
        return hit

    @property
    def accuracy(self) -> float:
        """Fraction of next-instruction addresses predicted correctly."""
        return self.correct / self.predictions if self.predictions else 0.0

    def access_time_reduction(self, hit_gain: float = 0.47) -> float:
        """Estimated access-time saving from correct predictions.

        A correct prediction overlaps the cache array access with the
        processor's address generation, saving ``hit_gain`` of the
        access time on that fetch (the chip measured a 42.2% overall
        reduction at 89.9% accuracy, implying a per-hit gain of ~0.47).
        """
        return self.accuracy * hit_gain


def compact_code(trace: Trace, reduction: float = 0.20, word_size: int = 4) -> Trace:
    """Model RISC II code compaction on an instruction trace.

    Selected half-word instructions shrink the static code by about
    ``reduction``; at trace level that contracts the instruction
    address space uniformly toward its base, raising cache density.
    Data references are passed through untouched.

    Args:
        trace: Input trace (typically instruction fetches only).
        reduction: Fractional code-size reduction (0.20 in the paper).
        word_size: Alignment of the compacted addresses.

    Returns:
        A new trace with compacted instruction-fetch addresses.
    """
    if not 0.0 <= reduction < 1.0:
        raise ConfigurationError(
            f"reduction must be in [0, 1), got {reduction}"
        )
    ifetch = trace.kinds == int(AccessType.IFETCH)
    addrs = trace.addrs.copy()
    code = addrs[ifetch]
    if len(code):
        base = code.min()
        compacted = base + ((code - base) * (1.0 - reduction)).astype(addrs.dtype)
        compacted = (compacted // word_size) * word_size
        addrs[ifetch] = compacted
    return Trace(addrs, trace.kinds, trace.sizes, name=trace.name)
