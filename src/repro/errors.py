"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch everything the library raises with a single ``except``
clause while still distinguishing configuration problems from trace-format
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid cache, memory, or workload configuration was supplied.

    Raised when geometry parameters are inconsistent (e.g. a sub-block
    larger than its block, a non-power-of-two size, or a net cache size
    that cannot hold a single set).
    """


class TraceFormatError(ReproError, ValueError):
    """A trace file or trace record could not be parsed."""


class ChecksumError(TraceFormatError):
    """Stored data failed its integrity check.

    Raised when a trace loaded from the binary ``.npz`` format does not
    hash to the checksum recorded at write time, or when a checkpoint
    file contains a corrupted record.  A subclass of
    :class:`TraceFormatError` so existing ``except TraceFormatError``
    handlers keep working.
    """


class MachineError(ReproError, RuntimeError):
    """The toy workload machine hit an illegal state.

    Examples: executing an undefined opcode, jumping outside the code
    segment, or exceeding the configured step budget (runaway program).

    Attributes:
        steps: Instructions executed before the failure, when known
            (``None`` otherwise).
    """

    def __init__(self, message: str, steps: "int | None" = None) -> None:
        super().__init__(message)
        self.steps = steps


class StaticCheckError(ConfigurationError):
    """Static analysis found error-severity problems before execution.

    Raised by the fail-fast preflight layer (:mod:`repro.staticcheck`)
    when a workload program, cache geometry, or sweep grid is provably
    broken.  A subclass of :class:`ConfigurationError` so the HTTP
    service's 400 mapping and existing handlers keep working, but it
    additionally carries the structured findings.

    Attributes:
        diagnostics: The full finding list (errors and warnings), each
            a :class:`repro.staticcheck.Diagnostic`.
    """

    def __init__(self, message: str, diagnostics: "list | None" = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics) if diagnostics else []


class AssemblyError(ReproError, ValueError):
    """The toy-machine assembler rejected a source program.

    Attributes:
        lineno: 1-based source line of the offending statement, when
            known (``None`` for source-wide problems such as a bad
            word size).
        token: The offending token text, when one token is to blame
            (an unknown mnemonic, a bad register name, an undefined
            symbol, a duplicate label).
    """

    def __init__(
        self,
        message: str,
        lineno: "int | None" = None,
        token: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.lineno = lineno
        self.token = token


class TransientError(ReproError, RuntimeError):
    """A failure that is expected to succeed on retry.

    The resilient runner (:mod:`repro.runner`) retries cells that raise
    this (or, in lenient mode, :class:`MachineError` /
    :class:`TraceFormatError`) with exponential backoff before giving
    up.  Raise it for I/O hiccups, resource contention, or injected
    chaos faults — anything where re-running the same cell can succeed.
    """


class EngineError(ReproError, RuntimeError):
    """A simulation engine failed to execute a run it accepted.

    Raised when the vectorized batch engine (:mod:`repro.engine`) hits
    an internal failure — a decode kernel error, an unsupported input it
    did not reject up front — in strict mode.  In lenient runner mode
    the cell is transparently re-run on the ``reference`` engine
    instead, so this error marks a bug worth reporting, not a flaky
    cell: deterministic, never retried.
    """


class SanitizerError(EngineError):
    """The checked engine caught a cache-model invariant violation.

    Raised by :class:`repro.engine.checked.CheckedEngine` when a
    per-access assertion fails — a corrupted LRU stack, a duplicate tag
    within a set, a valid bit outside the block's sub-block range, or a
    statistics counter that broke a conservation law.  Deterministic
    like every :class:`EngineError`: it marks a simulator bug (or a
    deliberately seeded fault in tests), never a flaky cell.

    Attributes:
        rule: Stable identifier of the violated invariant (e.g.
            ``"sanitizer-lru-stack"``); the catalogue lives in
            ``docs/staticcheck.md``.
        diagnostics: Structured findings, each a
            :class:`repro.staticcheck.Diagnostic`.
    """

    def __init__(
        self,
        message: str,
        rule: str = "",
        diagnostics: "list | None" = None,
    ) -> None:
        super().__init__(message)
        self.rule = rule
        self.diagnostics = list(diagnostics) if diagnostics else []


class CellTimeoutError(ReproError, TimeoutError):
    """A sweep cell exceeded its wall-clock timeout or access budget.

    Deterministic by nature (re-running the same cell would time out
    again), so the runner never retries it: the cell is skipped in
    lenient mode or fails the sweep in strict mode.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's end-to-end deadline expired before its result.

    Carried by the service's deadline propagation
    (``X-Repro-Deadline-Ms`` header -> per-stage budgets -> cooperative
    cancellation inside the engine batch path) and mapped to HTTP 504
    at the edge.  Distinct from :class:`CellTimeoutError`: the *cell*
    did nothing wrong — the client's budget ran out, and the same query
    with a wider budget would succeed.

    Attributes:
        stage: Where the budget died (``admission``, ``queue``,
            ``simulate``), for the 504 body and the request log.
    """

    def __init__(self, message: str, stage: str = "simulate") -> None:
        super().__init__(message)
        self.stage = stage


class WorkerCrashError(TransientError):
    """A supervised worker process died while holding an in-flight cell.

    A subclass of :class:`TransientError` because the crash says
    nothing about the query: the supervisor retries the cell on another
    worker, and only when the retry budget is spent does the caller see
    this error.  The committed results in the WAL store are unaffected
    — a crash can only lose the cell that was in flight.
    """
