"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch everything the library raises with a single ``except``
clause while still distinguishing configuration problems from trace-format
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid cache, memory, or workload configuration was supplied.

    Raised when geometry parameters are inconsistent (e.g. a sub-block
    larger than its block, a non-power-of-two size, or a net cache size
    that cannot hold a single set).
    """


class TraceFormatError(ReproError, ValueError):
    """A trace file or trace record could not be parsed."""


class MachineError(ReproError, RuntimeError):
    """The toy workload machine hit an illegal state.

    Examples: executing an undefined opcode, jumping outside the code
    segment, or exceeding the configured step budget (runaway program).
    """


class AssemblyError(ReproError, ValueError):
    """The toy-machine assembler rejected a source program."""
