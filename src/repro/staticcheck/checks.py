"""Static checks over assembled toy-machine programs.

:func:`check_program` runs every analysis and returns structured
:class:`~repro.staticcheck.diagnostics.Diagnostic` findings:

================================  ========  ======================================
rule                              severity  meaning
================================  ========  ======================================
``branch-out-of-range``           error     branch/jump/call immediate is not an
                                            instruction address (the interpreter
                                            would die resolving it)
``fall-off-end``                  error     execution can run past the last
                                            instruction into the data segment
``no-halt-path``                  error     no ``halt`` is reachable from entry —
                                            an obviously non-terminating program
``stack-imbalance``               error     push/pop or call/ret mismatch: a join
                                            reached with two stack depths, a pop
                                            below the frame (clobbering the return
                                            address), or a ``ret`` with a non-empty
                                            frame
``data-out-of-bounds``            error     load/store through a constant base
                                            provably outside ``[data_base,
                                            data_limit)``
``unreachable-code``              warning   instructions no path reaches
``uninit-register-read``          warning   a register is read that no instruction
                                            on any path has written
================================  ========  ======================================

The analyses are deliberately conservative in the *reporting* direction:
the CFG over-approximates executable paths, so ``unreachable-code`` and
``uninit-register-read`` findings are facts, not guesses.  Flow-
sensitive value questions (the data-bounds check) only fire when the
base register provably holds a known constant within the block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.staticcheck.cfg import (
    BRANCH_OPS,
    ControlFlowGraph,
    build_cfg,
)
from repro.staticcheck.diagnostics import Diagnostic, Severity
from repro.workloads.assembler import AssembledProgram
from repro.workloads.isa import Instruction, Op

__all__ = ["check_program", "PROGRAM_RULES"]

#: Every rule :func:`check_program` can emit, for docs and tests.
PROGRAM_RULES = (
    "branch-out-of-range",
    "fall-off-end",
    "no-halt-path",
    "stack-imbalance",
    "data-out-of-bounds",
    "unreachable-code",
    "uninit-register-read",
)

_TRANSFER_OPS = BRANCH_OPS | {Op.JMP, Op.CALL}

#: op -> register fields read ('a' / 'b').
_READS: Dict[int, Tuple[str, ...]] = {
    Op.MOV: ("b",),
    Op.ADD: ("a", "b"), Op.SUB: ("a", "b"), Op.MUL: ("a", "b"),
    Op.DIV: ("a", "b"), Op.MOD: ("a", "b"), Op.AND: ("a", "b"),
    Op.OR: ("a", "b"), Op.XOR: ("a", "b"), Op.SHL: ("a", "b"),
    Op.SHR: ("a", "b"),
    Op.ADDI: ("a",),
    Op.LD: ("b",), Op.LDB: ("b",),
    Op.ST: ("a", "b"), Op.STB: ("a", "b"),
    Op.BEQ: ("a", "b"), Op.BNE: ("a", "b"),
    Op.BLT: ("a", "b"), Op.BGE: ("a", "b"),
    Op.PUSH: ("a",),
}

#: Opcodes that write their ``a`` register.
_WRITES_A = frozenset(
    {
        Op.LI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND,
        Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.ADDI, Op.LD, Op.LDB, Op.POP,
    }
)

#: Memory ops whose effective address is ``regs[b] + imm``.
_MEM_OPS = frozenset({Op.LD, Op.ST, Op.LDB, Op.STB})


def _loc(inst: Instruction) -> str:
    return f"addr {inst.addr:#x}"


def check_program(program: AssembledProgram, name: str = "") -> List[Diagnostic]:
    """Run every static check; returns findings sorted by address."""
    cfg = build_cfg(program)
    diagnostics: List[Diagnostic] = []
    diagnostics += _check_control_targets(cfg, name)
    diagnostics += _check_fall_off_end(cfg, name)
    diagnostics += _check_halt_reachability(cfg, name)
    diagnostics += _check_unreachable(cfg, name)
    diagnostics += _check_register_dataflow(cfg, name)
    diagnostics += _check_stack_balance(cfg, name)
    diagnostics += _check_data_bounds(cfg, name)
    return diagnostics


# -- Control-flow integrity ------------------------------------------------


def _check_control_targets(cfg: ControlFlowGraph, name: str) -> List[Diagnostic]:
    program = cfg.program
    out: List[Diagnostic] = []
    for inst in program.instructions:
        if inst.op not in _TRANSFER_OPS:
            continue
        if inst.imm in program.addr_to_index:
            continue
        kind = "call" if inst.op == Op.CALL else "branch"
        out.append(
            Diagnostic(
                rule="branch-out-of-range",
                severity=Severity.ERROR,
                message=(
                    f"{kind} target {inst.imm:#x} is not an instruction "
                    f"address (code spans {program.code_base:#x}.."
                    f"{program.data_base:#x})"
                ),
                source=name,
                location=_loc(inst),
                data={"target": inst.imm},
            )
        )
    return out


def _check_fall_off_end(cfg: ControlFlowGraph, name: str) -> List[Diagnostic]:
    if not cfg.blocks:
        return []
    program = cfg.program
    last_block = cfg.blocks[-1]
    last = program.instructions[last_block.end - 1]
    if last.op in (Op.HALT, Op.JMP, Op.RET):
        return []
    reason = (
        "a conditional branch can fall through"
        if last.op in BRANCH_OPS
        else f"{'call' if last.op == Op.CALL else 'straight-line code'} "
        "continues past it"
    )
    return [
        Diagnostic(
            rule="fall-off-end",
            severity=Severity.ERROR,
            message=(
                f"execution can fall off the end of the code segment: "
                f"the last instruction is not halt/jmp/ret and {reason}"
            ),
            source=name,
            location=_loc(last),
        )
    ]


def _check_halt_reachability(cfg: ControlFlowGraph, name: str) -> List[Diagnostic]:
    program = cfg.program
    reachable = cfg.reachable_blocks()
    for block_index in reachable:
        block = cfg.blocks[block_index]
        if any(
            inst.op == Op.HALT for inst in block.instructions(program)
        ):
            return []
    return [
        Diagnostic(
            rule="no-halt-path",
            severity=Severity.ERROR,
            message=(
                "no halt instruction is reachable from the entry point: "
                "the program provably never terminates"
            ),
            source=name,
            location=None,
        )
    ]


def _check_unreachable(cfg: ControlFlowGraph, name: str) -> List[Diagnostic]:
    program = cfg.program
    reachable = cfg.reachable_blocks()
    out: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index in reachable:
            continue
        first = program.instructions[block.start]
        last = program.instructions[block.end - 1]
        out.append(
            Diagnostic(
                rule="unreachable-code",
                severity=Severity.WARNING,
                message=(
                    f"{block.size} unreachable instruction(s) at "
                    f"{first.addr:#x}..{last.addr:#x} (dead code)"
                ),
                source=name,
                location=_loc(first),
                data={"instructions": block.size},
            )
        )
    return out


# -- Register dataflow -----------------------------------------------------


def _inst_reads(inst: Instruction) -> Tuple[int, ...]:
    fields = _READS.get(inst.op, ())
    return tuple(getattr(inst, field) for field in fields)


def _check_register_dataflow(cfg: ControlFlowGraph, name: str) -> List[Diagnostic]:
    """Flag reads of registers that *no* path has ever written.

    Forward may-analysis: the written-set at a block entry is the union
    over predecessors, so a read is only flagged when the register is
    unwritten along **every** path — a fact, not a path-sensitivity
    guess.  ``sp`` (r7) starts written: the machine initializes it.
    """
    if not cfg.blocks:
        return []
    program = cfg.program
    entry_mask = 1 << 7  # sp
    maybe_written: List[Optional[int]] = [None] * len(cfg.blocks)
    maybe_written[0] = entry_mask
    worklist = [0]
    while worklist:
        block = cfg.blocks[worklist.pop()]
        mask = maybe_written[block.index]
        for inst in block.instructions(program):
            if inst.op in _WRITES_A:
                mask |= 1 << inst.a
        for successor in block.successors:
            merged = (
                mask
                if maybe_written[successor] is None
                else maybe_written[successor] | mask
            )
            if merged != maybe_written[successor]:
                maybe_written[successor] = merged
                worklist.append(successor)

    out: List[Diagnostic] = []
    flagged = set()
    for block in cfg.blocks:
        mask = maybe_written[block.index]
        if mask is None:  # unreachable; covered by unreachable-code
            continue
        for inst in block.instructions(program):
            for register in _inst_reads(inst):
                if not mask & (1 << register) and (inst.addr, register) not in flagged:
                    flagged.add((inst.addr, register))
                    out.append(
                        Diagnostic(
                            rule="uninit-register-read",
                            severity=Severity.WARNING,
                            message=(
                                f"r{register} is read here but never "
                                "written on any path from the entry point"
                            ),
                            source=name,
                            location=_loc(inst),
                            data={"register": register},
                        )
                    )
            if inst.op in _WRITES_A:
                mask |= 1 << inst.a
    return out


# -- Stack balance ---------------------------------------------------------


def _routine_entries(cfg: ControlFlowGraph) -> List[int]:
    entries = [0] if cfg.blocks else []
    for index in cfg.subroutine_entries():
        if index not in entries:
            entries.append(index)
    return entries


def _check_stack_balance(cfg: ControlFlowGraph, name: str) -> List[Diagnostic]:
    """Check push/pop and call/ret balance within each routine.

    Each routine (the entry point plus every ``call`` target) is walked
    intraprocedurally — a ``call`` inside it is stack-neutral (the
    callee owns its frame), so only the routine's own ``push``/``pop``
    moves the tracked depth.  Findings: a join point reached with two
    different depths, a ``pop`` below the routine's own frame (in a
    subroutine that clobbers the saved return address), and a ``ret``
    with a non-empty frame (the machine would "return" to a data word).
    """
    program = cfg.program
    out: List[Diagnostic] = []
    for entry in _routine_entries(cfg):
        is_subroutine = cfg.blocks[entry].is_call_target
        depth_at: Dict[int, int] = {entry: 0}
        worklist = [entry]
        reported = set()
        while worklist:
            block = cfg.blocks[worklist.pop()]
            depth = depth_at[block.index]
            leave = True  # follow successors unless the block returns
            for inst in block.instructions(program):
                if inst.op == Op.PUSH:
                    depth += 1
                elif inst.op == Op.POP:
                    depth -= 1
                    if depth < 0 and ("pop", inst.addr) not in reported:
                        reported.add(("pop", inst.addr))
                        what = (
                            "the saved return address"
                            if is_subroutine
                            else "a word this routine never pushed"
                        )
                        out.append(
                            Diagnostic(
                                rule="stack-imbalance",
                                severity=Severity.ERROR,
                                message=f"pop below the routine's frame: "
                                f"this pops {what}",
                                source=name,
                                location=_loc(inst),
                                data={"depth": depth},
                            )
                        )
                elif inst.op == Op.RET:
                    leave = False
                    if not is_subroutine and ("ret", inst.addr) not in reported:
                        reported.add(("ret", inst.addr))
                        out.append(
                            Diagnostic(
                                rule="stack-imbalance",
                                severity=Severity.ERROR,
                                message=(
                                    "ret in top-level code: no call ever "
                                    "saved a return address to pop"
                                ),
                                source=name,
                                location=_loc(inst),
                            )
                        )
                    elif depth != 0 and ("ret", inst.addr) not in reported:
                        reported.add(("ret", inst.addr))
                        out.append(
                            Diagnostic(
                                rule="stack-imbalance",
                                severity=Severity.ERROR,
                                message=(
                                    f"ret with {depth} word(s) still on the "
                                    "frame: the machine would return to a "
                                    "data word, not the saved address"
                                ),
                                source=name,
                                location=_loc(inst),
                                data={"depth": depth},
                            )
                        )
                elif inst.op == Op.HALT:
                    leave = False
            if not leave:
                continue
            last = program.instructions[block.end - 1]
            callee_start = (
                program.addr_to_index.get(last.imm)
                if last.op == Op.CALL
                else None
            )
            fallthrough_start = (
                block.end if block.end < len(program.instructions) else None
            )
            for successor in block.successors:
                # Within a routine, skip the call edge: the callee is a
                # separate routine.  The return edge (fall-through)
                # stays — unless the callee *is* the fall-through, in
                # which case the one edge serves as the return edge.
                if (
                    callee_start is not None
                    and callee_start != fallthrough_start
                    and cfg.blocks[successor].start == callee_start
                ):
                    continue
                known = depth_at.get(successor)
                if known is None:
                    depth_at[successor] = depth
                    worklist.append(successor)
                elif known != depth and ("join", successor) not in reported:
                    reported.add(("join", successor))
                    target = program.instructions[cfg.blocks[successor].start]
                    out.append(
                        Diagnostic(
                            rule="stack-imbalance",
                            severity=Severity.ERROR,
                            message=(
                                f"paths join at {target.addr:#x} with "
                                f"different stack depths ({known} vs "
                                f"{depth}): pushes and pops are unbalanced"
                            ),
                            source=name,
                            location=_loc(target),
                            data={"depths": sorted((known, depth))},
                        )
                    )
    return out


# -- Data-segment bounds ---------------------------------------------------


def _check_data_bounds(cfg: ControlFlowGraph, name: str) -> List[Diagnostic]:
    """Flag loads/stores through constant bases outside the data segment.

    Intra-block constant propagation only: a register set by ``li``
    (or derived by ``mov``/``addi`` from one) holds a known byte
    address; a memory access through it with effective address outside
    ``[data_base, data_limit)`` can never touch program data — it reads
    zeros from code space or scribbles under the stack guard.
    """
    program = cfg.program
    out: List[Diagnostic] = []
    for block in cfg.blocks:
        consts: Dict[int, int] = {}
        for inst in block.instructions(program):
            if inst.op in _MEM_OPS and inst.b in consts:
                effective = consts[inst.b] + inst.imm
                if not program.data_base <= effective < program.data_limit:
                    action = "load from" if inst.op in (Op.LD, Op.LDB) else "store to"
                    out.append(
                        Diagnostic(
                            rule="data-out-of-bounds",
                            severity=Severity.ERROR,
                            message=(
                                f"{action} {effective:#x} is provably outside "
                                f"the data segment [{program.data_base:#x}, "
                                f"{program.data_limit:#x})"
                            ),
                            source=name,
                            location=_loc(inst),
                            data={"effective": effective},
                        )
                    )
            # Transfer function for the constant map.
            if inst.op == Op.LI:
                consts[inst.a] = inst.imm
            elif inst.op == Op.ADDI and inst.a in consts:
                consts[inst.a] = consts[inst.a] + inst.imm
            elif inst.op == Op.MOV and inst.b in consts:
                consts[inst.a] = consts[inst.b]
            elif inst.op in _WRITES_A:
                consts.pop(inst.a, None)
    return out
