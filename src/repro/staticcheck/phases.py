"""Static phase analysis: intervals, fingerprints, and sampling plans.

The paper's methodology is whole-trace simulation, which stops scaling
exactly where the paper's own 1M-reference traces live.  The sampling
literature's fix (SimPoint-style representative intervals) is a static
analysis problem: split the trace into fixed-length intervals,
fingerprint each one, cluster the fingerprints, and simulate only one
representative per cluster, weighting its statistics by how much of the
trace the cluster covers.

This module is the *planning* half of that pipeline (the execution half
is :mod:`repro.engine.sampled`):

* **fingerprints** — per-interval basic-block vectors when the trace's
  source program is available (instruction fetches are mapped onto the
  :mod:`repro.staticcheck.cfg` basic blocks with one binary search per
  access), degrading to address-region vectors for synthetic traces;
  both carry a working-set signature scaled by the
  :mod:`repro.staticcheck.locality` footprint when one can be computed.
* **clustering** — deterministic k-means: seeded k-means++ style
  initialisation, stable lowest-index tie-breaking, a fixed iteration
  cap, and empty-cluster repair, so the same trace, interval length,
  ``k`` and seed always produce the same :class:`PhasePlan`.
* **representatives and witnesses** — per cluster, the member closest
  to the centroid is simulated as the representative; the member
  *farthest* from the centroid is kept as a witness, whose disagreement
  with the representative feeds the error bound of
  :class:`repro.engine.sampled.SampledStats`.

Diagnostics use stable ``phase-*`` rule ids so reports and tests can
match on them:

==================  ========  =======================================
rule                severity  meaning
==================  ========  =======================================
``phase-plan``      info      one per plan: interval count, cluster
                              count, simulated fraction, fingerprint
                              source (``cfg`` or ``address``)
``phase-cluster``   info      one per cluster: weight, member count,
                              representative, witness, spread
``phase-singleton`` info      clusters with a single member have no
                              witness, so their contribution to the
                              error bound is blind (docs/sampling.md)
==================  ========  =======================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.staticcheck.diagnostics import Diagnostic, Severity
from repro.trace.record import AccessType
from repro.workloads.assembler import AssembledProgram

__all__ = [
    "DEFAULT_K",
    "SamplingConfig",
    "Phase",
    "PhasePlan",
    "analyze_trace",
]

#: Default number of clusters when the user gives only an interval.
DEFAULT_K = 8

#: Histogram width of each fingerprint half (code half + data half).
_DIM = 32

#: Address-region granularity for the data half and the working-set
#: signature: 64-byte regions, a few blocks at every geometry the paper
#: sweeps.
_REGION_SHIFT = 6

#: k-means iteration cap; plans must terminate deterministically even
#: on adversarial fingerprints.
_MAX_ITERATIONS = 64

#: Fingerprint subsampling target: long intervals are profiled on a
#: deterministic stride keeping ~this many accesses per interval, so
#: planning stays a small constant fraction of exact-simulation cost
#: (it is O(trace) either way, and a plan that costs as much as the
#: simulation it saves is useless).  Intervals at or below this size
#: are profiled exactly.
_SAMPLES_PER_INTERVAL = 256


@dataclass(frozen=True)
class SamplingConfig:
    """User-facing sampling parameters (the ``--sample`` axis).

    Attributes:
        interval: Interval length in accesses (after read filtering).
        k: Cluster count; ``None`` means :data:`DEFAULT_K`, and any
            value is clamped to the number of intervals at plan time.
        seed: Clustering seed; part of the identity because it changes
            which intervals are simulated.
    """

    interval: int
    k: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.interval, int) or isinstance(self.interval, bool):
            raise ConfigurationError(
                f"sample interval must be an int, got {self.interval!r}"
            )
        if self.interval < 1:
            raise ConfigurationError(
                f"sample interval must be >= 1, got {self.interval}"
            )
        if self.k is not None:
            if not isinstance(self.k, int) or isinstance(self.k, bool):
                raise ConfigurationError(
                    f"sample k must be an int or None, got {self.k!r}"
                )
            if self.k < 1:
                raise ConfigurationError(f"sample k must be >= 1, got {self.k}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(
                f"sample seed must be an int, got {self.seed!r}"
            )

    def key(self) -> str:
        """Canonical identity string, folded into sweep fingerprints.

        Two cells with different sampling parameters (or one sampled and
        one exact) must never share a fingerprint, so everything that
        changes which intervals are simulated is in the key.
        """
        k = "auto" if self.k is None else str(self.k)
        return f"i{self.interval},k{k},s{self.seed}"

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "SamplingConfig":
        """Parse the CLI form ``INTERVAL`` or ``INTERVAL,K``."""
        parts = [part.strip() for part in str(text).split(",")]
        if len(parts) not in (1, 2) or not all(parts):
            raise ConfigurationError(
                f"--sample expects INTERVAL or INTERVAL,K, got {text!r}"
            )
        try:
            interval = int(parts[0])
            k = int(parts[1]) if len(parts) == 2 else None
        except ValueError:
            raise ConfigurationError(
                f"--sample expects integers, got {text!r}"
            ) from None
        return cls(interval=interval, k=k, seed=seed)

    @classmethod
    def coerce(
        cls,
        value: Union["SamplingConfig", str, Mapping[str, Any], None],
    ) -> Optional["SamplingConfig"]:
        """Accept the config, its CLI string, its dict form, or None."""
        if value is None or isinstance(value, SamplingConfig):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"interval", "k", "seed"}
            if unknown:
                raise ConfigurationError(
                    f"unknown sample keys {sorted(unknown)}; "
                    "expected interval, k, seed"
                )
            if "interval" not in value:
                raise ConfigurationError(
                    "sample config requires an 'interval' key"
                )
            return cls(
                interval=value["interval"],
                k=value.get("k"),
                seed=value.get("seed", 0),
            )
        raise ConfigurationError(
            f"cannot interpret {value!r} as a sampling config"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"interval": self.interval, "k": self.k, "seed": self.seed}


@dataclass(frozen=True)
class Phase:
    """One cluster of the plan: what it covers and who stands for it.

    Attributes:
        index: Stable phase id, ordered by first member interval.
        members: Interval indices assigned to this cluster.
        representative: The member closest to the cluster centroid —
            the only member the sampled engine must simulate.
        witness: The member farthest from the centroid (``None`` for
            singleton clusters); its disagreement with the
            representative calibrates the error bound.
        accesses: Total accesses across all members.
        weight: ``accesses`` over the whole trace length.
        spread: Largest member-to-centroid distance in fingerprint
            space — 0.0 means the cluster is homogeneous.
    """

    index: int
    members: Tuple[int, ...]
    representative: int
    witness: Optional[int]
    accesses: int
    weight: float
    spread: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "members": list(self.members),
            "representative": self.representative,
            "witness": self.witness,
            "accesses": self.accesses,
            "weight": self.weight,
            "spread": self.spread,
        }


@dataclass(frozen=True)
class PhasePlan:
    """The full sampling plan for one prepared trace.

    Attributes:
        trace_name: Name of the analyzed trace.
        trace_length: Accesses in the analyzed trace.
        interval_length: Requested interval length.
        intervals: Number of intervals (``ceil(length / interval)``).
        k: Effective cluster count (after clamping to ``intervals``).
        seed: Clustering seed.
        source: ``"cfg"`` when fingerprints used the program's basic
            blocks, ``"address"`` for the synthetic-trace fallback.
        phases: The clusters, ordered by first member interval.
    """

    trace_name: str
    trace_length: int
    interval_length: int
    intervals: int
    k: int
    seed: int
    source: str
    phases: Tuple[Phase, ...]

    def bounds(self, interval: int) -> Tuple[int, int]:
        """Access range ``[start, end)`` of one interval index."""
        if not 0 <= interval < self.intervals:
            raise ConfigurationError(
                f"interval {interval} out of range [0, {self.intervals})"
            )
        start = interval * self.interval_length
        return start, min(start + self.interval_length, self.trace_length)

    @property
    def simulated_intervals(self) -> int:
        """Intervals the sampled engine actually runs (reps + witnesses)."""
        return sum(
            1 + (1 if phase.witness is not None else 0)
            for phase in self.phases
        )

    @property
    def simulated_accesses(self) -> int:
        total = 0
        for phase in self.phases:
            start, end = self.bounds(phase.representative)
            total += end - start
            if phase.witness is not None:
                start, end = self.bounds(phase.witness)
                total += end - start
        return total

    @property
    def simulated_fraction(self) -> float:
        if self.trace_length == 0:
            return 0.0
        return self.simulated_accesses / self.trace_length

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_name,
            "trace_length": self.trace_length,
            "interval_length": self.interval_length,
            "intervals": self.intervals,
            "k": self.k,
            "seed": self.seed,
            "source": self.source,
            "simulated_intervals": self.simulated_intervals,
            "simulated_fraction": self.simulated_fraction,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    def diagnostics(self) -> List[Diagnostic]:
        """The plan's stable ``phase-*`` findings (all info severity)."""
        source = f"phases:{self.trace_name}"
        findings = [
            Diagnostic(
                rule="phase-plan",
                severity=Severity.INFO,
                message=(
                    f"{self.intervals} intervals of {self.interval_length} "
                    f"accesses clustered into {len(self.phases)} phases; "
                    f"sampled simulation runs {self.simulated_intervals} "
                    f"intervals ({self.simulated_fraction:.1%} of the "
                    f"trace) from {self.source} fingerprints"
                ),
                source=source,
                location="plan",
                data={
                    "intervals": self.intervals,
                    "interval_length": self.interval_length,
                    "k": self.k,
                    "seed": self.seed,
                    "source": self.source,
                    "simulated_intervals": self.simulated_intervals,
                    "simulated_fraction": self.simulated_fraction,
                },
            )
        ]
        for phase in self.phases:
            findings.append(
                Diagnostic(
                    rule="phase-cluster",
                    severity=Severity.INFO,
                    message=(
                        f"phase {phase.index}: {len(phase.members)} "
                        f"interval(s), weight {phase.weight:.3f}, "
                        f"representative {phase.representative}, "
                        + (
                            f"witness {phase.witness}"
                            if phase.witness is not None
                            else "no witness (singleton)"
                        )
                    ),
                    source=source,
                    location=f"phase {phase.index}",
                    data=phase.to_dict(),
                )
            )
        singletons = [
            phase.index for phase in self.phases if phase.witness is None
        ]
        if singletons:
            findings.append(
                Diagnostic(
                    rule="phase-singleton",
                    severity=Severity.INFO,
                    message=(
                        f"{len(singletons)} cluster(s) have a single "
                        "member and therefore no witness; their share of "
                        "the error bound rests on cold-start suspects "
                        "alone (docs/sampling.md)"
                    ),
                    source=source,
                    location="plan",
                    data={"phases": singletons},
                )
            )
        return findings


def _interval_bounds(length: int, interval: int) -> List[Tuple[int, int]]:
    return [
        (start, min(start + interval, length))
        for start in range(0, length, interval)
    ]


def _block_starts(program: AssembledProgram) -> Any:
    """Sorted byte addresses of every basic-block start."""
    from repro.staticcheck.cfg import build_cfg

    cfg = build_cfg(program)
    starts = sorted(
        program.instructions[block.start].addr
        for block in cfg.blocks
        if block.size > 0
    )
    return np.asarray(starts, dtype=np.int64)


def _fingerprints(
    trace: Any,
    bounds: Sequence[Tuple[int, int]],
    program: Optional[AssembledProgram],
) -> Any:
    """Per-interval fingerprint matrix, one row per interval.

    Row layout: ``_DIM`` basic-block (or code-region) histogram bins,
    ``_DIM`` data-region histogram bins — each half normalized by the
    interval's profiled access count — plus one working-set feature:
    the interval's distinct 64-byte regions scaled by the program's
    static footprint (or by profiled count for synthetic traces).

    Long intervals are profiled on a deterministic stride
    (~:data:`_SAMPLES_PER_INTERVAL` accesses per interval); intervals
    at or below that size are profiled exactly.
    """
    count_full = len(trace.addrs)
    rows_n = len(bounds)
    interval = bounds[0][1] - bounds[0][0] if rows_n else 1
    stride = max(1, interval // _SAMPLES_PER_INTERVAL)
    picks = np.arange(0, count_full, stride, dtype=np.int64)

    addrs = np.asarray(trace.addrs, dtype=np.int64)[picks]
    kinds = np.asarray(trace.kinds)[picks]
    fetch_mask = kinds == int(AccessType.IFETCH)
    region = (addrs >> _REGION_SHIFT).astype(np.int64)

    if program is not None:
        starts = _block_starts(program)
        if len(starts):
            block_index = np.searchsorted(starts, addrs, side="right") - 1
            block_index = np.clip(block_index, 0, len(starts) - 1)
            code_bins = block_index % _DIM
        else:  # pragma: no cover - a program always has one block
            code_bins = region % _DIM
        from repro.staticcheck.locality import footprint

        footprint_bytes = max(footprint(program).total_bytes, 1)
    else:
        code_bins = region % _DIM
        footprint_bytes = 0
    data_bins = region % _DIM

    # One batched bincount per histogram half (composite row*_DIM+bin
    # index) and one composite-key sort for the per-interval
    # distinct-region counts — the whole matrix in O(n log n) NumPy
    # work over the strided sample, no Python loop over intervals.
    count = len(addrs)
    rows = np.minimum(picks // max(interval, 1), rows_n - 1)
    spans = np.maximum(np.bincount(rows, minlength=rows_n), 1)

    matrix = np.zeros((rows_n, 2 * _DIM + 1), dtype=np.float64)
    code_hist = np.bincount(
        rows[fetch_mask] * _DIM + code_bins[fetch_mask],
        minlength=rows_n * _DIM,
    ).reshape(rows_n, _DIM)
    data_hist = np.bincount(
        rows[~fetch_mask] * _DIM + data_bins[~fetch_mask],
        minlength=rows_n * _DIM,
    ).reshape(rows_n, _DIM)
    matrix[:, :_DIM] = code_hist / spans[:, None]
    matrix[:, _DIM : 2 * _DIM] = data_hist / spans[:, None]

    shift = int(region.max()).bit_length() if count else 1
    composite = np.sort((rows << shift) | region) if count else rows
    fresh = np.ones(count, dtype=bool)
    fresh[1:] = composite[1:] != composite[:-1]
    distinct = np.bincount(
        (composite[fresh] >> shift).astype(np.int64), minlength=rows_n
    )
    if footprint_bytes:
        working_set = distinct * (1 << _REGION_SHIFT) / footprint_bytes
    else:
        working_set = distinct / spans
    matrix[:, 2 * _DIM] = np.minimum(working_set, 4.0)
    return matrix


def _kmeans(matrix: Any, k: int, seed: int) -> Tuple[Any, Any]:
    """Deterministic k-means; returns (assignments, centroids).

    Seeded k-means++ style initialisation, lowest-index tie-breaking
    everywhere (``argmin``/``argmax`` take the first maximum), empty
    clusters repaired with the globally worst-fit point, and a fixed
    iteration cap — the same inputs always yield the same clustering.
    """
    count = int(matrix.shape[0])
    rng = random.Random(seed)
    centers = [rng.randrange(count)]
    distance_sq = ((matrix - matrix[centers[0]]) ** 2).sum(axis=1)
    while len(centers) < k:
        total = float(distance_sq.sum())
        if total <= 0.0:
            fallback = next(
                (j for j in range(count) if j not in centers), None
            )
            if fallback is None:
                break
            centers.append(fallback)
        else:
            pick = rng.random() * total
            index = int(
                np.searchsorted(np.cumsum(distance_sq), pick, side="right")
            )
            centers.append(min(index, count - 1))
        new_sq = ((matrix - matrix[centers[-1]]) ** 2).sum(axis=1)
        distance_sq = np.minimum(distance_sq, new_sq)

    centroids = matrix[np.asarray(centers)].copy()
    k = centroids.shape[0]
    assignments = np.full(count, -1, dtype=np.int64)
    for _ in range(_MAX_ITERATIONS):
        distances = (
            (matrix[:, None, :] - centroids[None, :, :]) ** 2
        ).sum(axis=2)
        proposed = distances.argmin(axis=1)
        for cluster in range(k):
            if not (proposed == cluster).any():
                worst = int(
                    distances[np.arange(count), proposed].argmax()
                )
                proposed[worst] = cluster
        if (proposed == assignments).all():
            break
        assignments = proposed
        for cluster in range(k):
            members = matrix[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return assignments, centroids


def analyze_trace(
    trace: Any,
    interval: int,
    k: Optional[int] = None,
    seed: int = 0,
    program: Optional[AssembledProgram] = None,
) -> PhasePlan:
    """Build the sampling plan for one (already prepared) trace.

    Args:
        trace: The trace the sampled engine will see — apply read
            filtering *before* analysis so interval indices line up
            with what is simulated.
        interval: Interval length in accesses.
        k: Cluster count; ``None`` for :data:`DEFAULT_K`.  Clamped to
            the interval count (a ``sample-k-exceeds-intervals`` lint
            warns about the clamp ahead of time).
        seed: Clustering seed.
        program: The trace's source program, when known — enables
            basic-block fingerprints; ``None`` falls back to
            address-region fingerprints (synthetic traces).

    Raises:
        ConfigurationError: Empty trace or non-positive interval.
    """
    length = len(trace)
    if length == 0:
        raise ConfigurationError(
            f"cannot build a phase plan for empty trace "
            f"{getattr(trace, 'name', '')!r}"
        )
    config = SamplingConfig(interval=interval, k=k, seed=seed)
    bounds = _interval_bounds(length, config.interval)
    intervals = len(bounds)
    effective_k = min(config.k if config.k is not None else DEFAULT_K, intervals)

    matrix = _fingerprints(trace, bounds, program)
    assignments, centroids = _kmeans(matrix, effective_k, config.seed)

    cluster_ids = sorted(
        set(int(c) for c in assignments),
        key=lambda c: int(np.where(assignments == c)[0][0]),
    )
    phases: List[Phase] = []
    for new_index, cluster in enumerate(cluster_ids):
        members = np.where(assignments == cluster)[0]
        member_dist = np.sqrt(
            ((matrix[members] - centroids[cluster]) ** 2).sum(axis=1)
        )
        representative = int(members[int(member_dist.argmin())])
        witness: Optional[int] = None
        if len(members) > 1:
            for candidate in members[np.argsort(-member_dist, kind="stable")]:
                if int(candidate) != representative:
                    witness = int(candidate)
                    break
        accesses = sum(
            bounds[int(member)][1] - bounds[int(member)][0]
            for member in members
        )
        phases.append(
            Phase(
                index=new_index,
                members=tuple(int(member) for member in members),
                representative=representative,
                witness=witness,
                accesses=accesses,
                weight=accesses / length,
                spread=float(member_dist.max()) if len(member_dist) else 0.0,
            )
        )

    return PhasePlan(
        trace_name=str(getattr(trace, "name", "")),
        trace_length=length,
        interval_length=config.interval,
        intervals=intervals,
        k=len(phases),
        seed=config.seed,
        source="cfg" if program is not None else "address",
        phases=tuple(phases),
    )
