"""Structured diagnostics shared by every static-analysis layer.

A :class:`Diagnostic` is one finding: a stable ``rule`` identifier (the
thing tests and CI gates key on), a :class:`Severity`, a human message,
and a source location (program name + line / instruction address for
the program checks, a field or axis name for the config lint).

:class:`~repro.errors.StaticCheckError` carries a list of these through
the existing :class:`~repro.errors.ConfigurationError` channel, so the
HTTP layer's 400 mapping and every ``except ConfigurationError`` caller
keep working while gaining machine-readable findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import StaticCheckError

__all__ = [
    "Severity",
    "Diagnostic",
    "error_count",
    "format_diagnostics",
    "raise_on_errors",
]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail preflight (the runner refuses the sweep,
    the service answers 400, ``repro lint`` exits non-zero).
    ``WARNING`` findings are reported but never block execution.
    ``INFO`` findings are purely observational — coverage and planning
    reports (e.g. the ``sweep-stackdist-*`` rules) that carry numbers,
    not judgements.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - presentation sugar
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        rule: Stable rule identifier, e.g. ``"branch-out-of-range"``
            or ``"geom-sub-gt-block"`` (see ``docs/staticcheck.md``
            for the catalogue).
        severity: :class:`Severity` of the finding.
        message: Human-readable description.
        source: What was analyzed — a program name, ``"geometry"``,
            a sweep axis.
        location: Where in the source — ``"addr 0x10c"`` for an
            instruction, a field name for a config value, ``None``
            when the finding is about the whole source.
        data: Optional structured payload (offending values, targets).
    """

    rule: str
    severity: Severity
    message: str
    source: str = ""
    location: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the service's 400 payload, ``lint --format json``)."""
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "source": self.source,
        }
        if self.location is not None:
            payload["location"] = self.location
        if self.data:
            payload["data"] = dict(self.data)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Diagnostic":
        """Rebuild a finding from its :meth:`to_dict` form.

        Strict, like :meth:`repro.core.stats.CacheStats.from_dict`:
        the four always-emitted keys must be present, only the two
        optional keys may be absent, and anything else is rejected —
        a schema drift between writer and reader should fail loudly,
        not produce a half-empty finding.

        Raises:
            ValueError: On missing required keys, unknown keys, or an
                unknown severity value.
        """
        required = {"rule", "severity", "message", "source"}
        optional = {"location", "data"}
        keys = set(payload)
        missing = sorted(required - keys)
        unknown = sorted(keys - required - optional)
        if missing or unknown:
            raise ValueError(
                "diagnostic payload mismatch: "
                f"missing keys {missing}, unknown keys {unknown}"
            )
        try:
            severity = Severity(payload["severity"])
        except ValueError:
            raise ValueError(
                f"unknown severity {payload['severity']!r}; expected one of "
                f"{[level.value for level in Severity]}"
            ) from None
        return cls(
            rule=payload["rule"],
            severity=severity,
            message=payload["message"],
            source=payload["source"],
            location=payload.get("location"),
            data=dict(payload.get("data", {})),
        )

    def render(self) -> str:
        """One-line ``source:location: severity [rule] message`` form."""
        where = self.source
        if self.location:
            where = f"{where}:{self.location}" if where else self.location
        prefix = f"{where}: " if where else ""
        return f"{prefix}{self.severity.value} [{self.rule}] {self.message}"


def error_count(diagnostics: Iterable[Diagnostic]) -> int:
    """Number of error-severity findings."""
    return sum(1 for diagnostic in diagnostics if diagnostic.is_error)


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings one per line, errors first."""
    ordered = sorted(
        diagnostics, key=lambda diagnostic: (not diagnostic.is_error,)
    )
    return "\n".join(diagnostic.render() for diagnostic in ordered)


def raise_on_errors(
    diagnostics: Sequence[Diagnostic], context: str
) -> List[Diagnostic]:
    """Raise :class:`StaticCheckError` if any finding is an error.

    Returns the diagnostics unchanged when none are errors, so callers
    can thread warnings through after the gate.
    """
    errors = [diagnostic for diagnostic in diagnostics if diagnostic.is_error]
    if errors:
        summary = "; ".join(
            f"[{diagnostic.rule}] {diagnostic.message}" for diagnostic in errors[:3]
        )
        if len(errors) > 3:
            summary += f" (+{len(errors) - 3} more)"
        raise StaticCheckError(
            f"{context}: {summary}", diagnostics=list(diagnostics)
        )
    return list(diagnostics)
