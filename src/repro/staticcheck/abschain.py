"""Hierarchical must/may analysis through the miss-path chain.

:mod:`repro.staticcheck.abscache` proves, per reference site, how the
*L1* behaves.  This module lifts the same Ferdinand-style fixpoint
through the PR 7 miss-path chain, so a site proven ``always-miss`` in
L1 can still be proven to cost nothing on the memory bus:

* :class:`~repro.core.misspath.VictimCache` — a fully-associative
  must/may age domain over evicted blocks, modeling the L1↔VC swap:
  entries are inserted by (possibly) evicted same-set blocks and
  consumed by probe hits;
* :class:`~repro.core.misspath.MissCache` — a tag-set must/may
  over-approximation (the structure is tag-only, so masks are moot);
* :class:`~repro.core.misspath.StreamBufferSet` — a sequential-window
  domain: per recency rank, an interval of block addresses the buffer
  provably holds, plus a may-side union of intervals it can hold;
* :class:`~repro.core.misspath.BackingL2` — a derived-geometry
  must/may/persistence triple at the L2's own block/sub-block shape.

Composing the domains in chain order yields one *hierarchical*
classification per site (:class:`ChainSiteClass`): ``L1-hit``,
``chain-hit@<structure>``, ``memory-bound``, ``first-miss``, or
``unclassified``.  From the classification plus static execution-count
bounds (trivial-SCC blocks run at most once; counted loops detected
from the CFG contribute exact trip counts; dominators of every halt
give lower bounds) the module derives closed-form ``[lo, hi]`` bounds
on every :class:`~repro.core.misspath.MissPathStats` counter —
including ``memory_bytes_fetched``, the paper's bus-traffic metric.

Soundness is pinned end to end by :func:`verify_classification`: the
program runs on the machine, the trace replays cold through a concrete
chained :class:`~repro.core.cache.SubBlockCache` (or the sanitizing
:class:`~repro.engine.checked.CheckedCache` under ``REPRO_SANITIZE``),
every access is attributed to its site, each proof is checked against
the observed servicing structure, and every simulated counter is
checked against its static bound.  See ``docs/staticcheck.md``.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.block import mask_of_range
from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy, make_fetch
from repro.core.misspath import MissPathConfig
from repro.errors import ConfigurationError
from repro.staticcheck.abscache import (
    SiteClass,
    StateExtension,
    _AbsState,
    _Analyzer,
    _analyze,
    _resolve_fetch,
    _site_sort_key,
    _walk_instruction,
    _REG_WRITERS,
)
from repro.staticcheck.cfg import ControlFlowGraph, Loop
from repro.staticcheck.checks import check_program
from repro.staticcheck.diagnostics import Diagnostic, Severity, raise_on_errors
from repro.trace.record import AccessType
from repro.workloads.assembler import AssembledProgram
from repro.workloads.isa import Op
from repro.workloads.machine import Machine

__all__ = [
    "ChainSiteClass",
    "ChainSiteResult",
    "ChainClassificationReport",
    "ChainVerificationResult",
    "classify_chain_program",
    "verify_classification",
    "verify_chain_classification",
    "predict_chain_knee",
    "lint_chain_report",
]

#: A closed-form counter bound; ``None`` as the upper end means the
#: analysis cannot bound the counter (an unbounded loop or recursion).
Bound = Tuple[int, Optional[int]]

#: Interval count past which the stream-buffer may-side collapses to
#: TOP instead of tracking ever more windows.
_SB_MAY_CAP = 32

#: Counted-loop trip counts beyond this are treated as unbounded; the
#: closed-form simulation below must terminate quickly.
_TRIP_CAP = 1_000_000


_BRANCH_OPS = (Op.BEQ, Op.BNE, Op.BLT, Op.BGE)


def _popcount(value: int) -> int:
    """Number of set bits (``int.bit_count`` needs Python >= 3.10)."""
    return bin(value).count("1")


class ChainSiteClass(enum.Enum):
    """Hierarchical classification of one reference site."""

    L1_HIT = "L1-hit"
    CHAIN_HIT_VICTIM = "chain-hit@victim"
    CHAIN_HIT_MISS = "chain-hit@miss"
    CHAIN_HIT_STREAM = "chain-hit@stream"
    CHAIN_HIT_L2 = "chain-hit@l2"
    MEMORY_BOUND = "memory-bound"
    FIRST_MISS = "first-miss"
    UNCLASSIFIED = "unclassified"

    def __str__(self) -> str:  # pragma: no cover - presentation sugar
        return self.value

    @property
    def rule_id(self) -> str:
        """Stable diagnostic rule id (no ``@`` — rule ids are slugs)."""
        return "abschain-" + self.name.lower().replace("_", "-")


#: Structure name -> the chain-hit class naming it.
_CHAIN_HIT_OF = {
    "victim": ChainSiteClass.CHAIN_HIT_VICTIM,
    "miss": ChainSiteClass.CHAIN_HIT_MISS,
    "stream": ChainSiteClass.CHAIN_HIT_STREAM,
    "l2": ChainSiteClass.CHAIN_HIT_L2,
}

#: Classes that stop costing memory traffic in steady state.
_SETTLED_CLASSES = frozenset(
    {
        ChainSiteClass.L1_HIT,
        ChainSiteClass.CHAIN_HIT_VICTIM,
        ChainSiteClass.CHAIN_HIT_MISS,
        ChainSiteClass.CHAIN_HIT_STREAM,
        ChainSiteClass.CHAIN_HIT_L2,
        ChainSiteClass.FIRST_MISS,
    }
)


@dataclass(frozen=True)
class ChainSiteResult:
    """Hierarchical classification of one reference site.

    Attributes:
        site: Stable site key ``"<instruction index>:<role>"``.
        instr_addr: Byte address of the owning instruction.
        kind: ``"ifetch"``, ``"read"``, or ``"write"``.
        l1: The single-level :class:`SiteClass` (the PR 5 proof).
        classification: The hierarchical :class:`ChainSiteClass`.
        target: Referenced byte address when statically known.
        reason: Short human-readable justification for the chain proof.
    """

    site: str
    instr_addr: int
    kind: str
    l1: SiteClass
    classification: ChainSiteClass
    target: Optional[int] = None
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "site": self.site,
            "instr_addr": self.instr_addr,
            "kind": self.kind,
            "l1_class": self.l1.value,
            "class": self.classification.value,
        }
        if self.target is not None:
            payload["target"] = self.target
        if self.reason:
            payload["reason"] = self.reason
        return payload


@dataclass(frozen=True)
class ChainClassificationReport:
    """Every site of one program classified through one chain."""

    name: str
    word_size: int
    stack_words: int
    fetch: str
    net_size: int
    block_size: int
    sub_block_size: int
    associativity: int
    miss_path: MissPathConfig
    sites: Tuple[ChainSiteResult, ...] = ()
    bounds: Tuple[Tuple[str, Bound], ...] = ()

    @property
    def counts(self) -> Dict[str, int]:
        """Site count per hierarchical classification value."""
        out = {cls.value: 0 for cls in ChainSiteClass}
        for site in self.sites:
            out[site.classification.value] += 1
        return out

    @property
    def classified_fraction(self) -> float:
        """Fraction of sites with some hierarchical proof."""
        if not self.sites:
            return 1.0
        proven = sum(
            1
            for site in self.sites
            if site.classification is not ChainSiteClass.UNCLASSIFIED
        )
        return proven / len(self.sites)

    def geometry(self) -> CacheGeometry:
        """The L1 geometry the report was computed for."""
        return CacheGeometry(
            net_size=self.net_size,
            block_size=self.block_size,
            sub_block_size=self.sub_block_size,
            associativity=self.associativity,
        )

    def bound(self, key: str) -> Optional[Bound]:
        """The ``[lo, hi]`` bound for one counter key, if computed."""
        for name, value in self.bounds:
            if name == key:
                return value
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; key order and site order are deterministic."""
        return {
            "schema_version": 1,
            "name": self.name,
            "word_size": self.word_size,
            "stack_words": self.stack_words,
            "fetch": self.fetch,
            "geometry": {
                "net_size": self.net_size,
                "block_size": self.block_size,
                "sub_block_size": self.sub_block_size,
                "associativity": self.associativity,
            },
            "miss_path": {
                "key": self.miss_path.key(),
                "config": self.miss_path.to_dict(),
            },
            "counts": self.counts,
            "total_sites": len(self.sites),
            "classified_fraction": self.classified_fraction,
            "bounds": {
                key: [bound[0], bound[1]]
                for key, bound in sorted(self.bounds)
            },
            "sites": [site.to_dict() for site in self.sites],
        }

    def to_diagnostics(self) -> List[Diagnostic]:
        """Per-site findings (site order) plus chain-level lint."""
        out: List[Diagnostic] = []
        for site in self.sites:
            data: Dict[str, Any] = {
                "site": site.site,
                "kind": site.kind,
                "l1_class": site.l1.value,
            }
            if site.target is not None:
                data["target"] = site.target
            out.append(
                Diagnostic(
                    rule=site.classification.rule_id,
                    severity=Severity.WARNING,
                    message=(
                        f"{site.kind} reference is "
                        f"{site.classification.value}"
                        + (f": {site.reason}" if site.reason else "")
                    ),
                    source=self.name,
                    location=f"addr {site.instr_addr:#x}",
                    data=data,
                )
            )
        out.extend(lint_chain_report(self))
        return out

    def proof_rows(self) -> List[Dict[str, Any]]:
        """One row per chain structure for the CLI proof table."""
        rows: List[Dict[str, Any]] = []
        for name in self.miss_path.chain_names:
            hit_cls = _CHAIN_HIT_OF[name]
            rows.append(
                {
                    "structure": name,
                    "proven_hits": sum(
                        1
                        for site in self.sites
                        if site.classification is hit_cls
                    ),
                    "probes": self.bound(f"{name}.probes"),
                    "hits": self.bound(f"{name}.hits"),
                    "fills": self.bound(f"{name}.fills"),
                    "evictions": self.bound(f"{name}.evictions"),
                }
            )
        return rows


@dataclass(frozen=True)
class ChainVerificationResult:
    """Outcome of differentially checking chain proofs and bounds.

    Attributes:
        ok: True when nothing was contradicted.
        accesses: Trace accesses replayed (all attributed).
        checked: Accesses that landed on a site with a chain proof.
        unclassified_accesses: Accesses on ``unclassified`` sites.
        violations: ``(site, occurrence, expected, observed)`` tuples.
        bound_violations: ``(counter, lo, hi, observed)`` tuples.
        halted: True when the machine run halted (lower bounds are
            only checked for halted runs; a truncated run checks a
            prefix against the upper bounds, which stay sound).
        sanitized: True when the replay used the checked engine.
    """

    ok: bool
    accesses: int
    checked: int
    unclassified_accesses: int
    violations: Tuple[Tuple[str, int, str, str], ...] = ()
    bound_violations: Tuple[Tuple[str, int, Optional[int], int], ...] = ()
    halted: bool = True
    sanitized: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "accesses": self.accesses,
            "checked": self.checked,
            "unclassified_accesses": self.unclassified_accesses,
            "violations": [list(item) for item in self.violations],
            "bound_violations": [
                list(item) for item in self.bound_violations
            ],
            "halted": self.halted,
            "sanitized": self.sanitized,
        }


# -- Chain abstract domains -------------------------------------------------


def _merge_intervals(
    intervals: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Sort and coalesce touching/overlapping ``(lo, hi)`` intervals."""
    if not intervals:
        return []
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1] + 1:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


class _ChainExt(StateExtension):
    """Per-program-point abstract state of every chain structure.

    Domains (all optional structures keep empty domains when absent):

    * ``vc_must``: ``{block: (age upper bound, guaranteed mask)}`` —
      entries guaranteed resident in the victim cache with at least
      the guaranteed sub-blocks valid.  ``vc_may``/``vc_top``: the
      blocks (and masks) that *can* be resident; TOP = anything.
    * ``mc_must``: ``{block: age upper bound}`` guaranteed miss-cache
      tags; ``mc_may``/``mc_top`` the possible tag set.
    * ``windows``: recency-ranked stream-buffer claims — entry ``i``
      says the rank-``i`` buffer's pending queue contains at least the
      block interval; ``None`` = no claim.  ``sb_may``/``sb_top``: the
      union of intervals any buffer can hold.
    * ``l2_must``: ``{L2 block: (age upper bound, guaranteed mask)}``
      at the L2's own geometry; ``l2_may`` the possible contents
      (``None`` = TOP; no ages — the set only grows, which is sound);
      ``l2_pers`` the L2 persistence markers (sticky at L2 ways).
    """

    __slots__ = (
        "vc_must", "vc_may", "vc_top",
        "mc_must", "mc_may", "mc_top",
        "windows", "sb_may", "sb_top",
        "l2_must", "l2_may", "l2_pers",
    )

    def __init__(self) -> None:
        self.vc_must: Dict[int, Tuple[int, int]] = {}
        self.vc_may: Dict[int, int] = {}
        self.vc_top = False
        self.mc_must: Dict[int, int] = {}
        self.mc_may: Set[int] = set()
        self.mc_top = False
        self.windows: List[Optional[Tuple[int, int]]] = []
        self.sb_may: List[Tuple[int, int]] = []
        self.sb_top = False
        self.l2_must: Dict[int, Tuple[int, int]] = {}
        self.l2_may: Optional[Dict[int, int]] = {}
        self.l2_pers: Dict[int, int] = {}

    def copy(self) -> "_ChainExt":
        out = _ChainExt()
        out.vc_must = dict(self.vc_must)
        out.vc_may = dict(self.vc_may)
        out.vc_top = self.vc_top
        out.mc_must = dict(self.mc_must)
        out.mc_may = set(self.mc_may)
        out.mc_top = self.mc_top
        out.windows = list(self.windows)
        out.sb_may = list(self.sb_may)
        out.sb_top = self.sb_top
        out.l2_must = dict(self.l2_must)
        out.l2_may = None if self.l2_may is None else dict(self.l2_may)
        out.l2_pers = dict(self.l2_pers)
        return out

    def snapshot(self) -> Tuple[Any, ...]:
        return (
            tuple(sorted(self.vc_must.items())),
            tuple(sorted(self.vc_may.items())),
            self.vc_top,
            tuple(sorted(self.mc_must.items())),
            tuple(sorted(self.mc_may)),
            self.mc_top,
            tuple(self.windows),
            tuple(self.sb_may),
            self.sb_top,
            tuple(sorted(self.l2_must.items())),
            None
            if self.l2_may is None
            else tuple(sorted(self.l2_may.items())),
            tuple(sorted(self.l2_pers.items())),
        )

    def join_into(self, source: "StateExtension") -> None:
        assert isinstance(source, _ChainExt)
        # Victim cache: intersect must (weakest age, common mask);
        # union may; TOP absorbs and empties the may container.
        new_vc_must: Dict[int, Tuple[int, int]] = {}
        for block, (age, valid) in self.vc_must.items():
            other = source.vc_must.get(block)
            if other is not None:
                new_vc_must[block] = (max(age, other[0]), valid & other[1])
        self.vc_must = new_vc_must
        if self.vc_top or source.vc_top:
            self.vc_top = True
            self.vc_may = {}
        else:
            for block, valid in source.vc_may.items():
                self.vc_may[block] = self.vc_may.get(block, 0) | valid
        # Miss cache.
        new_mc_must: Dict[int, int] = {}
        for block, age in self.mc_must.items():
            other_age = source.mc_must.get(block)
            if other_age is not None:
                new_mc_must[block] = max(age, other_age)
        self.mc_must = new_mc_must
        if self.mc_top or source.mc_top:
            self.mc_top = True
            self.mc_may = set()
        else:
            self.mc_may |= source.mc_may
        # Stream buffers: positional intersection of claims (a rank
        # with disagreeing claims keeps only the common sub-interval).
        joined: List[Optional[Tuple[int, int]]] = []
        for mine, theirs in zip(self.windows, source.windows):
            if mine is None or theirs is None:
                joined.append(None)
            else:
                lo = max(mine[0], theirs[0])
                hi = min(mine[1], theirs[1])
                joined.append((lo, hi) if lo <= hi else None)
        self.windows = joined
        if self.sb_top or source.sb_top:
            self.sb_top = True
            self.sb_may = []
        else:
            self.sb_may = _merge_intervals(self.sb_may + source.sb_may)
            if len(self.sb_may) > _SB_MAY_CAP:
                self.sb_top = True
                self.sb_may = []
        # Backing L2.
        new_l2_must: Dict[int, Tuple[int, int]] = {}
        for block, (age, valid) in self.l2_must.items():
            other2 = source.l2_must.get(block)
            if other2 is not None:
                new_l2_must[block] = (max(age, other2[0]), valid & other2[1])
        self.l2_must = new_l2_must
        if self.l2_may is None or source.l2_may is None:
            self.l2_may = None
        else:
            for block, valid in source.l2_may.items():
                self.l2_may[block] = self.l2_may.get(block, 0) | valid
        for block, age in source.l2_pers.items():
            mine_age = self.l2_pers.get(block)
            if mine_age is None or age > mine_age:
                self.l2_pers[block] = age


# -- Event and walk facts ---------------------------------------------------


class _Event:
    """One *possible* chain consultation by an L1 read/ifetch piece.

    All fields describe the demand miss the L1 would present to the
    chain, bounded over every concrete execution reaching the site:

    Attributes:
        block: The L1 block address of the piece.
        definite: The event fires on *every* execution (the piece is a
            proven L1 miss); otherwise it merely may fire.
        block_miss_possible: The miss can be a block-level miss (an L1
            eviction, hence a victim-cache insert, can happen).
        block_miss_definite: The block is proven absent from L1.
        mask_lo: Sub-block mask definitely contained in the mask the
            chain is probed with, whenever the event fires.
        mask_hi: Superset of any mask the chain can be probed with.
    """

    __slots__ = (
        "block",
        "definite",
        "block_miss_possible",
        "block_miss_definite",
        "mask_lo",
        "mask_hi",
    )

    def __init__(
        self,
        block: int,
        definite: bool,
        block_miss_possible: bool,
        block_miss_definite: bool,
        mask_lo: int,
        mask_hi: int,
    ) -> None:
        self.block = block
        self.definite = definite
        self.block_miss_possible = block_miss_possible
        self.block_miss_definite = block_miss_definite
        self.mask_lo = mask_lo
        self.mask_hi = mask_hi


class _StructFact:
    """What the walk proves about one structure, *given the event fires*."""

    __slots__ = ("probe_pos", "probe_def", "hit_def", "miss_def")

    def __init__(
        self,
        probe_pos: bool,
        probe_def: bool,
        hit_def: bool,
        miss_def: bool,
    ) -> None:
        self.probe_pos = probe_pos
        self.probe_def = probe_def
        self.hit_def = hit_def
        self.miss_def = miss_def


@dataclass(frozen=True)
class _SiteChainInfo:
    """Per-site raw material for the closed-form counter bounds.

    Attributes:
        events_hi: Chain events per site execution, at most.
        definite: At least one event fires on every execution.
        probe_pos: Structures possibly probed by an event.
        probe_def: Structures definitely probed whenever one fires.
        hit_pos: Structures that can service an event.
        hit_def: Structures proven to service it whenever one fires.
        memory_pos: An event can reach memory.
        memory_def: Every event reaches memory.
        event_bytes_hi: Most memory bytes one event can move.
        persistent_bytes: With a backing L2, a cap on the *total*
            memory bytes this site can ever move (its L2 blocks are
            never evicted after loading), or None.
        total_cap: Cap on the site's *total* event count across the
            whole run (first-miss sites), or None for per-execution
            accounting.
    """

    events_hi: int
    definite: bool
    probe_pos: Tuple[str, ...]
    probe_def: Tuple[str, ...]
    hit_pos: Tuple[str, ...]
    hit_def: Tuple[str, ...]
    memory_pos: bool
    memory_def: bool
    event_bytes_hi: int
    persistent_bytes: Optional[int] = None
    total_cap: Optional[int] = None


# -- The chain-aware analyzer -----------------------------------------------


class _ChainAnalyzer(_Analyzer):
    """Extends the L1 transfer functions with the chain domains."""

    def __init__(
        self,
        program: AssembledProgram,
        geometry: CacheGeometry,
        fetch: FetchPolicy,
        stack_words: int,
        miss_path: MissPathConfig,
    ) -> None:
        super().__init__(program, geometry, fetch, stack_words)
        self.miss_path = miss_path
        self.chain_names: Tuple[str, ...] = miss_path.chain_names
        self.has_vc = miss_path.victim_entries > 0
        self.vc_entries = miss_path.victim_entries
        self.has_mc = miss_path.miss_entries > 0
        self.mc_entries = miss_path.miss_entries
        self.has_sb = miss_path.stream_buffers > 0
        self.sb_buffers = miss_path.stream_buffers
        self.sb_depth = miss_path.stream_depth
        self.has_l2 = miss_path.l2_net_size > 0
        if self.has_l2:
            l2_geometry = miss_path.l2_geometry(geometry)
            self.l2_geom = l2_geometry
            self.l2_ways = l2_geometry.ways
            self.l2_sets = l2_geometry.num_sets
            self.l2_block = l2_geometry.block_size
            self.l2_sub = l2_geometry.sub_block_size
            self.l2_nsub = l2_geometry.sub_blocks_per_block
            # An unknown-address read touches at most two L1 blocks,
            # each spanning at most K L2 blocks; consecutive L2 blocks
            # rotate through sets, so one set sees at most ceil(K/sets)
            # per L1 block.
            spread = max(1, geometry.block_size // self.l2_block)
            self.l2_unknown_incr = 2 * max(
                1, -(-spread // self.l2_sets)
            )
            self.event_bytes_cap = max(geometry.block_size, self.l2_sub)
        else:
            self.event_bytes_cap = geometry.block_size

    def make_entry_state(self) -> _AbsState:
        state = super().make_entry_state()
        state.ext = _ChainExt()  # cold chain: every structure empty
        return state

    # -- Event extraction ---------------------------------------------

    def _event_facts(
        self, state: _AbsState, block: int, needed: int, first_sub: int
    ) -> Optional[_Event]:
        """The chain event for one read/ifetch piece at the pre-state,
        or None for a guaranteed L1 hit (the chain is never consulted).
        """
        must_entry = state.must.get(block)
        if must_entry is not None and not (needed & ~must_entry[1]):
            return None
        may = state.may
        proven_absent = may is not None and block not in may
        if may is None:
            old_may_valid = self.full_mask
        else:
            entry = may.get(block)
            old_may_valid = entry[1] if entry is not None else 0
        guaranteed_missing = needed & ~old_may_valid
        definite = proven_absent or bool(guaranteed_missing)
        if proven_absent:
            mask_lo = self.fetch.plan(needed, first_sub, 0, self.nsub).fetch_mask
        else:
            mask_lo = guaranteed_missing
        _must_gain, mask_hi = self._gain_masks(
            needed, first_sub, old_may_valid, proven_absent
        )
        return _Event(
            block=block,
            definite=definite,
            block_miss_possible=must_entry is None,
            block_miss_definite=proven_absent,
            mask_lo=mask_lo,
            mask_hi=mask_hi,
        )

    # -- Victim-cache fill (the L1 eviction happens before the probe) --

    def _apply_vc_fill(
        self, state: _AbsState, ext: _ChainExt, ev: _Event
    ) -> None:
        """Model the possible L1 eviction feeding the victim cache.

        Uses the L1 *pre-state* (``state``) to enumerate eviction
        candidates, and mutates ``ext`` in place.  Sound for
        non-definite events: the weakening branch over-approximates
        the no-op outcome as well.
        """
        if not self.has_vc or not ev.block_miss_possible:
            return
        may = state.may
        if may is None:
            candidates: Optional[List[Tuple[int, int]]] = None
        else:
            set_index = ev.block % self.num_sets
            candidates = [
                (block, entry[1])
                for block, entry in may.items()
                if block != ev.block and block % self.num_sets == set_index
            ]
            if not candidates:
                return  # nothing can be evicted: the set is empty
        if (
            candidates is not None
            and self.ways == 1
            and ev.block_miss_definite
            and len(candidates) == 1
            and candidates[0][0] in state.must
            and state.must[candidates[0][0]][1] != 0
        ):
            # The victim is exactly this one resident block, and its
            # guaranteed-valid mask is nonzero, so the insert happens.
            victim, possible_valid = candidates[0]
            guaranteed_valid = state.must[victim][1]
            old = ext.vc_must.get(victim)
            for other in list(ext.vc_must):
                if other == victim:
                    continue
                age, valid = ext.vc_must[other]
                if age + 1 >= self.vc_entries:
                    del ext.vc_must[other]
                else:
                    ext.vc_must[other] = (age + 1, valid)
            merged = guaranteed_valid | (old[1] if old is not None else 0)
            ext.vc_must[victim] = (0, merged)
            if not ext.vc_top:
                ext.vc_may[victim] = (
                    ext.vc_may.get(victim, 0) | possible_valid
                )
            return
        # A (possibly different, possibly absent) victim may be
        # inserted: weaken must, grow may.
        for other in list(ext.vc_must):
            age, valid = ext.vc_must[other]
            if age + 1 >= self.vc_entries:
                del ext.vc_must[other]
            else:
                ext.vc_must[other] = (age + 1, valid)
        if candidates is None:
            ext.vc_top = True
            ext.vc_may = {}
        elif not ext.vc_top:
            for block, possible_valid in candidates:
                ext.vc_may[block] = ext.vc_may.get(block, 0) | possible_valid

    # -- L2 geometry helpers -------------------------------------------

    def _l2_span_pieces(
        self, l1_block: int, mask: int
    ) -> List[Tuple[int, int]]:
        """``(L2 block, needed L2 sub-mask)`` pieces of the one L2 read
        the chain issues for an L1 miss with ``mask`` (the read spans
        the first through last set sub-block, like the concrete probe).
        """
        if not mask:
            return []
        first = (mask & -mask).bit_length() - 1
        last = mask.bit_length() - 1
        sub = self.geometry.sub_block_size
        addr = l1_block * self.geometry.block_size + first * sub
        size = (last - first + 1) * sub
        out: List[Tuple[int, int]] = []
        first_block = addr // self.l2_block
        last_block = (addr + size - 1) // self.l2_block
        for block in range(first_block, last_block + 1):
            base = block * self.l2_block
            lo = max(addr, base) - base
            hi = min(addr + size, base + self.l2_block) - 1 - base
            out.append(
                (block, mask_of_range(lo // self.l2_sub, hi // self.l2_sub))
            )
        return out

    def _l2_age_must(self, ext: _ChainExt, block: int, boundary: int) -> None:
        set_index = block % self.l2_sets
        for other in list(ext.l2_must):
            if other == block or other % self.l2_sets != set_index:
                continue
            age, valid = ext.l2_must[other]
            if age < boundary:
                if age + 1 >= self.l2_ways:
                    del ext.l2_must[other]
                else:
                    ext.l2_must[other] = (age + 1, valid)

    def _l2_pers_age(self, ext: _ChainExt, block: int) -> None:
        set_index = block % self.l2_sets
        for other, age in ext.l2_pers.items():
            if other != block and other % self.l2_sets == set_index:
                ext.l2_pers[other] = min(self.l2_ways, age + 1)

    # -- The chain walk ------------------------------------------------

    def _chain_walk_facts(
        self, ext: _ChainExt, ev: _Event
    ) -> Tuple[Dict[str, _StructFact], bool, bool, bool]:
        """Prove per-structure probe/hit/miss facts for one event.

        All facts are *conditional on the event firing*.  Returns
        ``(facts, backing_def, memory_def, memory_pos)`` where
        ``backing_def`` means the walk provably reaches the backing
        level (the L2 if present, else memory) — the condition under
        which tag-side fills happen.
        """
        facts: Dict[str, _StructFact] = {}
        reach_def = True
        reach_pos = True
        for name in self.chain_names:
            probe_def = reach_def
            probe_pos = reach_pos
            hit_local = False
            miss_local = False
            if name == "victim":
                entry = ext.vc_must.get(ev.block)
                hit_local = entry is not None and not (ev.mask_hi & ~entry[1])
                if not ext.vc_top:
                    possible = ext.vc_may.get(ev.block)
                    miss_local = possible is None or bool(
                        ev.mask_lo & ~possible
                    )
            elif name == "miss":
                hit_local = ev.block in ext.mc_must
                miss_local = not ext.mc_top and ev.block not in ext.mc_may
            elif name == "stream":
                hit_local = any(
                    window is not None
                    and window[0] <= ev.block <= window[1]
                    for window in ext.windows
                )
                possibly = ext.sb_top or any(
                    lo <= ev.block <= hi for lo, hi in ext.sb_may
                )
                miss_local = not possibly
            else:  # l2
                hi_pieces = self._l2_span_pieces(ev.block, ev.mask_hi)
                hit_local = bool(hi_pieces) and all(
                    block in ext.l2_must
                    and not (needed & ~ext.l2_must[block][1])
                    for block, needed in hi_pieces
                )
                if ext.l2_may is not None and ev.mask_lo:
                    miss_local = any(
                        needed & ~ext.l2_may.get(block, 0)
                        for block, needed in self._l2_span_pieces(
                            ev.block, ev.mask_lo
                        )
                    )
            facts[name] = _StructFact(
                probe_pos=probe_pos,
                probe_def=probe_def,
                hit_def=probe_def and hit_local,
                miss_def=miss_local,
            )
            reach_def = reach_def and miss_local
            reach_pos = reach_pos and not hit_local
        memory_def = reach_def
        memory_pos = reach_pos
        if self.has_l2:
            backing_def = facts["l2"].probe_def
        else:
            backing_def = memory_def
        return facts, backing_def, memory_def, memory_pos

    # -- Transfer: one chain event ------------------------------------

    def _apply_chain_event(
        self, state: _AbsState, ext: _ChainExt, ev: _Event
    ) -> None:
        """Mutate ``ext`` for one (possible) chain consultation.

        Precision-bearing ("definite") updates are gated on
        ``ev.definite`` — when the event only *may* fire, every update
        must also over-approximate the no-op outcome.
        """
        self._apply_vc_fill(state, ext, ev)
        facts, backing_def, _memory_def, _memory_pos = self._chain_walk_facts(
            ext, ev
        )
        if self.has_vc:
            fact = facts["victim"]
            if fact.probe_pos:
                # A probe hit consumes the entry (the swap back).
                ext.vc_must.pop(ev.block, None)
                if ev.definite and fact.probe_def and fact.hit_def:
                    ext.vc_may.pop(ev.block, None)
        if self.has_mc:
            fact = facts["miss"]
            refreshed = ev.definite and fact.probe_def and (
                fact.hit_def or backing_def
            )
            if refreshed or fact.probe_pos:
                for other in list(ext.mc_must):
                    if other == ev.block:
                        continue
                    age = ext.mc_must[other] + 1
                    if age >= self.mc_entries:
                        del ext.mc_must[other]
                    else:
                        ext.mc_must[other] = age
                if refreshed:
                    ext.mc_must[ev.block] = 0
                if not ext.mc_top:
                    ext.mc_may.add(ev.block)
        if self.has_sb:
            fact = facts["stream"]
            window = (ev.block + 1, ev.block + self.sb_depth)
            if ev.definite and fact.hit_def:
                # The matched buffer refills to exactly this window and
                # becomes most recent; which physical buffer matched is
                # ambiguous, so other claims are dropped.
                ext.windows = [window]
            elif (
                ev.definite
                and fact.probe_def
                and fact.miss_def
                and backing_def
            ):
                # The LRU buffer reallocates to the window.
                ext.windows = (
                    [window] + ext.windows[: self.sb_buffers - 1]
                )
            elif fact.probe_pos:
                ext.windows = []
            if fact.probe_pos or fact.probe_def:
                if not ext.sb_top:
                    ext.sb_may = _merge_intervals(ext.sb_may + [window])
                    if len(ext.sb_may) > _SB_MAY_CAP:
                        ext.sb_top = True
                        ext.sb_may = []
        if self.has_l2:
            fact = facts["l2"]
            if fact.probe_pos:
                read_def = ev.definite and fact.probe_def
                lo_pieces = (
                    {
                        block: needed
                        for block, needed in self._l2_span_pieces(
                            ev.block, ev.mask_lo
                        )
                    }
                    if read_def and ev.mask_lo
                    else {}
                )
                for block, needed in self._l2_span_pieces(
                    ev.block, ev.mask_hi
                ):
                    if block in lo_pieces and block in ext.l2_must:
                        boundary = ext.l2_must[block][0]
                    else:
                        boundary = self.l2_ways
                    self._l2_age_must(ext, block, boundary)
                    self._l2_pers_age(ext, block)
                    if ext.l2_may is not None:
                        ext.l2_may[block] = (
                            ext.l2_may.get(block, 0) | needed
                        )
                for block, needed in lo_pieces.items():
                    old_entry = ext.l2_must.get(block)
                    old_valid = old_entry[1] if old_entry is not None else 0
                    ext.l2_must[block] = (0, old_valid | needed)
                    if ext.l2_pers.get(block) != self.l2_ways:
                        ext.l2_pers[block] = 0

    # -- Overridden L1 transfer hooks ----------------------------------

    def _apply_piece(
        self,
        state: _AbsState,
        block: int,
        needed: int,
        first_sub: int,
        kind: AccessType,
    ) -> None:
        if kind is not AccessType.WRITE:
            # Writes are no-allocate: they never fetch, evict, or
            # consult the chain.
            ev = self._event_facts(state, block, needed, first_sub)
            if ev is not None:
                ext = state.ext
                assert isinstance(ext, _ChainExt)
                self._apply_chain_event(state, ext, ev)
        super()._apply_piece(state, block, needed, first_sub, kind)

    def apply_unknown(self, state: _AbsState, kind: AccessType) -> None:
        super().apply_unknown(state, kind)
        if kind is AccessType.WRITE:
            return
        ext = state.ext
        assert isinstance(ext, _ChainExt)
        if self.has_vc:
            # Any entry may be probe-consumed; any block may be evicted
            # into the buffer with any mask.
            ext.vc_must = {}
            ext.vc_top = True
            ext.vc_may = {}
        if self.has_mc:
            for block in list(ext.mc_must):
                age = ext.mc_must[block] + 2
                if age >= self.mc_entries:
                    del ext.mc_must[block]
                else:
                    ext.mc_must[block] = age
            ext.mc_top = True
            ext.mc_may = set()
        if self.has_sb:
            ext.windows = []
            ext.sb_top = True
            ext.sb_may = []
        if self.has_l2:
            ext.l2_may = None
            incr = self.l2_unknown_incr
            for block in list(ext.l2_must):
                age, valid = ext.l2_must[block]
                if age + incr >= self.l2_ways:
                    del ext.l2_must[block]
                else:
                    ext.l2_must[block] = (age + incr, valid)
            for block, age in ext.l2_pers.items():
                ext.l2_pers[block] = min(self.l2_ways, age + incr)

    # -- Site classification -------------------------------------------

    def _worst_info(
        self, events_hi: int, definite: bool = False
    ) -> _SiteChainInfo:
        """No chain knowledge: everything possible, nothing proven."""
        return _SiteChainInfo(
            events_hi=events_hi,
            definite=definite,
            probe_pos=self.chain_names,
            probe_def=(),
            hit_pos=self.chain_names,
            hit_def=(),
            memory_pos=True,
            memory_def=False,
            event_bytes_hi=self.event_bytes_cap,
        )

    def _event_bytes_hi(self, ev: _Event) -> int:
        """Most memory bytes one firing of this event can move."""
        if self.has_l2:
            return sum(
                _popcount(needed) * self.l2_sub
                for _block, needed in self._l2_span_pieces(
                    ev.block, ev.mask_hi
                )
            )
        return _popcount(ev.mask_hi) * self.geometry.sub_block_size

    def _site_chain_info(
        self,
        state: _AbsState,
        addr: Optional[int],
        kind: AccessType,
        l1_cls: SiteClass,
    ) -> Tuple[ChainSiteClass, str, Optional[_SiteChainInfo]]:
        """Hierarchically classify one site at its pre-reference state."""
        if l1_cls is SiteClass.ALWAYS_HIT:
            return (
                ChainSiteClass.L1_HIT,
                "proven L1 hit; the chain is never consulted",
                None,
            )
        if kind is AccessType.WRITE:
            return (
                ChainSiteClass.UNCLASSIFIED,
                "write misses bypass the chain (no-allocate)",
                None,
            )
        if addr is None:
            return (
                ChainSiteClass.UNCLASSIFIED,
                "address not statically known",
                self._worst_info(events_hi=2),
            )
        pieces = self.pieces(addr, self.word)
        if len(pieces) > 1:
            return (
                ChainSiteClass.UNCLASSIFIED,
                "the access spans multiple L1 blocks",
                self._worst_info(
                    events_hi=len(pieces),
                    definite=l1_cls is SiteClass.ALWAYS_MISS,
                ),
            )
        block, needed, first_sub = pieces[0]
        ev = self._event_facts(state, block, needed, first_sub)
        if ev is None:  # belt and braces: classify_ref said the same
            return (
                ChainSiteClass.L1_HIT,
                "proven L1 hit; the chain is never consulted",
                None,
            )
        ext = state.ext
        assert isinstance(ext, _ChainExt)
        scratch = ext.copy()
        self._apply_vc_fill(state, scratch, ev)
        facts, _backing_def, memory_def, memory_pos = self._chain_walk_facts(
            scratch, ev
        )
        names = self.chain_names
        hit_def_names = tuple(n for n in names if facts[n].hit_def)
        info = _SiteChainInfo(
            events_hi=1,
            definite=ev.definite and l1_cls is not SiteClass.FIRST_MISS,
            probe_pos=tuple(n for n in names if facts[n].probe_pos),
            probe_def=tuple(
                n for n in names if facts[n].probe_def and ev.definite
            ),
            hit_pos=tuple(
                n
                for n in names
                if facts[n].probe_pos and not facts[n].miss_def
            ),
            hit_def=tuple(n for n in hit_def_names if ev.definite),
            memory_pos=memory_pos,
            memory_def=memory_def and ev.definite,
            event_bytes_hi=self._event_bytes_hi(ev),
            persistent_bytes=self._persistent_bytes(ext, ev, memory_pos),
            total_cap=1 if l1_cls is SiteClass.FIRST_MISS else None,
        )
        if l1_cls is SiteClass.FIRST_MISS:
            return (
                ChainSiteClass.FIRST_MISS,
                "at most the first execution consults the chain",
                info,
            )
        if not ev.definite:
            return (
                ChainSiteClass.UNCLASSIFIED,
                "the L1 outcome is unproven",
                info,
            )
        if hit_def_names:
            first = hit_def_names[0]
            return (
                _CHAIN_HIT_OF[first],
                f"proven L1 miss serviced by the {first} structure "
                "on every execution",
                info,
            )
        if memory_def:
            return (
                ChainSiteClass.MEMORY_BOUND,
                "proven L1 miss that no chain structure can service",
                info,
            )
        return (
            ChainSiteClass.UNCLASSIFIED,
            "proven L1 miss with an unproven chain outcome",
            info,
        )

    def _persistent_bytes(
        self, ext: _ChainExt, ev: _Event, memory_pos: bool
    ) -> Optional[int]:
        """Total-memory-bytes cap from L2 persistence, if provable."""
        if not self.has_l2 or not memory_pos:
            return None
        hi_pieces = self._l2_span_pieces(ev.block, ev.mask_hi)
        if not hi_pieces:
            return None
        if all(
            ext.l2_pers.get(block, 0) < self.l2_ways
            for block, _needed in hi_pieces
        ):
            # Every L2 block this site can touch is never evicted
            # after loading: each sub-block is fetched at most once
            # over the whole run, whatever the execution count.
            return sum(
                _popcount(needed) * self.l2_sub
                for _block, needed in hi_pieces
            )
        return None

    def describe_site(
        self,
        state: _AbsState,
        addr: Optional[int],
        kind: AccessType,
        kind_label: str,
    ) -> Tuple[Any, ...]:
        base = super().describe_site(state, addr, kind, kind_label)
        chain_cls, chain_reason, info = self._site_chain_info(
            state, addr, kind, base[0]
        )
        return base + (chain_cls, chain_reason, info)


# -- Static execution-count bounds ------------------------------------------


def _branch_taken(op: Op, left: int, right: int) -> bool:
    if op == Op.BEQ:
        return left == right
    if op == Op.BNE:
        return left != right
    if op == Op.BLT:
        return left < right
    return left >= right  # BGE


def _supergraph(cfg: ControlFlowGraph) -> Dict[int, List[int]]:
    """Interprocedural successor map used for execution-count bounds.

    ``call`` edges enter the callee only; ``ret`` edges return to the
    fall-through blocks of the call sites of every routine that can
    *own* the returning block (ownership = intraprocedural reachability
    from a routine entry, where calls step to their fall-through).
    This keeps two unrelated call sites from fabricating a spurious
    cycle through an unrelated routine's return.
    """
    program = cfg.program
    count = len(cfg.blocks)
    calls: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
    for block in cfg.blocks:
        last = program.instructions[block.end - 1]
        if last.op == Op.CALL:
            target = program.addr_to_index.get(last.imm)
            callee = cfg.block_of[target] if target is not None else None
            fall = (
                cfg.block_of[block.end]
                if block.end < len(program.instructions)
                else None
            )
            calls[block.index] = (callee, fall)

    def intra_successors(index: int) -> List[int]:
        block = cfg.blocks[index]
        last = program.instructions[block.end - 1]
        if last.op == Op.CALL:
            fall = calls[index][1]
            return [fall] if fall is not None else []
        if last.op in (Op.RET, Op.HALT):
            return []
        return list(block.successors)

    owners: Dict[int, Set[int]] = {index: set() for index in range(count)}
    entries = [0] + [
        entry for entry in cfg.subroutine_entries() if entry != 0
    ]
    for entry in entries:
        seen = {entry}
        stack = [entry]
        while stack:
            index = stack.pop()
            owners[index].add(entry)
            for successor in intra_successors(index):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)

    calls_to: Dict[int, Set[int]] = {}
    for _call_block, (callee, fall) in calls.items():
        if callee is not None and fall is not None:
            calls_to.setdefault(callee, set()).add(fall)

    successors: Dict[int, List[int]] = {}
    for index in range(count):
        block = cfg.blocks[index]
        last = program.instructions[block.end - 1]
        if last.op == Op.CALL:
            callee = calls[index][0]
            successors[index] = [callee] if callee is not None else []
        elif last.op == Op.RET:
            targets: Set[int] = set()
            for entry in owners[index]:
                targets |= calls_to.get(entry, set())
            successors[index] = sorted(targets)
        elif last.op == Op.HALT:
            successors[index] = []
        else:
            successors[index] = list(block.successors)
    return successors


def _sccs(successors: Dict[int, List[int]]) -> Dict[int, int]:
    """Iterative Tarjan: node -> strongly-connected-component id."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    component: Dict[int, int] = {}
    counter = 0
    component_id = 0
    for root in successors:
        if root in index_of:
            continue
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(successors[root]))]
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = component_id
                    if member == node:
                        break
                component_id += 1
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return component


def _is_acyclic(
    successors: Dict[int, List[int]],
    skip_edges: FrozenSet[Tuple[int, int]],
) -> bool:
    """Kahn's check, ignoring the given (back) edges."""
    indegree = {node: 0 for node in successors}
    for node, targets in successors.items():
        for target in targets:
            if (node, target) not in skip_edges:
                indegree[target] += 1
    ready = [node for node, degree in indegree.items() if degree == 0]
    processed = 0
    while ready:
        node = ready.pop()
        processed += 1
        for target in successors[node]:
            if (node, target) in skip_edges:
                continue
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
    return processed == len(successors)


def _loop_trip_counts(
    analyzer: _Analyzer, in_states: Dict[int, _AbsState]
) -> Dict[Loop, int]:
    """Best-effort exact trip counts for counted natural loops.

    Recognizes the bundled-workload idiom — a header ending in a
    conditional branch over a counter register stepped by exactly one
    ``addi`` per iteration against a bound that is a proven constant at
    the test — and simulates the recurrence to an exact back-edge
    count.  Every guard below protects the closed form; anything
    unrecognized simply stays unbounded (the bounds degrade to
    ``None``, never to an unsound number).
    """
    cfg = analyzer.cfg
    program = cfg.program
    loops = cfg.natural_loops()
    by_header: Dict[int, List[Loop]] = {}
    for loop in loops:
        by_header.setdefault(loop.header, []).append(loop)
    doms = cfg.dominators()
    trips: Dict[Loop, int] = {}
    for header, group in by_header.items():
        if len(group) != 1 or header not in in_states:
            continue
        loop = group[0]
        header_block = cfg.blocks[header]
        last = program.instructions[header_block.end - 1]
        if last.op not in _BRANCH_OPS:
            continue
        counter_reg, bound_reg = last.a, last.b
        if counter_reg == 7 or bound_reg == 7 or counter_reg == bound_reg:
            continue
        body_instructions = [
            (block_index, index, program.instructions[index])
            for block_index in loop.body
            for index in range(
                cfg.blocks[block_index].start, cfg.blocks[block_index].end
            )
        ]
        if any(
            inst.op in (Op.CALL, Op.RET)
            for _b, _i, inst in body_instructions
        ):
            continue
        writers = [
            (block_index, index, inst)
            for block_index, index, inst in body_instructions
            if inst.op in _REG_WRITERS and inst.a == counter_reg
        ]
        if len(writers) != 1:
            continue
        writer_block, writer_index, writer = writers[0]
        if writer.op != Op.ADDI or writer.imm == 0:
            continue
        step = writer.imm
        if writer_block not in doms[loop.back_edge_tail]:
            continue
        if any(
            other is not loop
            and other.body < loop.body
            and writer_block in other.body
            for other in loops
        ):
            continue  # the step could run more than once per iteration
        taken_index = program.addr_to_index.get(last.imm)
        if taken_index is None or header_block.end >= len(
            program.instructions
        ):
            continue
        taken_block = cfg.block_of[taken_index]
        fall_block = cfg.block_of[header_block.end]
        taken_out = taken_block not in loop.body
        fall_out = fall_block not in loop.body
        if taken_out == fall_out:
            continue  # need exactly one exit successor at the test
        exit_on_true = taken_out
        # The bound register's value at the test, each iteration: walk
        # the header prefix from the joined in-state; a proven constant
        # there is the concrete value on every execution.
        prefix_state = in_states[header].copy()
        for index in range(header_block.start, header_block.end - 1):
            _walk_instruction(
                analyzer,
                prefix_state,
                index,
                program.instructions[index],
                None,
            )
        bound_value = prefix_state.regs[bound_reg]
        if bound_value is None:
            continue
        pre_step = (
            step
            if writer_block == header and writer_index < header_block.end - 1
            else 0
        )
        # The counter's entry value: every reachable non-body
        # predecessor edge must deliver the same proven constant.
        candidates: List[int] = []
        bail = False
        for pred in header_block.predecessors:
            if pred in loop.body:
                continue  # the back edge(s)
            if pred not in in_states:
                continue  # unreachable predecessor
            pred_block = cfg.blocks[pred]
            if program.instructions[pred_block.end - 1].op == Op.CALL:
                bail = True  # the edge runs through a callee
                break
            pred_state = in_states[pred].copy()
            for index in range(pred_block.start, pred_block.end):
                _walk_instruction(
                    analyzer,
                    pred_state,
                    index,
                    program.instructions[index],
                    None,
                )
            value = pred_state.regs[counter_reg]
            if value is None:
                bail = True
                break
            candidates.append(value)
        if header == 0:
            candidates.append(0)  # machine entry: registers are zero
        if bail or not candidates or len(set(candidates)) != 1:
            continue
        value = candidates[0] + pre_step

        def _exits(current: int) -> bool:
            taken = _branch_taken(last.op, current, bound_value)
            return taken if exit_on_true else not taken

        count = 0
        while count <= _TRIP_CAP and not _exits(value):
            count += 1
            value += step
        if count > _TRIP_CAP or not _exits(value):
            continue
        trips[loop] = count
    return trips


def _exec_bounds(
    analyzer: _Analyzer, in_states: Dict[int, _AbsState]
) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """Per-block execution-count bounds ``(lo, hi)``.

    ``hi`` is per full run: 0 for unreachable blocks, 1 for blocks on
    no supergraph cycle, a product of enclosing counted-loop factors
    when every cycle through the block is a counted natural loop (the
    back-edge-free supergraph must be acyclic — a global reducibility
    check that also rules out recursion), else ``None`` (unbounded).
    ``lo`` is 1 for blocks dominating every reachable halt (valid only
    for halted runs), else 0.
    """
    cfg = analyzer.cfg
    program = cfg.program
    count = len(cfg.blocks)
    successors = _supergraph(cfg)
    component = _sccs(successors)
    sizes: Dict[int, int] = {}
    for scc in component.values():
        sizes[scc] = sizes.get(scc, 0) + 1
    loops = cfg.natural_loops()
    back_edges = frozenset(
        (loop.back_edge_tail, loop.header) for loop in loops
    )
    reducible = _is_acyclic(successors, back_edges)
    trips = (
        _loop_trip_counts(analyzer, in_states) if reducible else {}
    )
    halts = [
        block.index
        for block in cfg.blocks
        if block.index in in_states
        and program.instructions[block.end - 1].op == Op.HALT
    ]
    doms = cfg.dominators() if halts else []
    lo: Dict[int, int] = {}
    hi: Dict[int, Optional[int]] = {}
    for index in range(count):
        if index not in in_states:
            lo[index] = 0
            hi[index] = 0
            continue
        lo[index] = (
            1
            if halts and all(index in doms[halt] for halt in halts)
            else 0
        )
        if sizes[component[index]] == 1 and index not in successors[index]:
            hi[index] = 1
            continue
        containing = [loop for loop in loops if index in loop.body]
        if (
            reducible
            and containing
            and all(loop in trips for loop in containing)
        ):
            bound = 1
            for loop in containing:
                bound *= trips[loop] + 1
            hi[index] = bound
        else:
            hi[index] = None
    return lo, hi


# -- Closed-form counter bounds ---------------------------------------------


def _none_add(left: Optional[int], right: Optional[int]) -> Optional[int]:
    return None if left is None or right is None else left + right


def _none_mul(left: Optional[int], right: Optional[int]) -> Optional[int]:
    return None if left is None or right is None else left * right


def _none_min(left: Optional[int], right: Optional[int]) -> Optional[int]:
    if left is None:
        return right
    if right is None:
        return left
    return min(left, right)


def _compute_bounds(
    analyzer: _ChainAnalyzer,
    record: Dict[str, Tuple[Any, ...]],
    exec_lo: Dict[int, int],
    exec_hi: Dict[int, Optional[int]],
) -> Tuple[Tuple[str, Bound], ...]:
    """Assemble ``[lo, hi]`` bounds for every MissPathStats counter."""
    names = analyzer.chain_names
    keys = ["demand_misses", "memory_fetches", "memory_bytes_fetched"]
    for name in names:
        keys.extend(
            [f"{name}.probes", f"{name}.hits", f"{name}.fills",
             f"{name}.evictions"]
        )
    lo_acc: Dict[str, int] = {key: 0 for key in keys}
    hi_acc: Dict[str, Optional[int]] = {key: 0 for key in keys}
    if analyzer.has_l2:
        min_granule = analyzer.l2_sub
    else:
        min_granule = analyzer.geometry.sub_block_size
    block_of = analyzer.cfg.block_of
    for site, data in record.items():
        info = data[6]
        if info is None:
            continue
        block = block_of[int(site.split(":", 1)[0])]
        run_hi = exec_hi[block]
        run_lo = exec_lo[block]
        events_hi = _none_mul(info.events_hi, run_hi)
        if info.total_cap is not None:
            events_hi = _none_min(events_hi, info.total_cap)
        events_lo = run_lo if info.definite else 0
        lo_acc["demand_misses"] += events_lo
        hi_acc["demand_misses"] = _none_add(
            hi_acc["demand_misses"], events_hi
        )
        for name in names:
            if name in info.probe_pos:
                hi_acc[f"{name}.probes"] = _none_add(
                    hi_acc[f"{name}.probes"], events_hi
                )
            if name in info.probe_def:
                lo_acc[f"{name}.probes"] += events_lo
            if name in info.hit_pos:
                hi_acc[f"{name}.hits"] = _none_add(
                    hi_acc[f"{name}.hits"], events_hi
                )
            if name in info.hit_def:
                lo_acc[f"{name}.hits"] += events_lo
        if info.memory_pos:
            fetches_hi = events_hi
            bytes_hi = _none_mul(events_hi, info.event_bytes_hi)
            if info.persistent_bytes is not None and min_granule:
                fetches_hi = _none_min(
                    fetches_hi, info.persistent_bytes // min_granule
                )
                bytes_hi = _none_min(bytes_hi, info.persistent_bytes)
            hi_acc["memory_fetches"] = _none_add(
                hi_acc["memory_fetches"], fetches_hi
            )
            hi_acc["memory_bytes_fetched"] = _none_add(
                hi_acc["memory_bytes_fetched"], bytes_hi
            )
        if info.memory_def:
            lo_acc["memory_fetches"] += events_lo
            lo_acc["memory_bytes_fetched"] += events_lo * min_granule
    # Structure-level fill/eviction counters are driven by upstream
    # events, not per-site outcomes: derive them from the site totals.
    demand_hi = hi_acc["demand_misses"]
    if analyzer.has_vc:
        # Every L1 block miss offers at most one eviction to the chain.
        hi_acc["victim.fills"] = demand_hi
        hi_acc["victim.evictions"] = demand_hi
    if analyzer.has_mc:
        probes_hi = hi_acc["miss.probes"]
        hi_acc["miss.fills"] = probes_hi
        hi_acc["miss.evictions"] = probes_hi
    if analyzer.has_sb:
        probes_hi = hi_acc["stream.probes"]
        hi_acc["stream.fills"] = _none_mul(analyzer.sb_depth, probes_hi)
        hi_acc["stream.evictions"] = probes_hi
    if analyzer.has_l2:
        # The concrete chain never routes fill/evict accounting to the
        # backing L2 structure; both counters are exactly zero.
        hi_acc["l2.fills"] = 0
        hi_acc["l2.evictions"] = 0
    return tuple((key, (lo_acc[key], hi_acc[key])) for key in keys)


# -- Public API -------------------------------------------------------------


def classify_chain_program(
    program: AssembledProgram,
    geometry: CacheGeometry,
    *,
    miss_path: Union[MissPathConfig, Dict[str, Any], None] = None,
    fetch: Union[str, FetchPolicy] = "demand",
    stack_words: int = 4096,
    name: str = "",
    check: bool = True,
) -> ChainClassificationReport:
    """Hierarchically classify every site of ``program`` through a chain.

    The empty/absent chain is allowed: the analysis then proves the
    bare-L1 facts (every definite miss is ``memory-bound``) and bounds
    the memory-side counters directly, which is what the chain-tighter
    regression compares against.

    Args:
        program: The assembled program (its word size is used).
        geometry: Concrete L1 cache shape.
        miss_path: Chain shape — a :class:`MissPathConfig`, a mapping,
            or None for a bare L1.
        fetch: L1 fetch policy name or instance.
        stack_words: Stack capacity, as passed to the machine.
        name: Program name for the report and diagnostics.
        check: Refuse programs with error-severity static findings.

    Raises:
        StaticCheckError: When ``check`` and the program has errors.
        ConfigurationError: For word sizes no L1 (or backing L2)
            accepts, or an invalid chain shape.
    """
    config = MissPathConfig.coerce(miss_path) or MissPathConfig()
    word = program.word_size
    if word > geometry.sub_block_size:
        raise ConfigurationError(
            f"word_size ({word}) exceeds sub_block_size "
            f"({geometry.sub_block_size}); no cache accepts this geometry"
        )
    if config.l2_net_size:
        l2_geometry = config.l2_geometry(geometry)
        if word > l2_geometry.sub_block_size:
            raise ConfigurationError(
                f"word_size ({word}) exceeds the backing L2's "
                f"sub_block_size ({l2_geometry.sub_block_size})"
            )
    if check:
        raise_on_errors(
            [d for d in check_program(program, name=name) if d.is_error],
            context=f"classify {name or 'program'}",
        )
    policy = _resolve_fetch(fetch)
    analyzer = _ChainAnalyzer(program, geometry, policy, stack_words, config)
    in_states, record = _analyze(analyzer)
    exec_lo, exec_hi = _exec_bounds(analyzer, in_states)
    bounds = _compute_bounds(analyzer, record, exec_lo, exec_hi)

    sites: List[ChainSiteResult] = []
    for index, inst in enumerate(program.instructions):
        expected = [f"{index}:ifetch"]
        if inst.words == 2:
            expected.append(f"{index}:imm")
        if inst.op in (
            Op.LD, Op.LDB, Op.ST, Op.STB, Op.PUSH, Op.POP, Op.CALL, Op.RET
        ):
            expected.append(f"{index}:data")
        for site in expected:
            data = record.get(site)
            if data is not None:
                l1_cls, _reason, target, kind_label = data[:4]
                chain_cls, chain_reason, _info = data[4:7]
                sites.append(
                    ChainSiteResult(
                        site=site,
                        instr_addr=inst.addr,
                        kind=kind_label,
                        l1=l1_cls,
                        classification=chain_cls,
                        target=target,
                        reason=chain_reason,
                    )
                )
            else:
                role = site.split(":", 1)[1]
                kind_label = (
                    "ifetch"
                    if role in ("ifetch", "imm")
                    else (
                        "read"
                        if inst.op in (Op.LD, Op.LDB, Op.POP, Op.RET)
                        else "write"
                    )
                )
                sites.append(
                    ChainSiteResult(
                        site=site,
                        instr_addr=inst.addr,
                        kind=kind_label,
                        l1=SiteClass.UNCLASSIFIED,
                        classification=ChainSiteClass.UNCLASSIFIED,
                        target=None,
                        reason="unreachable from the entry point",
                    )
                )
    sites.sort(key=lambda result: _site_sort_key(result.site))
    return ChainClassificationReport(
        name=name,
        word_size=word,
        stack_words=stack_words,
        fetch=policy.name,
        net_size=geometry.net_size,
        block_size=geometry.block_size,
        sub_block_size=geometry.sub_block_size,
        associativity=geometry.associativity,
        miss_path=config,
        sites=tuple(sites),
        bounds=bounds,
    )


def lint_chain_report(report: ChainClassificationReport) -> List[Diagnostic]:
    """Chain-level lint over a finished report (``abschain-*`` rules)."""
    out: List[Diagnostic] = []
    for name in report.miss_path.chain_names:
        hits = report.bound(f"{name}.hits")
        if hits is not None and hits[1] == 0:
            out.append(
                Diagnostic(
                    rule="abschain-chain-inert",
                    severity=Severity.WARNING,
                    message=(
                        f"the {name} structure provably never services "
                        "a miss for this program: it only adds latency"
                    ),
                    source=report.name,
                    location=f"chain {report.miss_path.key()}",
                    data={"structure": name, "hits": [hits[0], hits[1]]},
                )
            )
    return out


def _sanitize_enabled(override: Optional[bool]) -> bool:
    if override is not None:
        return override
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def verify_classification(
    program: AssembledProgram,
    report: ChainClassificationReport,
    *,
    max_steps: int = 5_000_000,
    max_refs: Optional[int] = 200_000,
    sanitize: Optional[bool] = None,
) -> ChainVerificationResult:
    """Differentially check chain proofs *and* counter bounds.

    Runs the program, replays its trace cold through a concrete
    chained cache, attributes every access to its site, and records a
    violation whenever a proof is contradicted:

    * an ``L1-hit`` access misses;
    * a ``chain-hit@S`` access hits L1, presents no demand miss, or is
      serviced by anything other than ``S`` (checked against the
      chain's ``last_serviced``);
    * a ``memory-bound`` access is serviced before memory;
    * a ``first-miss`` access misses after its first occurrence.

    Afterwards every simulated :class:`MissPathStats` counter is
    checked against its static bound: upper bounds always hold (a
    truncated run checks a prefix, and the counters only grow); lower
    bounds are checked only when the run halted.  When ``sanitize`` is
    true (default: the ``REPRO_SANITIZE`` environment toggle), the
    replay uses the checked engine, cross-asserting the cache/chain
    invariants after every access.
    """
    config = report.miss_path
    chained = config.enabled
    use_checked = _sanitize_enabled(sanitize)
    if use_checked:
        from repro.engine.checked import CheckedCache

        cache_cls = CheckedCache
    else:
        cache_cls = SubBlockCache
    machine = Machine(program, stack_words=report.stack_words)
    result = machine.run(max_steps=max_steps, max_refs=max_refs)
    trace = result.trace
    cache = cache_cls(
        report.geometry(),
        fetch=make_fetch(report.fetch),
        word_size=report.word_size,
        miss_path=config if chained else None,
    )

    def demand_count() -> int:
        if chained:
            return int(cache.stats.misspath.demand_misses)
        return int(cache.stats.block_misses + cache.stats.sub_block_misses)

    class_of = {site.site: site.classification for site in report.sites}
    addr_to_index = program.addr_to_index
    occurrences: Dict[str, int] = {}
    violations: List[Tuple[str, int, str, str]] = []
    checked = unclassified = 0
    current = -1
    for access in trace:
        if access.kind is AccessType.IFETCH:
            index = addr_to_index.get(int(access.addr))
            if index is not None:
                current = index
                site = f"{index}:ifetch"
            else:
                site = f"{current}:imm"
        else:
            site = f"{current}:data"
        before = demand_count()
        hit = cache.access(int(access.addr), access.kind, int(access.size))
        delta = demand_count() - before
        occurrence = occurrences.get(site, 0)
        occurrences[site] = occurrence + 1
        cls = class_of.get(site)
        observed = "hit" if hit else "miss"
        if cls is None:
            violations.append(
                (site, occurrence, "a classified site", observed)
            )
            continue
        if cls is ChainSiteClass.UNCLASSIFIED:
            unclassified += 1
            continue
        checked += 1
        if cls is ChainSiteClass.L1_HIT:
            if not hit:
                violations.append((site, occurrence, "hit", "miss"))
        elif cls is ChainSiteClass.FIRST_MISS:
            if occurrence > 0 and not hit:
                violations.append(
                    (site, occurrence, "hit after first occurrence", "miss")
                )
        else:
            # chain-hit@<structure> or memory-bound: a proven L1 miss
            # with a proven servicing level.
            expected_server = (
                "memory"
                if cls is ChainSiteClass.MEMORY_BOUND
                else cls.value.split("@", 1)[1]
            )
            if hit:
                violations.append(
                    (site, occurrence, f"miss serviced by "
                     f"{expected_server}", "hit")
                )
            elif delta != 1:
                violations.append(
                    (site, occurrence, "exactly one demand miss",
                     f"{delta} demand misses")
                )
            elif chained:
                server = cache.miss_path.last_serviced
                if server != expected_server:
                    violations.append(
                        (site, occurrence,
                         f"serviced by {expected_server}",
                         f"serviced by {server}")
                    )
    observed_counters: Dict[str, int] = {}
    if chained:
        misspath = cache.stats.misspath
        observed_counters["demand_misses"] = misspath.demand_misses
        observed_counters["memory_fetches"] = misspath.memory_fetches
        observed_counters["memory_bytes_fetched"] = (
            misspath.memory_bytes_fetched
        )
        for name in config.chain_names:
            structure = misspath.structures[name]
            observed_counters[f"{name}.probes"] = structure.probes
            observed_counters[f"{name}.hits"] = structure.hits
            observed_counters[f"{name}.fills"] = structure.fills
            observed_counters[f"{name}.evictions"] = structure.evictions
    else:
        stats = cache.stats
        demand = stats.block_misses + stats.sub_block_misses
        observed_counters["demand_misses"] = demand
        observed_counters["memory_fetches"] = demand
        observed_counters["memory_bytes_fetched"] = stats.bytes_fetched
    bound_violations: List[Tuple[str, int, Optional[int], int]] = []
    for key, (lo, hi) in report.bounds:
        value = observed_counters.get(key)
        if value is None:
            continue
        if hi is not None and value > hi:
            bound_violations.append((key, lo, hi, value))
        elif result.halted and value < lo:
            bound_violations.append((key, lo, hi, value))
    return ChainVerificationResult(
        ok=not violations and not bound_violations,
        accesses=len(trace),
        checked=checked,
        unclassified_accesses=unclassified,
        violations=tuple(violations),
        bound_violations=tuple(bound_violations),
        halted=bool(result.halted),
        sanitized=use_checked,
    )


#: Unambiguous alias for callers that also import the single-level
#: :func:`repro.staticcheck.abscache.verify_classification`.
verify_chain_classification = verify_classification


def predict_chain_knee(
    program: AssembledProgram,
    nets: Sequence[int],
    *,
    block_size: int,
    sub_block_size: Optional[int] = None,
    associativity: int = 4,
    miss_path: Union[MissPathConfig, Dict[str, Any], None] = None,
    fetch: Union[str, FetchPolicy] = "demand",
    stack_words: int = 4096,
    name: str = "",
) -> Optional[int]:
    """Chain-aware knee prediction (the :func:`predict_knee` shape).

    Counts loop-body sites whose hierarchical class settles (L1 hit,
    any chain hit, or first miss); the knee is the smallest net size
    reaching the maximum coverage with no loop-body site proven
    memory-bound.  With a chain, sites a bare L1 would leave
    ``always-miss`` can settle as chain hits, moving the knee earlier
    — the chain-aware knee feeds ``compare_with_sweep`` unchanged.
    """
    from repro.staticcheck.cfg import build_cfg

    cfg = build_cfg(program)
    loops = cfg.natural_loops()
    if not loops:
        return None
    loop_instructions: Set[int] = set()
    for loop in loops:
        for block_index in loop.body:
            block = cfg.blocks[block_index]
            loop_instructions.update(range(block.start, block.end))

    coverage: List[Tuple[int, int]] = []
    for net in sorted(set(nets)):
        try:
            geometry = CacheGeometry(
                net_size=net,
                block_size=block_size,
                sub_block_size=sub_block_size or block_size,
                associativity=associativity,
            )
        except ConfigurationError:
            continue
        report = classify_chain_program(
            program,
            geometry,
            miss_path=miss_path,
            fetch=fetch,
            stack_words=stack_words,
            name=name,
        )
        settled = 0
        any_memory_bound = False
        for site in report.sites:
            index = int(site.site.split(":", 1)[0])
            if index not in loop_instructions:
                continue
            if site.classification is ChainSiteClass.MEMORY_BOUND:
                any_memory_bound = True
                break
            if site.classification in _SETTLED_CLASSES:
                settled += 1
        if not any_memory_bound:
            coverage.append((net, settled))
    if not coverage:
        return None
    best = max(settled for _net, settled in coverage)
    for net, settled in coverage:
        if settled == best:
            return net
    return None  # pragma: no cover - the maximum always occurs
