"""Fail-fast sweep preflight for the resilient runner.

Before :func:`repro.runner.runner.run_sweep` creates its checkpoint
writer or touches an engine, it hands the sweep's inputs here.  The
point is to move failure from *deep inside the campaign* to *before it
starts*: a misspelled replacement policy used to fail the first cell
after the checkpoint file was already truncated — and in lenient mode
it would silently skip **every** cell, burning the whole sweep to
produce a table of NaNs.

Error-severity findings abort the sweep with a
:class:`~repro.errors.StaticCheckError` carrying all diagnostics;
warnings are returned to the caller (the runner threads them into its
:class:`~repro.runner.health.RunReport`).

Rules emitted here beyond the config-lint catalogue:

========================  ========  =====================================
rule                      severity  meaning
========================  ========  =====================================
``sweep-duplicate-cell``  error     two traces share a name, so their
                                    (geometry, trace) cell keys collide —
                                    checkpoint records would overwrite
                                    each other and a resume would be
                                    silently wrong
``trace-empty``           warning   a trace has zero accesses; its cells
                                    will produce NaN ratios
========================  ========  =====================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy
from repro.core.misspath import MissPathConfig
from repro.staticcheck.configlint import (
    lint_cell_options,
    lint_geometry,
    lint_miss_path,
)
from repro.staticcheck.diagnostics import Diagnostic, Severity, raise_on_errors

__all__ = ["preflight_sweep"]


def preflight_sweep(
    traces: Sequence,
    geometries: Sequence[CacheGeometry],
    fetch: Union[str, FetchPolicy, None] = None,
    replacement: Optional[str] = None,
    warmup: Union[int, str, None] = None,
    strict: bool = True,
    miss_path: Union["MissPathConfig", Dict[str, Any], None] = None,
    grid_engine: Optional[str] = None,
    sample: Any = None,
    engine: str = "auto",
    injector_active: bool = False,
) -> List[Diagnostic]:
    """Validate a sweep's inputs before any cell executes.

    Args:
        traces: The sweep's traces (anything with ``name`` and
            ``__len__``).
        geometries: Already-validated cache shapes (their constructor
            enforces the hard geometry rules; the lint adds the
            compatibility warnings on top).
        fetch / replacement / warmup: The per-cell execution options.
        strict: Raise on error-severity findings (the runner's mode);
            False returns everything for reporting instead.
        miss_path: Optional miss-path chain config (dict form or
            :class:`~repro.core.misspath.MissPathConfig`), linted
            through :func:`~repro.staticcheck.configlint.lint_miss_path`
            against every L1 block size in the grid — the L2's resolved
            geometry is otherwise only constructed at cell-run time,
            deep inside the campaign.
        grid_engine: When given (an explicit ``--grid-engine`` value),
            append the info-severity ``sweep-stackdist-*`` coverage
            report (:func:`~repro.staticcheck.configlint
            .lint_stackdist_coverage`) for this grid; ``None`` (the
            runner's ``auto`` default) keeps preflight quiet.
        sample: Optional sampling config (anything
            ``SamplingConfig.coerce`` accepts); linted per trace length
            via :func:`~repro.staticcheck.configlint.lint_sample`, so a
            malformed spec, a degenerate interval, or a named fallback
            axis (``engine``/``injector_active``/``miss_path``) is
            reported before any cell runs.

    Raises:
        StaticCheckError: With the full diagnostic list, when ``strict``
            and any finding is an error.

    Returns:
        All findings (warnings only, under ``strict``).
    """
    diagnostics: List[Diagnostic] = []
    diagnostics += lint_cell_options(fetch, replacement, warmup, source="sweep")
    if miss_path is not None:
        # One lint per distinct L1 shape: the L2 block default follows
        # the L1 block (so each distinct shape can resolve to a
        # different L2 geometry), and the size-relative degenerate
        # warnings compare against the L1 net size.
        shapes = sorted(
            {
                (geometry.block_size, geometry.net_size)
                for geometry in geometries
            }
        ) or [(None, None)]
        seen_findings = set()
        for block_size, net_size in shapes:
            for finding in lint_miss_path(
                miss_path,
                l1_block_size=block_size,
                source="sweep-misspath",
                l1_net_size=net_size,
            ):
                marker = (finding.rule, finding.location, finding.message)
                if marker not in seen_findings:
                    seen_findings.add(marker)
                    diagnostics.append(finding)


    seen = {}
    for index, trace in enumerate(traces):
        trace_name = getattr(trace, "name", "")
        if trace_name in seen:
            diagnostics.append(
                Diagnostic(
                    rule="sweep-duplicate-cell",
                    severity=Severity.ERROR,
                    message=(
                        f"traces {seen[trace_name]} and {index} are both "
                        f"named {trace_name!r}: their checkpoint cell keys "
                        "collide, so records would overwrite each other "
                        "and a --resume would be silently wrong"
                    ),
                    source="sweep",
                    location=f"trace {index}",
                    data={"name": trace_name},
                )
            )
        else:
            seen[trace_name] = index
        if len(trace) == 0:
            diagnostics.append(
                Diagnostic(
                    rule="trace-empty",
                    severity=Severity.WARNING,
                    message=(
                        f"trace {trace_name!r} has zero accesses; its "
                        "cells will produce NaN ratios"
                    ),
                    source="sweep",
                    location=f"trace {index}",
                    data={"name": trace_name},
                )
            )

    for geometry in geometries:
        diagnostics += lint_geometry(
            geometry.net_size,
            geometry.block_size,
            geometry.sub_block_size,
            assoc=geometry.associativity,
            fetch=fetch,
            source=f"geometry {geometry.label}@{geometry.net_size}",
        )

    if sample is not None:
        from repro.staticcheck.configlint import lint_sample

        lengths = sorted({len(trace) for trace in traces}) or [None]
        seen_sample = set()
        for trace_length in lengths:
            for finding in lint_sample(
                sample,
                trace_length=trace_length,
                engine=engine,
                injector_active=injector_active,
                miss_path=miss_path,
                warmup=warmup,
                source="sweep-sample",
            ):
                marker = (finding.rule, finding.message)
                if marker not in seen_sample:
                    seen_sample.add(marker)
                    diagnostics.append(finding)

    if grid_engine is not None:
        from repro.staticcheck.configlint import lint_stackdist_coverage

        diagnostics += lint_stackdist_coverage(
            geometries,
            grid_engine=grid_engine,
            replacement=replacement if replacement is not None else "lru",
            fetch=fetch,
            warmup=warmup if warmup is not None else "fill",
            miss_path=miss_path,
        )

    if strict:
        return raise_on_errors(diagnostics, "sweep preflight")
    return diagnostics
