"""Control-flow graph construction for assembled toy-machine programs.

The toy ISA has no computed jumps — every branch, jump, and call target
is an immediate resolved at assembly time, and ``ret`` returns to a
pushed return address — so a precise intraprocedural CFG is cheap:

* **Leaders** are the entry instruction, every branch/jump/call target,
  and every instruction following a control transfer.
* A **basic block** is the run of instructions from one leader up to
  (and including) the next control transfer.
* ``call`` contributes two edges: to the callee (the *call edge*) and
  to the fall-through instruction (the *return edge*), over-approximating
  the caller's view that the callee eventually returns.  ``ret`` and
  ``halt`` terminate their block with no successors.

The graph over-approximates executable paths (both branch outcomes are
always possible), which is the right polarity for the checks built on
top: anything unreachable here is unreachable, period, and a register
definitely written on all CFG paths is definitely written at runtime.

Dominators and natural loops (back edges ``u -> v`` where ``v``
dominates ``u``) feed the locality predictor's working-set estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.workloads.assembler import AssembledProgram
from repro.workloads.isa import Instruction, Op

__all__ = ["BasicBlock", "Loop", "ControlFlowGraph", "build_cfg"]

#: Conditional branches: edge to the target and to the fall-through.
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})

#: Opcodes that end a basic block.
TERMINATOR_OPS = BRANCH_OPS | {Op.JMP, Op.CALL, Op.RET, Op.HALT}


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    Attributes:
        index: Position of the block in :attr:`ControlFlowGraph.blocks`.
        start / end: Instruction-index range ``[start, end)``.
        successors: Indices of blocks control may flow to next
            (including call targets — see the module docstring).
        predecessors: Reverse edges, filled in by :func:`build_cfg`.
        is_call_target: True when some ``call`` enters this block, i.e.
            the block starts a subroutine.
    """

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)
    is_call_target: bool = False

    def instructions(self, program: AssembledProgram) -> List[Instruction]:
        return program.instructions[self.start : self.end]

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Loop:
    """One natural loop, identified by its back edge.

    Attributes:
        header: Block index of the loop header (the dominator).
        back_edge_tail: Block whose edge to ``header`` closes the loop.
        body: Block indices in the loop (header included).
    """

    header: int
    back_edge_tail: int
    body: FrozenSet[int]


@dataclass
class ControlFlowGraph:
    """The CFG of one assembled program plus derived structure.

    Attributes:
        program: The program the graph was built from.
        blocks: Basic blocks in instruction order; block 0 is the entry.
        block_of: Instruction index -> index of its containing block.
    """

    program: AssembledProgram
    blocks: List[BasicBlock]
    block_of: List[int]

    def block_at_addr(self, addr: int) -> Optional[BasicBlock]:
        """The block containing the instruction at byte address ``addr``."""
        index = self.program.addr_to_index.get(addr)
        if index is None:
            return None
        return self.blocks[self.block_of[index]]

    def reachable_blocks(self) -> Set[int]:
        """Blocks reachable from the entry along CFG edges."""
        if not self.blocks:
            return set()
        seen = {0}
        stack = [0]
        while stack:
            for successor in self.blocks[stack.pop()].successors:
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    def dominators(self) -> List[Set[int]]:
        """Dominator sets per block (iterative dataflow; graphs are tiny).

        Unreachable blocks keep the full set (the conventional "all
        blocks" bottom), so loop detection below only trusts dominators
        of reachable blocks.
        """
        count = len(self.blocks)
        everything = set(range(count))
        dom: List[Set[int]] = [everything.copy() for _ in range(count)]
        if not count:
            return dom
        dom[0] = {0}
        changed = True
        while changed:
            changed = False
            for block in self.blocks[1:]:
                preds = [dom[p] for p in block.predecessors]
                new = set.intersection(*preds) if preds else set()
                new = new | {block.index}
                if new != dom[block.index]:
                    dom[block.index] = new
                    changed = True
        return dom

    def natural_loops(self) -> List[Loop]:
        """Natural loops from back edges, innermost-compatible order.

        Returns loops sorted by body size ascending, so the first loops
        are the innermost ones.
        """
        dom = self.dominators()
        reachable = self.reachable_blocks()
        loops: List[Loop] = []
        for block in self.blocks:
            if block.index not in reachable:
                continue
            for successor in block.successors:
                if successor in dom[block.index]:
                    body = self._loop_body(successor, block.index)
                    loops.append(
                        Loop(
                            header=successor,
                            back_edge_tail=block.index,
                            body=frozenset(body),
                        )
                    )
        loops.sort(key=lambda loop: (len(loop.body), loop.header))
        return loops

    def _loop_body(self, header: int, tail: int) -> Set[int]:
        """Blocks of the natural loop of back edge ``tail -> header``.

        The backwards walk never passes the header (it is in ``body``
        from the start), and a self-loop needs no walk at all.
        """
        body = {header, tail}
        stack = [tail] if tail != header else []
        while stack:
            for predecessor in self.blocks[stack.pop()].predecessors:
                if predecessor not in body:
                    body.add(predecessor)
                    stack.append(predecessor)
        return body

    def subroutine_entries(self) -> List[int]:
        """Indices of blocks entered by some ``call``."""
        return [block.index for block in self.blocks if block.is_call_target]


def _control_targets(
    program: AssembledProgram, inst: Instruction
) -> Tuple[Optional[int], bool]:
    """``(target instruction index or None, falls_through)`` for ``inst``.

    A branch/jump/call immediate that is not an instruction address
    yields ``None`` — the checker reports it; here the edge is dropped.
    """
    if inst.op in BRANCH_OPS:
        return program.addr_to_index.get(inst.imm), True
    if inst.op == Op.JMP:
        return program.addr_to_index.get(inst.imm), False
    if inst.op == Op.CALL:
        return program.addr_to_index.get(inst.imm), True
    if inst.op in (Op.RET, Op.HALT):
        return None, False
    return None, True


def build_cfg(program: AssembledProgram) -> ControlFlowGraph:
    """Build the control-flow graph of an assembled program."""
    instructions = program.instructions
    count = len(instructions)
    if count == 0:
        return ControlFlowGraph(program, [], [])

    # Pass 1: leaders.
    leaders = {0}
    call_leader_indices: Set[int] = set()
    for index, inst in enumerate(instructions):
        if inst.op not in TERMINATOR_OPS:
            continue
        target, falls_through = _control_targets(program, inst)
        if target is not None:
            leaders.add(target)
            if inst.op == Op.CALL:
                call_leader_indices.add(target)
        if index + 1 < count:
            leaders.add(index + 1)

    # Pass 2: block spans.
    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    block_of = [0] * count
    for block_index, start in enumerate(ordered):
        end = ordered[block_index + 1] if block_index + 1 < len(ordered) else count
        blocks.append(BasicBlock(index=block_index, start=start, end=end))
        for instruction_index in range(start, end):
            block_of[instruction_index] = block_index

    # Pass 3: edges.
    for block in blocks:
        last = instructions[block.end - 1]
        if last.op in TERMINATOR_OPS:
            target, falls_through = _control_targets(program, last)
            if target is not None:
                block.successors.append(block_of[target])
            if falls_through and block.end < count:
                successor = block_of[block.end]
                if successor not in block.successors:
                    block.successors.append(successor)
        elif block.end < count:  # fell into the next leader
            block.successors.append(block_of[block.end])
    for block in blocks:
        for successor in block.successors:
            blocks[successor].predecessors.append(block.index)
    for instruction_index in call_leader_indices:
        blocks[block_of[instruction_index]].is_call_target = True

    return ControlFlowGraph(program, blocks, block_of)
