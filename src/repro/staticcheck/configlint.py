"""Cache-geometry and sweep-grid lint with structured diagnostics.

:class:`~repro.core.config.CacheGeometry` already *rejects* bad shapes,
but it rejects them one at a time, with a bare message, at construction
time — which for a sweep can be deep inside a checkpointed campaign.
This lint reports **every** problem of a shape or a grid at once, each
with a stable rule id, without constructing anything:

================================  ========  ==================================
rule                              severity  meaning
================================  ========  ==================================
``geom-pow2``                     error     net/block/sub size is not a
                                            positive power of two
``geom-sub-gt-block``             error     sub-block larger than its block
``geom-block-gt-net``             error     block larger than the cache
``geom-assoc-invalid``            error     associativity < 1 or not a power
                                            of two (zero-way caches hold
                                            nothing)
``geom-assoc-clamped``            warning   associativity exceeds the block
                                            count; the cache degenerates to
                                            fully associative (the paper's
                                            convention, but worth knowing)
``fetch-lf-single-sub``           warning   load-forward on a single-sub-block
                                            geometry — there is nothing
                                            forward of the only sub-block, so
                                            the policy degenerates to demand
                                            fetch
``policy-unknown-fetch``          error     unknown fetch policy name
``policy-unknown-replacement``    error     unknown replacement policy name
``sweep-bad-warmup``              error     warmup is neither ``"fill"`` nor a
                                            non-negative access count
``grid-axis-empty``               error     a sweep axis is an empty list
``grid-axis-type``                error     a sweep axis holds a non-integer
``misspath-unknown-key``          error     a miss-path config key is not one
                                            of :data:`~repro.core.misspath.
                                            MISS_PATH_KEYS` (a typo like
                                            ``victim_entires`` must fail, not
                                            silently configure no chain)
``misspath-bad-value``            error     a miss-path config value is not an
                                            integer in its field's range
``misspath-degenerate``           warning   a chain structure that cannot help:
                                            a victim cache holding at least as
                                            many blocks as the L1 it backs, a
                                            miss cache shadowed by an equal-
                                            capacity victim cache ahead of it,
                                            ``stream_depth`` set with zero
                                            stream buffers, or an L2 no larger
                                            than the L1 in front of it
``sweep-stackdist-coverage``      info      how many cells of a sweep grid the
                                            one-pass stack-distance engine
                                            covers, and in how many pass
                                            groups (:mod:`repro.stackdist`)
``sweep-stackdist-fallback``      info      which axis (replacement policy,
                                            fetch policy, miss-path chain,
                                            engine, guard) forces cells onto
                                            the per-cell fallback path, with
                                            the affected cell count
``sample-interval-invalid``       error     a ``--sample`` spec that does not
                                            parse into a positive interval
                                            (and optional positive k / seed)
``sample-interval-exceeds-trace`` warning   the sampling interval is at least
                                            the trace length, so the plan
                                            degenerates to one whole-trace
                                            interval (exact, but no speedup)
``sample-k-exceeds-intervals``    warning   k exceeds the interval count and
                                            will be clamped at plan time
``sample-fallback-injector``      warning   sampling combined with fault
                                            injection: the injector wraps the
                                            whole trace, so sampled cells fall
                                            back to exact per-cell simulation
``sample-fallback-checked``       warning   sampling combined with the checked
                                            (sanitizer) engine: invariants are
                                            asserted over full runs only, so
                                            cells fall back to exact
``sample-fallback-chain``         warning   sampling combined with a miss-path
                                            chain: chain state spans interval
                                            boundaries, so cells fall back to
                                            exact
``sample-warmup-ignored``         info      a sweep warmup is configured but
                                            sampled estimates always target
                                            the cold full-trace run
                                            (docs/sampling.md)
``sweep-sample-coverage``         info      how many cells of a sweep grid a
                                            PhasePlan covers under the given
                                            sampling config, versus per-cell
                                            exact fallback
``sweep-sample-fallback``         info      which axis (injector, checked
                                            engine, miss-path chain) forces
                                            sampled cells onto the exact path,
                                            with the affected cell count
================================  ========  ==================================

Values that are not positive integers are reported under the geometry
rule of the field they were passed for (``geom-pow2`` /
``geom-assoc-invalid``): zero and negative sizes are just the most
degenerate non-powers-of-two.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Union

from repro.core.config import is_power_of_two
from repro.core.fetch import FetchPolicy, make_fetch
from repro.core.misspath import MISS_PATH_KEYS, MissPathConfig
from repro.core.replacement import make_replacement
from repro.errors import ConfigurationError
from repro.staticcheck.diagnostics import Diagnostic, Severity, raise_on_errors

__all__ = [
    "CONFIG_RULES",
    "lint_geometry",
    "lint_cell_options",
    "lint_grid_axes",
    "lint_miss_path",
    "lint_sample",
    "lint_sample_coverage",
    "lint_stackdist_coverage",
    "check_geometry",
]

#: Every rule this module can emit, for docs and tests.
CONFIG_RULES = (
    "geom-pow2",
    "geom-sub-gt-block",
    "geom-block-gt-net",
    "geom-assoc-invalid",
    "geom-assoc-clamped",
    "fetch-lf-single-sub",
    "policy-unknown-fetch",
    "policy-unknown-replacement",
    "sweep-bad-warmup",
    "grid-axis-empty",
    "grid-axis-type",
    "misspath-unknown-key",
    "misspath-bad-value",
    "misspath-degenerate",
    "sweep-stackdist-coverage",
    "sweep-stackdist-fallback",
    "sample-interval-invalid",
    "sample-interval-exceeds-trace",
    "sample-k-exceeds-intervals",
    "sample-fallback-injector",
    "sample-fallback-checked",
    "sample-fallback-chain",
    "sample-warmup-ignored",
    "sweep-sample-coverage",
    "sweep-sample-fallback",
)

_LOAD_FORWARD_NAMES = {"load-forward", "load-forward-optimized"}


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def lint_geometry(
    net: Any,
    block: Any,
    sub: Any,
    assoc: Any = 4,
    fetch: Union[str, FetchPolicy, None] = None,
    source: str = "geometry",
) -> List[Diagnostic]:
    """Lint one cache shape (plus its fetch-policy compatibility).

    Returns every applicable finding; never raises and never constructs
    a :class:`~repro.core.config.CacheGeometry`.
    """
    out: List[Diagnostic] = []
    sizes = {"net": net, "block": block, "sub": sub}
    for field_name, value in sizes.items():
        if not _is_int(value) or not is_power_of_two(value):
            out.append(
                Diagnostic(
                    rule="geom-pow2",
                    severity=Severity.ERROR,
                    message=(
                        f"{field_name} size must be a positive power of "
                        f"two, got {value!r}"
                    ),
                    source=source,
                    location=field_name,
                    data={"value": value},
                )
            )
    if not _is_int(assoc) or assoc < 1 or not is_power_of_two(assoc):
        out.append(
            Diagnostic(
                rule="geom-assoc-invalid",
                severity=Severity.ERROR,
                message=(
                    f"associativity must be a positive power of two, "
                    f"got {assoc!r} (a zero-way cache holds nothing)"
                ),
                source=source,
                location="assoc",
                data={"value": assoc},
            )
        )
    # Relational rules only make sense between well-formed sizes.
    if _is_int(sub) and _is_int(block) and sub > 0 and block > 0 and sub > block:
        out.append(
            Diagnostic(
                rule="geom-sub-gt-block",
                severity=Severity.ERROR,
                message=(
                    f"sub-block size {sub} exceeds block size {block}; "
                    "sub-blocks partition a block, so sub must divide block"
                ),
                source=source,
                location="sub",
                data={"sub": sub, "block": block},
            )
        )
    if _is_int(block) and _is_int(net) and block > 0 and net > 0 and block > net:
        out.append(
            Diagnostic(
                rule="geom-block-gt-net",
                severity=Severity.ERROR,
                message=(
                    f"block size {block} exceeds net cache size {net}; "
                    "the cache cannot hold a single block"
                ),
                source=source,
                location="block",
                data={"block": block, "net": net},
            )
        )
    if (
        _is_int(net) and _is_int(block) and _is_int(assoc)
        and is_power_of_two(net) and is_power_of_two(block)
        and block <= net and assoc >= 1 and is_power_of_two(assoc)
        and assoc > net // block
    ):
        out.append(
            Diagnostic(
                rule="geom-assoc-clamped",
                severity=Severity.WARNING,
                message=(
                    f"associativity {assoc} exceeds the {net // block} "
                    "blocks the cache holds; it degenerates to fully "
                    "associative (the paper's convention)"
                ),
                source=source,
                location="assoc",
                data={"assoc": assoc, "blocks": net // block},
            )
        )
    fetch_name = fetch.name if isinstance(fetch, FetchPolicy) else fetch
    if (
        fetch_name is not None
        and str(fetch_name).lower().replace("_", "-") in _LOAD_FORWARD_NAMES
        and _is_int(sub) and _is_int(block) and sub == block
    ):
        out.append(
            Diagnostic(
                rule="fetch-lf-single-sub",
                severity=Severity.WARNING,
                message=(
                    f"load-forward with one sub-block per block "
                    f"(block == sub == {block}) degenerates to demand "
                    "fetch: there is nothing forward of the target"
                ),
                source=source,
                location="sub",
                data={"block": block, "sub": sub},
            )
        )
    return out


def lint_cell_options(
    fetch: Union[str, FetchPolicy, None],
    replacement: Union[str, None],
    warmup: Union[int, str, None],
    source: str = "options",
) -> List[Diagnostic]:
    """Lint the execution options a sweep cell or query carries."""
    out: List[Diagnostic] = []
    if isinstance(fetch, str):
        try:
            make_fetch(fetch)
        except ConfigurationError as exc:
            out.append(
                Diagnostic(
                    rule="policy-unknown-fetch",
                    severity=Severity.ERROR,
                    message=str(exc),
                    source=source,
                    location="fetch",
                    data={"value": fetch},
                )
            )
    if isinstance(replacement, str):
        try:
            make_replacement(replacement)
        except ConfigurationError as exc:
            out.append(
                Diagnostic(
                    rule="policy-unknown-replacement",
                    severity=Severity.ERROR,
                    message=str(exc),
                    source=source,
                    location="replacement",
                    data={"value": replacement},
                )
            )
    if warmup is not None:
        bad = (
            isinstance(warmup, bool)
            or not isinstance(warmup, (int, str))
            or (isinstance(warmup, str) and warmup != "fill")
            or (isinstance(warmup, int) and warmup < 0)
        )
        if bad:
            out.append(
                Diagnostic(
                    rule="sweep-bad-warmup",
                    severity=Severity.ERROR,
                    message=(
                        f"warmup must be 'fill' or a non-negative access "
                        f"count, got {warmup!r}"
                    ),
                    source=source,
                    location="warmup",
                    data={"value": warmup},
                )
            )
    return out


def lint_grid_axes(
    axes: Dict[str, Sequence[Any]], source: str = "grid"
) -> List[Diagnostic]:
    """Lint raw sweep-grid axes (value lists, before cell expansion)."""
    out: List[Diagnostic] = []
    for axis, values in axes.items():
        if values is None:
            continue
        if not isinstance(values, (list, tuple)) or len(values) == 0:
            out.append(
                Diagnostic(
                    rule="grid-axis-empty",
                    severity=Severity.ERROR,
                    message=(
                        f"sweep grid axis {axis!r} must be a non-empty "
                        f"list, got {values!r}"
                    ),
                    source=source,
                    location=axis,
                )
            )
            continue
        for value in values:
            if not _is_int(value):
                out.append(
                    Diagnostic(
                        rule="grid-axis-type",
                        severity=Severity.ERROR,
                        message=(
                            f"sweep grid axis {axis!r} holds non-integer "
                            f"{value!r}"
                        ),
                        source=source,
                        location=axis,
                        data={"value": value},
                    )
                )
    return out


#: Smallest legal value per miss-path field (all must be non-bool ints).
_MISSPATH_MIN = {
    "victim_entries": 0,
    "miss_entries": 0,
    "stream_buffers": 0,
    "stream_depth": 1,
    "l2_net_size": 0,
    "l2_block_size": 0,
    "l2_sub_block_size": 0,
    "l2_associativity": 1,
}


def lint_miss_path(
    miss_path: Any,
    l1_block_size: Any = None,
    source: str = "misspath",
    l1_net_size: Any = None,
) -> List[Diagnostic]:
    """Lint a miss-path chain configuration (dict form or parsed).

    Reports *every* problem at once and never raises, unlike
    :meth:`~repro.core.misspath.MissPathConfig.from_dict` which raises
    on the first.  A typo'd key (``victim_entires``) is an error — a
    key that silently configured no chain would silently fingerprint
    and simulate a different experiment.

    When an L2 is configured, its resolved geometry is linted through
    :func:`lint_geometry` (the chain builder constructs the
    :class:`~repro.core.config.CacheGeometry` only at cell-run time,
    deep inside a campaign); pass ``l1_block_size`` so the L2 block
    default can be resolved when the config omits ``l2_block_size``.

    With L1 context (``l1_net_size`` + ``l1_block_size``) the
    size-relative ``misspath-degenerate`` warnings also fire — a chain
    structure shaped so it provably cannot help the L1 in front of it.
    """
    out: List[Diagnostic] = []
    if miss_path is None:
        return out
    if isinstance(miss_path, MissPathConfig):
        values: Dict[str, Any] = miss_path.to_dict()
    elif isinstance(miss_path, dict):
        values = dict(miss_path)
        for key in sorted(set(values) - MISS_PATH_KEYS):
            out.append(
                Diagnostic(
                    rule="misspath-unknown-key",
                    severity=Severity.ERROR,
                    message=(
                        f"unknown miss-path key {key!r}; expected a subset "
                        f"of {sorted(MISS_PATH_KEYS)}"
                    ),
                    source=source,
                    location=key,
                    data={"key": key},
                )
            )
            del values[key]
    else:
        return [
            Diagnostic(
                rule="misspath-bad-value",
                severity=Severity.ERROR,
                message=(
                    f"miss-path config must be a mapping of miss-path keys "
                    f"to integers, got {type(miss_path).__name__}"
                ),
                source=source,
                data={"value": repr(miss_path)},
            )
        ]
    bad_fields = set()
    for field_name, minimum in _MISSPATH_MIN.items():
        if field_name not in values:
            continue
        value = values[field_name]
        if not _is_int(value) or value < minimum:
            bad_fields.add(field_name)
            out.append(
                Diagnostic(
                    rule="misspath-bad-value",
                    severity=Severity.ERROR,
                    message=(
                        f"{field_name} must be an integer >= {minimum}, "
                        f"got {value!r}"
                    ),
                    source=source,
                    location=field_name,
                    data={"value": value},
                )
            )
    l2_net = values.get("l2_net_size", 0)
    if "l2_net_size" not in bad_fields and _is_int(l2_net) and l2_net > 0:
        block = values.get("l2_block_size", 0) or l1_block_size
        sub = values.get("l2_sub_block_size", 0)
        if _is_int(block) and block:
            out += lint_geometry(
                l2_net,
                block,
                sub if _is_int(sub) and sub else block,
                assoc=values.get("l2_associativity", 4),
                source=f"{source}-l2",
            )

    def degenerate(location: str, message: str, **data: Any) -> None:
        out.append(
            Diagnostic(
                rule="misspath-degenerate",
                severity=Severity.WARNING,
                message=message,
                source=source,
                location=location,
                data=data,
            )
        )

    def good(field_name: str) -> Any:
        value = values.get(field_name)
        if field_name in bad_fields or not _is_int(value):
            return None
        return value

    victim = good("victim_entries")
    miss = good("miss_entries")
    buffers = good("stream_buffers")
    if buffers is None and "stream_buffers" not in values:
        buffers = 0  # an absent count means no buffers, not unknown
    depth = good("stream_depth")
    l2_size = good("l2_net_size")
    if (
        victim and _is_int(l1_net_size) and _is_int(l1_block_size)
        and l1_net_size > 0 and l1_block_size > 0
        and victim >= l1_net_size // max(l1_block_size, 1)
    ):
        degenerate(
            "victim_entries",
            f"victim cache of {victim} entries holds at least as many "
            f"blocks as the {l1_net_size // l1_block_size}-block L1 it "
            "backs; evictions never age out, so it is a second L1, not "
            "a victim buffer",
            victim_entries=victim,
            l1_blocks=l1_net_size // l1_block_size,
        )
    if victim and miss and victim == miss:
        degenerate(
            "miss_entries",
            f"victim cache and miss cache both hold {victim} entries; "
            "the tag-only miss cache is probed after the victim cache "
            "and every L1 miss fills both, so the equal-capacity miss "
            "cache is shadowed and can only hit on re-fetched blocks "
            "the victim cache never saw evicted",
            victim_entries=victim,
            miss_entries=miss,
        )
    if (
        buffers == 0 and depth is not None
        and "stream_depth" in values
        and depth != MissPathConfig().stream_depth
    ):
        degenerate(
            "stream_depth",
            f"stream_depth {depth} is configured with zero stream "
            "buffers; the depth of no buffer prefetches nothing",
            stream_depth=depth,
        )
    if (
        l2_size and _is_int(l1_net_size) and l1_net_size > 0
        and l2_size <= l1_net_size
    ):
        degenerate(
            "l2_net_size",
            f"backing L2 of {l2_size} B is no larger than the "
            f"{l1_net_size} B L1 in front of it; almost everything the "
            "L1 misses, an equal-or-smaller L2 misses too",
            l2_net_size=l2_size,
            l1_net_size=l1_net_size,
        )
    return out


def check_geometry(
    net: Any,
    block: Any,
    sub: Any,
    assoc: Any = 4,
    fetch: Union[str, FetchPolicy, None] = None,
    source: str = "geometry",
) -> List[Diagnostic]:
    """Lint one shape and raise on error-severity findings.

    Raises:
        StaticCheckError: Carrying the full diagnostic list (warnings
            included), when any finding is an error.

    Returns:
        The findings (warnings only) when the shape is acceptable.
    """
    diagnostics = lint_geometry(
        net, block, sub, assoc=assoc, fetch=fetch, source=source
    )
    return raise_on_errors(diagnostics, f"invalid {source}")


def lint_stackdist_coverage(
    geometries: Sequence,
    grid_engine: str = "auto",
    replacement: str = "lru",
    fetch: Union[str, FetchPolicy, None] = None,
    warmup: Union[int, str] = "fill",
    miss_path: Union[MissPathConfig, Dict[str, Any], None] = None,
    engine: str = "auto",
    cell_timeout: Any = None,
    max_cell_accesses: Any = None,
    injector_active: bool = False,
    source: str = "sweep",
) -> List[Diagnostic]:
    """Report a sweep grid's one-pass (stack-distance) coverage.

    Info-severity only — this is a planning report, not a judgement:
    ``sweep-stackdist-coverage`` carries how many cells of the grid the
    :mod:`repro.stackdist` engine answers and in how many pass groups,
    ``sweep-stackdist-fallback`` names each axis (replacement policy,
    fetch policy, miss-path chain, engine, per-cell guard) that forces
    cells onto the per-cell path, with the affected cell count.

    Mirrors :func:`repro.stackdist.planner.plan_grid` exactly — the
    runner plans with the same function, so the lint never disagrees
    with what a sweep actually does.
    """
    from repro.stackdist.planner import plan_grid

    miss_path_config = MissPathConfig.coerce(miss_path)
    plan = plan_grid(
        geometries,
        grid_engine=grid_engine,
        replacement=replacement if replacement is not None else "lru",
        fetch=fetch,
        warmup=warmup,
        miss_path=miss_path_config,
        engine=engine,
        cell_timeout=cell_timeout,
        max_cell_accesses=max_cell_accesses,
        injector_active=injector_active,
    )
    total = len(geometries)
    out: List[Diagnostic] = [
        Diagnostic(
            rule="sweep-stackdist-coverage",
            severity=Severity.INFO,
            message=(
                f"{plan.covered} of {total} grid cells are one-pass "
                f"coverable in {len(plan.groups)} stack-distance pass "
                f"group(s); {len(plan.fallback_indices)} cell(s) run "
                "per cell"
            ),
            source=source,
            data={
                "covered": plan.covered,
                "total": total,
                "pass_groups": len(plan.groups),
                "fallback": len(plan.fallback_indices),
                "grid_engine": grid_engine,
            },
        )
    ]
    by_reason: Dict[str, int] = {}
    for index in plan.fallback_indices:
        reason = plan.fallback_reasons.get(index, "not coverable")
        by_reason[reason] = by_reason.get(reason, 0) + 1
    for reason, count in sorted(by_reason.items()):
        out.append(
            Diagnostic(
                rule="sweep-stackdist-fallback",
                severity=Severity.INFO,
                message=f"{count} cell(s) fall back to per-cell: {reason}",
                source=source,
                data={"reason": reason, "cells": count},
            )
        )
    return out


def _sample_fallback_reasons(
    engine: str,
    injector_active: bool,
    miss_path: Union[MissPathConfig, Dict[str, Any], None],
) -> List[Diagnostic]:
    """The named axes that force sampled cells back to exact runs."""
    out: List[Diagnostic] = []
    if injector_active:
        out.append(
            Diagnostic(
                rule="sample-fallback-injector",
                severity=Severity.WARNING,
                message=(
                    "sampling is combined with fault injection; the "
                    "injector wraps the whole trace, so every cell falls "
                    "back to exact per-cell simulation"
                ),
                source="sample",
                data={"axis": "injector"},
            )
        )
    if engine == "checked":
        out.append(
            Diagnostic(
                rule="sample-fallback-checked",
                severity=Severity.WARNING,
                message=(
                    "sampling is combined with the checked (sanitizer) "
                    "engine; invariants are asserted over full runs only, "
                    "so every cell falls back to exact per-cell simulation"
                ),
                source="sample",
                data={"axis": "engine", "engine": engine},
            )
        )
    try:
        chain = MissPathConfig.coerce(miss_path)
    except ConfigurationError:
        chain = None  # lint_miss_path owns reporting malformed chains
    if chain is not None and chain.enabled:
        out.append(
            Diagnostic(
                rule="sample-fallback-chain",
                severity=Severity.WARNING,
                message=(
                    f"sampling is combined with a miss-path chain "
                    f"({chain.key()}); chain state spans interval "
                    "boundaries, so every cell falls back to exact "
                    "per-cell simulation"
                ),
                source="sample",
                data={"axis": "miss_path", "chain": chain.key()},
            )
        )
    return out


def lint_sample(
    sample: Any,
    trace_length: Union[int, None] = None,
    engine: str = "auto",
    injector_active: bool = False,
    miss_path: Union[MissPathConfig, Dict[str, Any], None] = None,
    warmup: Union[int, str, None] = None,
    source: str = "sample",
) -> List[Diagnostic]:
    """Lint a ``--sample`` configuration against its execution context.

    Args:
        sample: Anything ``SamplingConfig.coerce`` accepts — the config
            itself, the CLI ``INTERVAL[,K]`` string, or a dict.
        trace_length: When known, enables the interval-vs-trace and
            k-vs-interval-count checks.
        engine / injector_active / miss_path: The sweep's execution
            axes; each incompatible axis yields its *named* fallback
            warning (``sample-fallback-*``) — the sweep still runs, but
            exactly, cell by cell.
        warmup: The sweep's warmup setting; anything but 0 earns the
            info-severity reminder that sampled estimates always target
            the cold full-trace run (suppressed when a fallback means
            the sweep runs exactly and honours its warmup after all).
    """
    from repro.staticcheck.phases import DEFAULT_K, SamplingConfig

    try:
        config = SamplingConfig.coerce(sample)
    except ConfigurationError as exc:
        return [
            Diagnostic(
                rule="sample-interval-invalid",
                severity=Severity.ERROR,
                message=str(exc),
                source=source,
                data={"sample": repr(sample)},
            )
        ]
    if config is None:
        return []
    out: List[Diagnostic] = []
    if trace_length is not None and trace_length > 0:
        if config.interval >= trace_length:
            out.append(
                Diagnostic(
                    rule="sample-interval-exceeds-trace",
                    severity=Severity.WARNING,
                    message=(
                        f"sampling interval {config.interval} is not "
                        f"smaller than the trace ({trace_length} "
                        "accesses); the plan degenerates to one "
                        "whole-trace interval — exact, but without "
                        "any speedup"
                    ),
                    source=source,
                    data={
                        "interval": config.interval,
                        "trace_length": trace_length,
                    },
                )
            )
        intervals = -(-trace_length // config.interval)
        k = config.k if config.k is not None else DEFAULT_K
        if config.k is not None and k > intervals:
            out.append(
                Diagnostic(
                    rule="sample-k-exceeds-intervals",
                    severity=Severity.WARNING,
                    message=(
                        f"k={k} exceeds the {intervals} interval(s) the "
                        f"trace splits into; the plan clamps k to "
                        f"{intervals}"
                    ),
                    source=source,
                    data={"k": k, "intervals": intervals},
                )
            )
    fallbacks = _sample_fallback_reasons(engine, injector_active, miss_path)
    out.extend(fallbacks)
    # With a fallback the sweep runs exactly and honours its warmup, so
    # the "ignored" reminder would be wrong.
    if not fallbacks and warmup not in (None, 0):
        out.append(
            Diagnostic(
                rule="sample-warmup-ignored",
                severity=Severity.INFO,
                message=(
                    f"warmup={warmup!r} is ignored under sampling: "
                    "sampled estimates target the cold full-trace run "
                    "(docs/sampling.md)"
                ),
                source=source,
                data={"warmup": str(warmup)},
            )
        )
    return out


def lint_sample_coverage(
    geometries: Sequence,
    sample: Any,
    trace_count: int = 1,
    engine: str = "auto",
    injector_active: bool = False,
    miss_path: Union[MissPathConfig, Dict[str, Any], None] = None,
    source: str = "sweep",
) -> List[Diagnostic]:
    """Report how many sweep cells a PhasePlan would cover (info only).

    The sampled path is sweep-global: either every cell of the sweep
    runs from per-trace PhasePlans, or an incompatible axis (fault
    injection, checked engine, miss-path chain) sends *every* cell to
    the exact per-cell fallback.  This mirrors
    :func:`repro.runner.runner.run_sweep` exactly, the same way the
    stack-distance coverage lint mirrors its planner.
    """
    from repro.staticcheck.phases import SamplingConfig

    try:
        config = SamplingConfig.coerce(sample)
    except ConfigurationError:
        config = None
    if config is None:
        return []
    total = len(geometries) * max(trace_count, 1)
    fallbacks = _sample_fallback_reasons(engine, injector_active, miss_path)
    covered = 0 if fallbacks else total
    out = [
        Diagnostic(
            rule="sweep-sample-coverage",
            severity=Severity.INFO,
            message=(
                f"{covered} of {total} sweep cell(s) run sampled "
                f"(sample {config.key()}); {total - covered} cell(s) "
                "fall back to exact per-cell simulation"
            ),
            source=source,
            data={
                "covered": covered,
                "total": total,
                "sample": config.key(),
                "fallback": total - covered,
            },
        )
    ]
    for finding in fallbacks:
        out.append(
            Diagnostic(
                rule="sweep-sample-fallback",
                severity=Severity.INFO,
                message=(
                    f"{total} cell(s) fall back to exact: "
                    f"{finding.rule.replace('sample-fallback-', '')} axis"
                ),
                source=source,
                data=dict(finding.data, cells=total),
            )
        )
    return out
