"""Static locality prediction: footprints and loop working sets.

The paper's argument rests on traces carrying the temporal and spatial
locality of real programs (Section 3.1); this module predicts that
locality *from program structure alone* so it can be cross-checked
against what simulation actually measures:

* **code footprint** — bytes of the code segment; an instruction cache
  at least this large sees only compulsory misses from the program's
  own code.
* **data footprint** — bytes of static data (``[data_base,
  data_limit)``); together with code this bounds the total working set
  of programs without unbounded heap (the toy ISA has none).
* **innermost-loop working sets** — code bytes of each innermost
  natural loop; while execution sits in such a loop, this is the hot
  instruction working set, which is why miss-ratio-vs-size curves knee
  near it (cf. the interval-selection literature: a simulation window
  is representative when it covers the loop working sets).

:func:`compare_with_sweep` checks a miss-ratio curve (one
:class:`~repro.analysis.sweep.SweepPoint` per net size) against the
prediction: the observed knee — the smallest net size whose miss ratio
is within tolerance of the curve's floor — should sit within a small
factor of the predicted footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.cfg import ControlFlowGraph, Loop, build_cfg
from repro.workloads.assembler import AssembledProgram
from repro.workloads.isa import Op

__all__ = [
    "LoopSummary",
    "FootprintReport",
    "LocalityComparison",
    "footprint",
    "knee_net",
    "compare_with_sweep",
]

_MEM_OPS = frozenset({Op.LD, Op.ST, Op.LDB, Op.STB, Op.PUSH, Op.POP, Op.CALL, Op.RET})


@dataclass(frozen=True)
class LoopSummary:
    """Static profile of one natural loop.

    Attributes:
        header_addr: Byte address of the loop header's first instruction.
        code_bytes: Encoded size of the loop body (all blocks).
        mem_ops: Memory-touching instructions in the body (loads,
            stores, stack traffic) — a proxy for per-iteration data
            traffic.
        blocks: Number of basic blocks in the body.
        innermost: True when the body contains no smaller loop.
    """

    header_addr: int
    code_bytes: int
    mem_ops: int
    blocks: int
    innermost: bool


@dataclass(frozen=True)
class FootprintReport:
    """Predicted locality profile of one program.

    Attributes:
        name: Program name.
        word_size: Word size the program was assembled for.
        code_bytes / data_bytes: Segment footprints.
        loops: Every natural loop, innermost first.
        hot_loop_bytes: Code bytes of the largest innermost loop — the
            dominant steady-state instruction working set (0 when the
            program is loop-free).
        total_bytes: code + data; the full static working set.
    """

    name: str
    word_size: int
    code_bytes: int
    data_bytes: int
    loops: Tuple[LoopSummary, ...] = ()
    hot_loop_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.code_bytes + self.data_bytes

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "word_size": self.word_size,
            "code_bytes": self.code_bytes,
            "data_bytes": self.data_bytes,
            "total_bytes": self.total_bytes,
            "hot_loop_bytes": self.hot_loop_bytes,
            "loops": [
                {
                    "header_addr": loop.header_addr,
                    "code_bytes": loop.code_bytes,
                    "mem_ops": loop.mem_ops,
                    "blocks": loop.blocks,
                    "innermost": loop.innermost,
                }
                for loop in self.loops
            ],
        }


@dataclass(frozen=True)
class LocalityComparison:
    """Outcome of checking a prediction against a simulated curve.

    Attributes:
        predicted_bytes: The static working-set estimate compared.
        observed_knee_net: Net size where the measured curve flattens
            (None when the curve never flattens below tolerance —
            every simulated cache was smaller than the working set).
        consistent: True when prediction and measurement agree within
            ``slack`` (or when both say "bigger than every cache").
        monotone: True when miss ratio never *rises* with cache size
            beyond ``tolerance`` — a sanity check on the curve itself.
        detail: Per-net miss ratios, for reports.
    """

    predicted_bytes: int
    observed_knee_net: Optional[int]
    consistent: bool
    monotone: bool
    detail: Dict[int, float] = field(default_factory=dict, compare=False)


def _loop_summaries(cfg: ControlFlowGraph, loops: Sequence[Loop]) -> List[LoopSummary]:
    program = cfg.program
    bodies = [set(loop.body) for loop in loops]
    summaries: List[LoopSummary] = []
    for index, loop in enumerate(loops):
        body = bodies[index]
        innermost = not any(
            other_index != index and other < body
            for other_index, other in enumerate(bodies)
        )
        code = 0
        mem = 0
        for block_index in body:
            block = cfg.blocks[block_index]
            for inst in block.instructions(program):
                code += inst.words * program.word_size
                if inst.op in _MEM_OPS:
                    mem += 1
        header_inst = program.instructions[cfg.blocks[loop.header].start]
        summaries.append(
            LoopSummary(
                header_addr=header_inst.addr,
                code_bytes=code,
                mem_ops=mem,
                blocks=len(body),
                innermost=innermost,
            )
        )
    summaries.sort(key=lambda summary: (not summary.innermost, summary.code_bytes))
    return summaries


def footprint(program: AssembledProgram, name: str = "") -> FootprintReport:
    """Predict the locality profile of an assembled program."""
    cfg = build_cfg(program)
    summaries = _loop_summaries(cfg, cfg.natural_loops())
    inner = [summary.code_bytes for summary in summaries if summary.innermost]
    return FootprintReport(
        name=name,
        word_size=program.word_size,
        code_bytes=program.code_bytes,
        data_bytes=program.data_limit - program.data_base,
        loops=tuple(summaries),
        hot_loop_bytes=max(inner) if inner else 0,
    )


def knee_net(
    points: Sequence, tolerance: float = 1.10
) -> Optional[int]:
    """Smallest net size whose miss ratio is within ``tolerance`` of the floor.

    Args:
        points: :class:`~repro.analysis.sweep.SweepPoint`-like objects
            (anything with ``geometry.net_size`` and ``miss_ratio``),
            any order; one point per net size.
        tolerance: Relative band above the curve minimum that still
            counts as "flat" (1.10 = within 10%).
    """
    curve = sorted(points, key=lambda point: point.geometry.net_size)
    if not curve:
        return None
    floor = min(point.miss_ratio for point in curve)
    for point in curve:
        if point.miss_ratio <= floor * tolerance:
            return point.geometry.net_size
    return None  # pragma: no cover - the minimum itself always qualifies


def compare_with_sweep(
    report: FootprintReport,
    points: Sequence,
    tolerance: float = 1.10,
    slack: float = 8.0,
    classified_knee: Optional[int] = None,
) -> LocalityComparison:
    """Check a predicted footprint against a simulated miss-ratio curve.

    The comparison is deliberately loose — a ``slack``-factor band —
    because the static estimate ignores the stack and replacement
    effects; what it must catch is *gross* disagreement (a "tight loop"
    program whose curve never flattens, a "huge footprint" program that
    is flat from the smallest cache), which is exactly the signal that
    a trace is not exercising the locality its program promises.

    Args:
        classified_knee: When given (the abstract-interpretation knee
            from :func:`repro.staticcheck.abscache.predict_knee`, or
            its chain-aware counterpart
            :func:`repro.staticcheck.abschain.predict_chain_knee`), it
            replaces the structural footprint estimate — the abstract
            analysis accounts for mapping conflicts, replacement, and
            (for the chain-aware knee) miss-path structures that
            service would-be misses, so its prediction is the tighter
            one.
    """
    # Steady state sits in the hot loop: its code plus (a subset of) the
    # data segment it streams over.  Loop-free programs touch everything
    # once, so the whole static footprint is the estimate.
    if classified_knee is not None:
        predicted = max(classified_knee, 1)
    elif report.hot_loop_bytes:
        predicted = max(report.hot_loop_bytes + report.data_bytes, 1)
    else:
        predicted = max(report.total_bytes, 1)
    curve = sorted(points, key=lambda point: point.geometry.net_size)
    detail = {
        point.geometry.net_size: point.miss_ratio for point in curve
    }
    knee = knee_net(curve, tolerance=tolerance)
    monotone = all(
        later.miss_ratio <= earlier.miss_ratio * tolerance
        for earlier, later in zip(curve, curve[1:])
    )
    if knee is None or not curve:
        # The curve never flattened: consistent only if the prediction
        # also exceeds the largest simulated cache.
        largest = curve[-1].geometry.net_size if curve else 0
        consistent = predicted > largest
    elif (
        classified_knee is None
        and not report.hot_loop_bytes
        and knee == curve[0].geometry.net_size
    ):
        # A loop-free program has no steady state: every reference is
        # compulsory, so the curve is flat from the smallest cache and
        # the knee position carries no information about the footprint.
        # An empty working-set list therefore never contradicts a flat
        # curve, whatever the total footprint says.
        consistent = True
    else:
        consistent = predicted / slack <= knee and knee <= predicted * slack
    return LocalityComparison(
        predicted_bytes=predicted,
        observed_knee_net=knee,
        consistent=consistent,
        monotone=monotone,
        detail=detail,
    )
