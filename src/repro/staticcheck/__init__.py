"""Static analysis over workload programs, cache configs, and sweeps.

Three layers, all producing the same structured
:class:`~repro.staticcheck.diagnostics.Diagnostic` findings:

* **Program checks** (:mod:`repro.staticcheck.checks`) — CFG and
  dataflow analysis of assembled toy-machine programs: bad control
  targets, unreachable code, uninitialized register reads, stack
  imbalance, out-of-segment memory accesses, provable non-termination.
* **Locality prediction** (:mod:`repro.staticcheck.locality`) —
  code/data footprints and innermost-loop working sets from the CFG,
  cross-checkable against simulated miss-ratio curves.
* **Config lint** (:mod:`repro.staticcheck.configlint` /
  :mod:`repro.staticcheck.preflight`) — cache-geometry and sweep-grid
  validation with stable rule ids, wired in as fail-fast preflight for
  the runner (reject before checkpointing) and the HTTP service
  (400 with diagnostics, engine never invoked).
* **Abstract cache analysis** (:mod:`repro.staticcheck.abscache`) —
  must/may abstract interpretation classifying every reference site as
  always-hit / always-miss / first-miss / unclassified for one concrete
  geometry, differentially verified against the simulator.
* **Hierarchical chain analysis** (:mod:`repro.staticcheck.abschain`) —
  the same fixpoint lifted through the miss-path chain (victim cache,
  miss cache, stream buffers, backing L2): per-site hierarchical
  proofs (``chain-hit@<structure>``, ``memory-bound``) plus static
  ``[lo, hi]`` bounds on the chain's traffic counters, differentially
  verified against a cold chained simulation.

``python -m repro lint`` runs the program analyzer over every bundled
workload program; ``python -m repro classify`` runs the abstract cache
analysis.  See ``docs/staticcheck.md`` for the rule catalogue.
"""

from repro.errors import StaticCheckError
from repro.staticcheck.abscache import (
    ClassificationReport,
    SiteClass,
    SiteResult,
    VerificationResult,
    classify_program,
    predict_knee,
    verify_classification,
)
from repro.staticcheck.abschain import (
    ChainClassificationReport,
    ChainSiteClass,
    ChainSiteResult,
    ChainVerificationResult,
    classify_chain_program,
    lint_chain_report,
    predict_chain_knee,
    verify_chain_classification,
)
from repro.staticcheck.cfg import BasicBlock, ControlFlowGraph, Loop, build_cfg
from repro.staticcheck.checks import PROGRAM_RULES, check_program
from repro.staticcheck.configlint import (
    CONFIG_RULES,
    check_geometry,
    lint_cell_options,
    lint_geometry,
    lint_grid_axes,
    lint_sample,
    lint_sample_coverage,
)
from repro.staticcheck.diagnostics import (
    Diagnostic,
    Severity,
    error_count,
    format_diagnostics,
    raise_on_errors,
)
from repro.staticcheck.locality import (
    FootprintReport,
    LocalityComparison,
    LoopSummary,
    compare_with_sweep,
    footprint,
    knee_net,
)
from repro.staticcheck.phases import (
    DEFAULT_K,
    Phase,
    PhasePlan,
    SamplingConfig,
    analyze_trace,
)
from repro.staticcheck.preflight import preflight_sweep

__all__ = [
    "ClassificationReport",
    "SiteClass",
    "SiteResult",
    "VerificationResult",
    "classify_program",
    "predict_knee",
    "verify_classification",
    "ChainClassificationReport",
    "ChainSiteClass",
    "ChainSiteResult",
    "ChainVerificationResult",
    "classify_chain_program",
    "lint_chain_report",
    "predict_chain_knee",
    "verify_chain_classification",
    "BasicBlock",
    "ControlFlowGraph",
    "Loop",
    "build_cfg",
    "check_program",
    "PROGRAM_RULES",
    "CONFIG_RULES",
    "check_geometry",
    "lint_cell_options",
    "lint_geometry",
    "lint_grid_axes",
    "lint_sample",
    "lint_sample_coverage",
    "DEFAULT_K",
    "Phase",
    "PhasePlan",
    "SamplingConfig",
    "analyze_trace",
    "Diagnostic",
    "Severity",
    "StaticCheckError",
    "error_count",
    "format_diagnostics",
    "raise_on_errors",
    "FootprintReport",
    "LocalityComparison",
    "LoopSummary",
    "compare_with_sweep",
    "footprint",
    "knee_net",
    "preflight_sweep",
]
