"""Must/may abstract-interpretation cache analysis over the CFG.

Classifies every instruction-fetch and data-reference *site* of an
assembled toy-machine program, for one concrete cache geometry, as:

* ``always-hit`` — the reference hits on every execution;
* ``always-miss`` — the reference misses on every execution;
* ``first-miss`` — at most the first execution of the site misses
  (the block is *persistent*: never evicted between two executions);
* ``unclassified`` — the analysis cannot prove any of the above.

The analysis is the classic must/may age-bound abstract interpretation
(Ferdinand-style), extended with the sub-block valid-bit abstraction
this repository's caches need:

* the **must** state maps block addresses to *upper* age bounds plus a
  mask of sub-blocks guaranteed valid — intersected at CFG joins; a
  block in must with all needed sub-blocks in the guaranteed-valid mask
  proves ``always-hit``;
* the **may** state maps block addresses to *lower* age bounds plus a
  mask of sub-blocks possibly valid — unioned at joins; a block absent
  from may (or one whose needed sub-block is outside the possibly-valid
  mask) proves ``always-miss``.  A reference through a statically
  unknown address poisons may to ``TOP`` (anything may be cached);
* a **persistence** state tracks, per block, a sticky
  "evicted-since-loaded" marker; a site whose blocks are never evicted
  after loading on any path is ``first-miss`` (reads and fetches only —
  a non-allocating write miss loads nothing, so it can repeat).

Addresses come from a global constant propagation over the eight
registers (entry state: zeros plus the machine's ``sp``), run on a
context-insensitive interprocedural supergraph: ``call`` edges enter
the callee, ``ret`` edges return to every call-site fall-through, and
``sp`` is restored across calls when the program is provably
stack-balanced.  Fetch policies are modeled exactly: demand fetch gains
the needed sub-blocks; load-forward gains the forward range from a
guaranteed-missing sub-block (must) and may gain the full forward range
(may), so sector geometries and both load-forward variants are sound.

Replacement is modeled as LRU (the repository's and the paper's
default); :func:`classify_program` refuses other policies rather than
silently producing unsound bounds.  Soundness is pinned end to end by
:func:`verify_classification`, which executes the program, replays its
trace through the concrete :class:`~repro.core.cache.SubBlockCache`,
attributes every access back to its site, and fails loudly if any
``always-hit`` misses, any ``always-miss`` hits, or any ``first-miss``
misses twice.  See ``docs/staticcheck.md``.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.block import mask_of_range
from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy, LoadForwardFetch, make_fetch
from repro.errors import ConfigurationError, StaticCheckError
from repro.staticcheck.cfg import ControlFlowGraph, build_cfg
from repro.staticcheck.checks import check_program
from repro.staticcheck.diagnostics import Diagnostic, Severity, raise_on_errors
from repro.trace.record import AccessType
from repro.workloads.assembler import AssembledProgram
from repro.workloads.isa import Instruction, Op
from repro.workloads.machine import Machine

__all__ = [
    "SiteClass",
    "SiteResult",
    "ClassificationReport",
    "VerificationResult",
    "classify_program",
    "verify_classification",
    "predict_knee",
]

#: Safety valve for the fixpoint loop; the lattices are finite, so this
#: should never fire on a real program.  Generous because the may state
#: can track one entry per touched block, each with its own descending
#: age chain.
_MAX_VISITS_PER_BLOCK = 100_000

#: Value cap for the constant propagation: anything this large cannot
#: be a meaningful byte address, and tracking it risks huge-int blowup.
_VALUE_CAP = 1 << 62

_REG_WRITERS = frozenset(
    {
        Op.LI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND,
        Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.ADDI, Op.LD, Op.LDB, Op.POP,
    }
)


class SiteClass(enum.Enum):
    """Static classification of one reference site."""

    ALWAYS_HIT = "always-hit"
    ALWAYS_MISS = "always-miss"
    FIRST_MISS = "first-miss"
    UNCLASSIFIED = "unclassified"

    def __str__(self) -> str:  # pragma: no cover - presentation sugar
        return self.value


@dataclass(frozen=True)
class SiteResult:
    """Classification of one reference site.

    Attributes:
        site: Stable site key ``"<instruction index>:<role>"`` where the
            role is ``ifetch`` (first instruction word), ``imm`` (the
            immediate word of a two-word instruction), or ``data`` (the
            memory reference of a load/store/stack instruction).
        instr_addr: Byte address of the owning instruction.
        kind: ``"ifetch"``, ``"read"``, or ``"write"``.
        classification: The proven :class:`SiteClass`.
        target: Referenced byte address when statically known, else
            ``None`` (such sites are always ``unclassified``).
        reason: Short human-readable justification.
    """

    site: str
    instr_addr: int
    kind: str
    classification: SiteClass
    target: Optional[int] = None
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "site": self.site,
            "instr_addr": self.instr_addr,
            "kind": self.kind,
            "class": self.classification.value,
        }
        if self.target is not None:
            payload["target"] = self.target
        if self.reason:
            payload["reason"] = self.reason
        return payload


@dataclass(frozen=True)
class ClassificationReport:
    """Every site of one program classified for one geometry."""

    name: str
    word_size: int
    stack_words: int
    fetch: str
    net_size: int
    block_size: int
    sub_block_size: int
    associativity: int
    sites: Tuple[SiteResult, ...] = ()

    @property
    def counts(self) -> Dict[str, int]:
        """Site count per classification value."""
        out = {cls.value: 0 for cls in SiteClass}
        for site in self.sites:
            out[site.classification.value] += 1
        return out

    @property
    def unclassified_fraction(self) -> float:
        """Fraction of sites the analysis could not classify."""
        if not self.sites:
            return 0.0
        unclassified = sum(
            1
            for site in self.sites
            if site.classification is SiteClass.UNCLASSIFIED
        )
        return unclassified / len(self.sites)

    def geometry(self) -> CacheGeometry:
        """The geometry the report was computed for."""
        return CacheGeometry(
            net_size=self.net_size,
            block_size=self.block_size,
            sub_block_size=self.sub_block_size,
            associativity=self.associativity,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (``repro classify --format json``)."""
        return {
            "schema_version": 1,
            "name": self.name,
            "word_size": self.word_size,
            "stack_words": self.stack_words,
            "fetch": self.fetch,
            "geometry": {
                "net_size": self.net_size,
                "block_size": self.block_size,
                "sub_block_size": self.sub_block_size,
                "associativity": self.associativity,
            },
            "counts": self.counts,
            "total_sites": len(self.sites),
            "unclassified_fraction": self.unclassified_fraction,
            "sites": [site.to_dict() for site in self.sites],
        }

    def to_diagnostics(self) -> List[Diagnostic]:
        """One warning-severity finding per site (the PR 4 schema)."""
        out: List[Diagnostic] = []
        for site in self.sites:
            data: Dict[str, Any] = {"site": site.site, "kind": site.kind}
            if site.target is not None:
                data["target"] = site.target
            out.append(
                Diagnostic(
                    rule=f"abscache-{site.classification.value}",
                    severity=Severity.WARNING,
                    message=(
                        f"{site.kind} reference is {site.classification.value}"
                        + (f": {site.reason}" if site.reason else "")
                    ),
                    source=self.name,
                    location=f"addr {site.instr_addr:#x}",
                    data=data,
                )
            )
        return out


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of differentially checking a report against execution.

    Attributes:
        ok: True when no proven classification was contradicted.
        accesses: Trace accesses replayed (every one attributed; none
            silently excluded).
        checked: Accesses that landed on an ``always-hit`` /
            ``always-miss`` / ``first-miss`` site (the ones with a
            proof to check).
        unclassified_accesses: Accesses on ``unclassified`` sites.
        violations: ``(site, occurrence, expected, observed)`` tuples.
    """

    ok: bool
    accesses: int
    checked: int
    unclassified_accesses: int
    violations: Tuple[Tuple[str, int, str, str], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "accesses": self.accesses,
            "checked": self.checked,
            "unclassified_accesses": self.unclassified_accesses,
            "violations": [list(violation) for violation in self.violations],
        }


# -- Abstract state --------------------------------------------------------


class _AbsState:
    """One program point's abstract state.

    Attributes:
        regs: Constant-propagation values, ``None`` = unknown.
        must: ``{block address: (age upper bound, guaranteed-valid mask)}``
            — blocks guaranteed resident (age < ways).
        may: ``{block address: (age lower bound, possibly-valid mask)}``
            — the only blocks that can be resident; ``None`` = TOP
            (anything may be resident).
        pers: ``{block address: sticky age}`` — ``ways`` marks "possibly
            evicted after having been loaded", and is sticky.
        ext: Optional extension state for analyses that piggyback extra
            abstract domains on the same fixpoint (see
            :class:`StateExtension` and ``abschain``).
    """

    __slots__ = ("regs", "must", "may", "pers", "ext")

    def __init__(
        self,
        regs: Tuple[Optional[int], ...],
        must: Dict[int, Tuple[int, int]],
        may: Optional[Dict[int, Tuple[int, int]]],
        pers: Dict[int, int],
        ext: Optional["StateExtension"] = None,
    ) -> None:
        self.regs = list(regs)
        self.must = must
        self.may = may
        self.pers = pers
        self.ext = ext

    def copy(self) -> "_AbsState":
        return _AbsState(
            tuple(self.regs),
            dict(self.must),
            None if self.may is None else dict(self.may),
            dict(self.pers),
            None if self.ext is None else self.ext.copy(),
        )

    def snapshot(self) -> Tuple[Any, ...]:
        return (
            tuple(self.regs),
            tuple(sorted(self.must.items())),
            None if self.may is None else tuple(sorted(self.may.items())),
            tuple(sorted(self.pers.items())),
            None if self.ext is None else self.ext.snapshot(),
        )


class StateExtension:
    """Extra per-program-point abstract state carried by :class:`_AbsState`.

    Subclasses must keep the three operations consistent: ``snapshot``
    is used for fixpoint change detection, so ``join_into`` must only
    move the state up the subclass's lattice.
    """

    def copy(self) -> "StateExtension":
        raise NotImplementedError

    def snapshot(self) -> Tuple[Any, ...]:
        raise NotImplementedError

    def join_into(self, source: "StateExtension") -> None:
        """Join ``source`` into ``self`` in place."""
        raise NotImplementedError


def _join_into(target: _AbsState, source: _AbsState) -> bool:
    """Join ``source`` into ``target`` in place; True when it changed."""
    before = target.snapshot()
    for index in range(8):
        if target.regs[index] != source.regs[index]:
            target.regs[index] = None
    # must: intersect keys, weaken bounds (max age, AND valid).
    new_must: Dict[int, Tuple[int, int]] = {}
    for block, (age, valid) in target.must.items():
        other = source.must.get(block)
        if other is not None:
            new_must[block] = (max(age, other[0]), valid & other[1])
    target.must = new_must
    # may: union keys, strengthen bounds (min age, OR valid); TOP absorbs.
    if source.may is None:
        target.may = None
    elif target.may is not None:
        for block, (age, valid) in source.may.items():
            mine = target.may.get(block)
            if mine is None:
                target.may[block] = (age, valid)
            else:
                target.may[block] = (min(age, mine[0]), valid | mine[1])
    # pers: union keys, max sticky age.
    for block, age in source.pers.items():
        mine = target.pers.get(block)
        if mine is None or age > mine:
            target.pers[block] = age
    if target.ext is not None and source.ext is not None:
        target.ext.join_into(source.ext)
    return target.snapshot() != before


# -- Cache transfer functions ----------------------------------------------


class _Analyzer:
    """Shared geometry/policy context for the transfer functions."""

    def __init__(
        self,
        program: AssembledProgram,
        geometry: CacheGeometry,
        fetch: FetchPolicy,
        stack_words: int,
    ) -> None:
        self.program = program
        self.geometry = geometry
        self.fetch = fetch
        self.word = program.word_size
        self.ways = geometry.ways
        self.num_sets = geometry.num_sets
        self.nsub = geometry.sub_blocks_per_block
        self.full_mask = (1 << self.nsub) - 1
        # One word-sized access spans at most two consecutive blocks
        # (word <= sub-block <= block); consecutive blocks share a set
        # only in a single-set cache.
        self.unknown_incr = 2 if self.num_sets == 1 else 1
        self.is_load_forward = isinstance(fetch, LoadForwardFetch)
        self.is_demand = fetch.name == "demand"
        guard = 64 * self.word
        self.stack_top = (
            program.data_limit + guard + stack_words * self.word
        )
        self.cfg: ControlFlowGraph = build_cfg(program)
        self.balanced = self._stack_balanced()

    def _stack_balanced(self) -> bool:
        """True when ``sp`` can be restored across calls.

        Requires a program with no stack-imbalance findings and no
        instruction writing ``r7`` directly (stack moves only through
        push/pop/call/ret).
        """
        for inst in self.program.instructions:
            if inst.op in _REG_WRITERS and inst.a == 7:
                return False
        return not any(
            diagnostic.rule == "stack-imbalance"
            for diagnostic in check_program(self.program)
        )

    def make_entry_state(self) -> _AbsState:
        """Cold entry state: machine register file, empty cache."""
        return _AbsState(
            tuple([0] * 7 + [self.stack_top]), {}, {}, {}
        )

    # -- Piece decomposition ------------------------------------------

    def pieces(self, addr: int, size: int) -> List[Tuple[int, int, int]]:
        """``(block address, needed mask, first sub-block)`` per block,
        in the order :class:`SubBlockCache` processes them."""
        geometry = self.geometry
        block_size = geometry.block_size
        sub = geometry.sub_block_size
        out: List[Tuple[int, int, int]] = []
        first_block = addr // block_size
        last_block = (addr + size - 1) // block_size
        for block_addr in range(first_block, last_block + 1):
            base = block_addr * block_size
            lo = max(addr, base) - base
            hi = min(addr + size, base + block_size) - 1 - base
            first_sub = lo // sub
            out.append(
                (block_addr, mask_of_range(first_sub, hi // sub), first_sub)
            )
        return out

    # -- Aging rules ---------------------------------------------------

    def _age_must(self, state: _AbsState, block: int, boundary: int) -> None:
        """Age the must state for an access to ``block``.

        Blocks of the same set with an upper bound below ``boundary``
        (the accessed block's own bound, or ``ways`` when it is not
        guaranteed resident) move one step toward eviction; bounds at or
        above the boundary cannot be overtaken and keep their age.
        """
        set_index = block % self.num_sets
        ways = self.ways
        for other in list(state.must):
            if other == block or other % self.num_sets != set_index:
                continue
            age, valid = state.must[other]
            if age < boundary:
                if age + 1 >= ways:
                    del state.must[other]
                else:
                    state.must[other] = (age + 1, valid)

    def _age_may(self, state: _AbsState, block: int, boundary: int) -> None:
        """Age the may state for an access to ``block``.

        Blocks whose lower bound does not exceed the accessed block's
        old bound may have been younger, so their minimum age rises;
        reaching ``ways`` proves eviction and drops them from may.
        """
        if state.may is None:
            return
        set_index = block % self.num_sets
        ways = self.ways
        for other in list(state.may):
            if other == block or other % self.num_sets != set_index:
                continue
            age, valid = state.may[other]
            if age <= boundary:
                if age + 1 >= ways:
                    del state.may[other]
                else:
                    state.may[other] = (age + 1, valid)

    def _pers_touch(
        self, state: _AbsState, block: int, loads: bool
    ) -> None:
        """Persistence update for an access to ``block``.

        Same-set blocks age (sticky at ``ways``); the accessed block
        returns to age 0 unless its eviction marker is already set.
        ``loads`` is False for non-allocating writes, which never bring
        an absent block in.
        """
        set_index = block % self.num_sets
        ways = self.ways
        for other, age in state.pers.items():
            if other != block and other % self.num_sets == set_index:
                state.pers[other] = min(ways, age + 1)
        current = state.pers.get(block)
        if current == ways:
            return  # sticky: it was evicted after a load on some path
        if current is not None or loads:
            state.pers[block] = 0

    # -- Reference transfer --------------------------------------------

    def apply_known(
        self, state: _AbsState, addr: int, size: int, kind: AccessType
    ) -> None:
        for block, needed, first_sub in self.pieces(addr, size):
            self._apply_piece(state, block, needed, first_sub, kind)

    def _apply_piece(
        self,
        state: _AbsState,
        block: int,
        needed: int,
        first_sub: int,
        kind: AccessType,
    ) -> None:
        must = state.must
        may = state.may
        if kind is AccessType.WRITE:
            # Write-through-no-allocate: promotes when resident, never
            # allocates or validates.
            if may is not None and block not in may:
                return  # guaranteed absent: the cache is untouched
            if block in must:
                age, valid = must[block]
                self._age_must(state, block, age)
                must[block] = (0, valid)
                if may is not None:
                    lb, possibly = may[block]
                    self._age_may(state, block, lb)
                    may[block] = (0, possibly)
                self._pers_touch(state, block, loads=False)
            else:
                # Possibly resident: the promotion may or may not
                # happen.  must ages conservatively; in may, every
                # other bound survives the join with the no-op outcome
                # unchanged, and the block itself may now be youngest.
                self._age_must(state, block, self.ways)
                if may is not None and block in may:
                    may[block] = (0, may[block][1])
                self._pers_touch(state, block, loads=False)
            return

        # Read / instruction fetch: the block ends resident and
        # most-recently used, whatever the prior state.
        must_boundary = must[block][0] if block in must else self.ways
        may_boundary = (
            may[block][0] if may is not None and block in may else self.ways
        )
        self._age_must(state, block, must_boundary)
        self._age_may(state, block, may_boundary)

        old_must_valid = must[block][1] if block in must else 0
        if may is None:
            old_may_valid = self.full_mask
        elif block in may:
            old_may_valid = may[block][1]
        else:
            old_may_valid = 0
        proven_absent = may is not None and block not in may

        must_gain, may_gain = self._gain_masks(
            needed, first_sub, old_may_valid, proven_absent
        )
        must[block] = (0, old_must_valid | must_gain)
        if may is not None:
            may[block] = (0, old_may_valid | may_gain)
        self._pers_touch(state, block, loads=True)

    def _gain_masks(
        self,
        needed: int,
        first_sub: int,
        old_may_valid: int,
        proven_absent: bool,
    ) -> Tuple[int, int]:
        """``(guaranteed, possible)`` valid-mask gains for one read piece."""
        if proven_absent:
            # The concrete valid mask is exactly empty: the fetch plan
            # is known precisely, for any policy.
            plan = self.fetch.plan(needed, first_sub, 0, self.nsub)
            return plan.fetch_mask, plan.fetch_mask
        if self.is_demand:
            return needed, needed
        if self.is_load_forward:
            # Guaranteed gain: if some needed sub-block is invalid in
            # every state, a fetch happens and starts at or before it.
            guaranteed_missing = needed & ~old_may_valid
            if guaranteed_missing:
                start = (
                    guaranteed_missing & -guaranteed_missing
                ).bit_length() - 1
                must_gain = needed | mask_of_range(start, self.nsub - 1)
            else:
                must_gain = needed
            # Possible gain: a fetch can start as early as the first
            # needed sub-block and runs to the end of the block.
            return must_gain, mask_of_range(first_sub, self.nsub - 1)
        # Unknown policy: it must at least validate the needed
        # sub-blocks and may validate anything.
        return needed, self.full_mask

    def apply_unknown(self, state: _AbsState, kind: AccessType) -> None:
        """Transfer for a reference through a statically unknown address."""
        incr = self.unknown_incr
        ways = self.ways
        for block in list(state.must):
            age, valid = state.must[block]
            if age + incr >= ways:
                del state.must[block]
            else:
                state.must[block] = (age + incr, valid)
        for block, age in state.pers.items():
            state.pers[block] = min(ways, age + incr)
        if kind is AccessType.WRITE:
            # No allocation, but any resident block may now be youngest.
            if state.may is not None:
                for block, (_age, valid) in state.may.items():
                    state.may[block] = (0, valid)
        else:
            state.may = None  # any block may have been brought in

    # -- Classification ------------------------------------------------

    def classify_ref(
        self, state: _AbsState, addr: int, size: int, kind: AccessType
    ) -> Tuple[SiteClass, str]:
        """Classify one reference against the state *before* it runs.

        ``first-miss`` is checked here only as a candidate; the caller
        applies the read/ifetch restriction.
        """
        pieces = self.pieces(addr, size)
        all_hit = True
        for block, needed, _ in pieces:
            entry = state.must.get(block)
            if entry is None or needed & ~entry[1]:
                all_hit = False
                break
        if all_hit:
            return (
                SiteClass.ALWAYS_HIT,
                "block resident with needed sub-blocks valid on every path",
            )
        if state.may is not None:
            for block, needed, _ in pieces:
                entry = state.may.get(block)
                if entry is None:
                    return (
                        SiteClass.ALWAYS_MISS,
                        f"block {block:#x} is absent on every path",
                    )
                if needed & ~entry[1]:
                    return (
                        SiteClass.ALWAYS_MISS,
                        "a needed sub-block is invalid on every path",
                    )
        if kind is not AccessType.WRITE and all(
            state.pers.get(block, 0) < self.ways for block, _, _ in pieces
        ):
            return (
                SiteClass.FIRST_MISS,
                "never evicted after loading on any path",
            )
        return (SiteClass.UNCLASSIFIED, "must/may bounds too weak")

    def describe_site(
        self,
        state: _AbsState,
        addr: Optional[int],
        kind: AccessType,
        kind_label: str,
    ) -> Tuple[Any, ...]:
        """Record tuple for one site at its pre-reference state.

        The first four elements are always ``(classification, reason,
        target, kind label)``; subclasses may append further elements.
        """
        if addr is None:
            return (
                SiteClass.UNCLASSIFIED,
                "address not statically known",
                None,
                kind_label,
            )
        cls, reason = self.classify_ref(state, addr, self.word, kind)
        return (cls, reason, addr, kind_label)


# -- Instruction walking ---------------------------------------------------


def _arith(op: int, left: Optional[int], right: Optional[int]) -> Optional[int]:
    """Constant fold one ALU operation; None = unknown."""
    if left is None or right is None:
        return None
    if op == Op.ADD:
        value = left + right
    elif op == Op.SUB:
        value = left - right
    elif op == Op.MUL:
        value = left * right
    elif op == Op.DIV:
        if right == 0:
            return None
        value = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            value = -value
    elif op == Op.MOD:
        if right == 0:
            return None
        value = left % right
    elif op == Op.AND:
        value = left & right
    elif op == Op.OR:
        value = left | right
    elif op == Op.XOR:
        value = left ^ right
    elif op == Op.SHL:
        if not 0 <= right <= 64:
            return None
        value = left << right
    elif op == Op.SHR:
        if not 0 <= right <= 64:
            return None
        value = left >> right
    else:  # pragma: no cover - callers dispatch only ALU ops
        return None
    return value if abs(value) <= _VALUE_CAP else None


_ALU_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
     Op.SHL, Op.SHR}
)


def _walk_instruction(
    analyzer: _Analyzer,
    state: _AbsState,
    index: int,
    inst: Instruction,
    record: Optional[Dict[str, Tuple[Any, ...]]],
) -> None:
    """Apply one instruction: its fetches, its data reference, its
    register effects.  When ``record`` is given, classify each
    reference against the pre-state (the classification pass)."""
    word = analyzer.word
    regs = state.regs

    def reference(
        site: str, kind: AccessType, addr: Optional[int], kind_label: str
    ) -> None:
        if record is not None and site not in record:
            record[site] = analyzer.describe_site(
                state, addr, kind, kind_label
            )
        if addr is None or addr < 0:
            analyzer.apply_unknown(state, kind)
        else:
            analyzer.apply_known(state, addr, word, kind)

    reference(f"{index}:ifetch", AccessType.IFETCH, inst.addr, "ifetch")
    if inst.words == 2:
        reference(f"{index}:imm", AccessType.IFETCH, inst.addr + word, "ifetch")

    op = inst.op
    data_site = f"{index}:data"
    if op in (Op.LD, Op.LDB):
        base = regs[inst.b]
        addr = None if base is None else base + inst.imm
        reference(data_site, AccessType.READ, addr, "read")
        regs[inst.a] = None
    elif op in (Op.ST, Op.STB):
        base = regs[inst.b]
        addr = None if base is None else base + inst.imm
        reference(data_site, AccessType.WRITE, addr, "write")
    elif op in (Op.PUSH, Op.CALL):
        sp = regs[7]
        addr = None if sp is None else sp - word
        reference(data_site, AccessType.WRITE, addr, "write")
        regs[7] = addr
    elif op in (Op.POP, Op.RET):
        sp = regs[7]
        reference(data_site, AccessType.READ, sp, "read")
        regs[7] = None if sp is None else sp + word
        if op == Op.POP:
            regs[inst.a] = None  # overwrites r7 when popping into sp
    elif op == Op.LI:
        regs[inst.a] = inst.imm
    elif op == Op.ADDI:
        value = regs[inst.a]
        regs[inst.a] = None if value is None else value + inst.imm
        if regs[inst.a] is not None and abs(regs[inst.a]) > _VALUE_CAP:
            regs[inst.a] = None
    elif op == Op.MOV:
        regs[inst.a] = regs[inst.b]
    elif op in _ALU_OPS:
        regs[inst.a] = _arith(op, regs[inst.a], regs[inst.b])
    # Branches, jmp, nop, halt: no register or reference effects beyond
    # the instruction fetch handled above.


def _walk_block(
    analyzer: _Analyzer,
    state: _AbsState,
    block_index: int,
    record: Optional[Dict[str, Tuple[Any, ...]]],
) -> _AbsState:
    cfg = analyzer.cfg
    block = cfg.blocks[block_index]
    for index in range(block.start, block.end):
        _walk_instruction(
            analyzer, state, index, cfg.program.instructions[index], record
        )
    return state


# -- Interprocedural supergraph fixpoint -----------------------------------


def _call_sites(cfg: ControlFlowGraph) -> List[Tuple[int, Optional[int]]]:
    """``(call block, fall-through block or None)`` per ``call``."""
    sites: List[Tuple[int, Optional[int]]] = []
    program = cfg.program
    for block in cfg.blocks:
        last = program.instructions[block.end - 1]
        if last.op == Op.CALL:
            fall = (
                cfg.block_of[block.end]
                if block.end < len(program.instructions)
                else None
            )
            sites.append((block.index, fall))
    return sites


def _analyze(analyzer: _Analyzer) -> Tuple[
    Dict[int, _AbsState],
    Dict[str, Tuple[Any, ...]],
]:
    """Run the combined fixpoint; returns block in-states and the
    per-site classification recorded on a final stable pass."""
    cfg = analyzer.cfg
    program = cfg.program
    if not cfg.blocks:
        return {}, {}
    word = analyzer.word

    call_sites = _call_sites(cfg)
    ret_blocks = [
        block.index
        for block in cfg.blocks
        if program.instructions[block.end - 1].op == Op.RET
    ]
    call_out_r7: Dict[int, Optional[int]] = {}

    entry = analyzer.make_entry_state()
    in_states: Dict[int, _AbsState] = {0: entry}
    worklist = deque([0])
    queued = {0}
    visits: Dict[int, int] = {}

    def successors(
        block_index: int, out: _AbsState
    ) -> List[Tuple[int, bool, Optional[int]]]:
        """``(successor, patch sp, patched value)`` edges."""
        block = cfg.blocks[block_index]
        last = program.instructions[block.end - 1]
        if last.op == Op.CALL:
            target = program.addr_to_index.get(last.imm)
            if target is None:
                return []
            return [(cfg.block_of[target], False, None)]
        if last.op == Op.RET:
            edges: List[Tuple[int, bool, Optional[int]]] = []
            for call_block, fall in call_sites:
                if fall is None or call_block not in call_out_r7:
                    continue  # gate until the call site has been walked
                caller_sp = call_out_r7[call_block]
                if analyzer.balanced and caller_sp is not None:
                    edges.append((fall, True, caller_sp + word))
                else:
                    edges.append((fall, True, None))
            return edges
        if last.op == Op.HALT:
            return []
        return [(successor, False, None) for successor in block.successors]

    while worklist:
        block_index = worklist.popleft()
        queued.discard(block_index)
        visits[block_index] = visits.get(block_index, 0) + 1
        if visits[block_index] > _MAX_VISITS_PER_BLOCK:
            raise StaticCheckError(
                "abscache fixpoint did not converge "
                f"(block {block_index} visited {visits[block_index]} times)"
            )
        out = _walk_block(
            analyzer, in_states[block_index].copy(), block_index, None
        )
        last = program.instructions[cfg.blocks[block_index].end - 1]
        if last.op == Op.CALL and (
            block_index not in call_out_r7
            or call_out_r7[block_index] != out.regs[7]
        ):
            call_out_r7[block_index] = out.regs[7]
            # Return edges depend on this call site's out-state: rewalk
            # every ret block so the new edge (or patched sp) is taken.
            for ret_block in ret_blocks:
                if ret_block in in_states and ret_block not in queued:
                    worklist.append(ret_block)
                    queued.add(ret_block)
        for successor, patch, value in successors(block_index, out):
            candidate = out.copy()
            if patch:
                candidate.regs[7] = value
            existing = in_states.get(successor)
            if existing is None:
                in_states[successor] = candidate
                changed = True
            else:
                changed = _join_into(existing, candidate)
            if changed and successor not in queued:
                worklist.append(successor)
                queued.add(successor)

    # Final pass: classify every reference against the stable states.
    record: Dict[str, Tuple[Any, ...]] = {}
    for block_index in sorted(in_states):
        _walk_block(
            analyzer, in_states[block_index].copy(), block_index, record
        )
    return in_states, record


# -- Public API ------------------------------------------------------------


def _site_sort_key(site: str) -> Tuple[int, int]:
    index, role = site.split(":", 1)
    return (int(index), {"ifetch": 0, "imm": 1, "data": 2}[role])


def _resolve_fetch(fetch: Union[str, FetchPolicy]) -> FetchPolicy:
    return make_fetch(fetch) if isinstance(fetch, str) else fetch


def classify_program(
    program: AssembledProgram,
    geometry: CacheGeometry,
    *,
    fetch: Union[str, FetchPolicy] = "demand",
    stack_words: int = 4096,
    name: str = "",
    check: bool = True,
) -> ClassificationReport:
    """Classify every reference site of ``program`` for ``geometry``.

    Models the repository's default configuration: LRU replacement,
    write-through-no-allocate writes, word-sized accesses, and the
    machine's standard memory layout (``stack_words`` must match the
    :class:`~repro.workloads.machine.Machine` the program will run on).

    Args:
        program: The assembled program (its word size is used).
        geometry: Concrete cache shape to analyze against.
        fetch: Fetch policy name or instance (``demand``,
            ``load-forward``, ``load-forward-optimized``).
        stack_words: Stack capacity, as passed to the machine.
        name: Program name for the report and diagnostics.
        check: Refuse programs with error-severity static findings
            (the analysis assumes a program the machine can execute).

    Raises:
        StaticCheckError: When ``check`` and the program has errors.
        ConfigurationError: When the word size exceeds the sub-block
            size (no such cache can be built).
    """
    word = program.word_size
    if word > geometry.sub_block_size:
        raise ConfigurationError(
            f"word_size ({word}) exceeds sub_block_size "
            f"({geometry.sub_block_size}); no cache accepts this geometry"
        )
    if check:
        raise_on_errors(
            [d for d in check_program(program, name=name) if d.is_error],
            context=f"classify {name or 'program'}",
        )
    policy = _resolve_fetch(fetch)
    analyzer = _Analyzer(program, geometry, policy, stack_words)
    in_states, record = _analyze(analyzer)

    reachable_sites = set(record)
    sites: List[SiteResult] = []
    for index, inst in enumerate(program.instructions):
        expected = [f"{index}:ifetch"]
        if inst.words == 2:
            expected.append(f"{index}:imm")
        if inst.op in (
            Op.LD, Op.LDB, Op.ST, Op.STB, Op.PUSH, Op.POP, Op.CALL, Op.RET
        ):
            expected.append(f"{index}:data")
        for site in expected:
            if site in reachable_sites:
                cls, reason, target, kind_label = record[site][:4]
                sites.append(
                    SiteResult(
                        site=site,
                        instr_addr=inst.addr,
                        kind=kind_label,
                        classification=cls,
                        target=target,
                        reason=reason,
                    )
                )
            else:
                role = site.split(":", 1)[1]
                kind_label = (
                    "ifetch"
                    if role in ("ifetch", "imm")
                    else (
                        "read"
                        if inst.op in (Op.LD, Op.LDB, Op.POP, Op.RET)
                        else "write"
                    )
                )
                sites.append(
                    SiteResult(
                        site=site,
                        instr_addr=inst.addr,
                        kind=kind_label,
                        classification=SiteClass.UNCLASSIFIED,
                        target=None,
                        reason="unreachable from the entry point",
                    )
                )
    sites.sort(key=lambda result: _site_sort_key(result.site))
    return ClassificationReport(
        name=name,
        word_size=word,
        stack_words=stack_words,
        fetch=policy.name,
        net_size=geometry.net_size,
        block_size=geometry.block_size,
        sub_block_size=geometry.sub_block_size,
        associativity=geometry.associativity,
        sites=tuple(sites),
    )


def verify_classification(
    program: AssembledProgram,
    report: ClassificationReport,
    *,
    max_steps: int = 5_000_000,
    max_refs: Optional[int] = 200_000,
) -> VerificationResult:
    """Differentially check a report against a concrete execution.

    Runs the program on the :class:`~repro.workloads.machine.Machine`,
    replays its trace cold through a concrete
    :class:`~repro.core.cache.SubBlockCache` of the report's geometry
    and fetch policy, attributes every access back to its site, and
    records a violation whenever an ``always-hit`` access misses, an
    ``always-miss`` access hits, or a ``first-miss`` site misses after
    its first occurrence.  Every access is attributed — truncated runs
    simply check a prefix, never skip accesses.
    """
    machine = Machine(program, stack_words=report.stack_words)
    trace = machine.run(max_steps=max_steps, max_refs=max_refs).trace
    cache = SubBlockCache(
        report.geometry(),
        fetch=make_fetch(report.fetch),
        word_size=report.word_size,
    )
    class_of = {
        site.site: site.classification for site in report.sites
    }
    addr_to_index = program.addr_to_index
    occurrences: Dict[str, int] = {}
    violations: List[Tuple[str, int, str, str]] = []
    checked = unclassified = 0
    current = -1
    for access in trace:
        if access.kind is AccessType.IFETCH:
            index = addr_to_index.get(int(access.addr))
            if index is not None:
                current = index
                site = f"{index}:ifetch"
            else:
                site = f"{current}:imm"
        else:
            site = f"{current}:data"
        hit = cache.access(int(access.addr), access.kind, int(access.size))
        occurrence = occurrences.get(site, 0)
        occurrences[site] = occurrence + 1
        cls = class_of.get(site)
        observed = "hit" if hit else "miss"
        if cls is None:
            violations.append(
                (site, occurrence, "a classified site", observed)
            )
            continue
        if cls is SiteClass.UNCLASSIFIED:
            unclassified += 1
            continue
        checked += 1
        if cls is SiteClass.ALWAYS_HIT and not hit:
            violations.append((site, occurrence, "hit", "miss"))
        elif cls is SiteClass.ALWAYS_MISS and hit:
            violations.append((site, occurrence, "miss", "hit"))
        elif cls is SiteClass.FIRST_MISS and occurrence > 0 and not hit:
            violations.append(
                (site, occurrence, "hit after first occurrence", "miss")
            )
    return VerificationResult(
        ok=not violations,
        accesses=len(trace),
        checked=checked,
        unclassified_accesses=unclassified,
        violations=tuple(violations),
    )


def predict_knee(
    program: AssembledProgram,
    nets: Sequence[int],
    *,
    block_size: int,
    sub_block_size: Optional[int] = None,
    associativity: int = 4,
    fetch: Union[str, FetchPolicy] = "demand",
    stack_words: int = 4096,
    name: str = "",
) -> Optional[int]:
    """Predict the miss-ratio knee from classification counts.

    For each candidate net size, counts the loop-body sites proven
    ``always-hit`` or ``first-miss`` — the references that stop missing
    in steady state.  The predicted knee is the smallest net size whose
    coverage reaches the maximum over all candidates with no loop-body
    site proven ``always-miss``: beyond it, added capacity converts no
    further steady-state references, which is where a miss-ratio curve
    flattens.  Returns None for loop-free programs (no steady state,
    no knee) or when every candidate geometry is invalid.
    """
    cfg = build_cfg(program)
    loops = cfg.natural_loops()
    if not loops:
        return None
    loop_instructions = set()
    for loop in loops:
        for block_index in loop.body:
            block = cfg.blocks[block_index]
            loop_instructions.update(range(block.start, block.end))

    coverage: List[Tuple[int, int]] = []  # (net, AH+FM loop sites)
    for net in sorted(set(nets)):
        try:
            geometry = CacheGeometry(
                net_size=net,
                block_size=block_size,
                sub_block_size=sub_block_size or block_size,
                associativity=associativity,
            )
        except ConfigurationError:
            continue
        report = classify_program(
            program,
            geometry,
            fetch=fetch,
            stack_words=stack_words,
            name=name,
        )
        settled = 0
        any_miss = False
        for site in report.sites:
            index = int(site.site.split(":", 1)[0])
            if index not in loop_instructions:
                continue
            if site.classification is SiteClass.ALWAYS_MISS:
                any_miss = True
                break
            if site.classification in (
                SiteClass.ALWAYS_HIT,
                SiteClass.FIRST_MISS,
            ):
                settled += 1
        if not any_miss:
            coverage.append((net, settled))
    if not coverage:
        return None
    best = max(settled for _, settled in coverage)
    for net, settled in coverage:
        if settled == best:
            return net
    return None  # pragma: no cover - the maximum always occurs
