"""The reference engine: the object-model loop behind the interface.

This is the paper-faithful simulator — one :class:`Access` at a time
through :class:`~repro.core.cache.SubBlockCache` — repackaged as an
:class:`~repro.engine.base.Engine`.  It defines the semantics the
vectorized engine must match exactly, and it is the only engine that
can drive per-access trace proxies (the runner's cooperative timeouts
and fault injection), so every guarded cell executes here regardless
of the requested engine.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy
from repro.core.misspath import MissPathConfig
from repro.core.replacement import ReplacementPolicy
from repro.core.sim import simulate
from repro.core.stats import CacheStats
from repro.core.write import WritePolicy
from repro.engine.base import Engine, deadline_guard
from repro.engine.traceview import TraceView

__all__ = ["ReferenceEngine"]


class ReferenceEngine(Engine):
    """Per-access object-model execution (the equivalence baseline)."""

    name = "reference"

    def run(
        self,
        geometry: CacheGeometry,
        trace,
        *,
        replacement: Optional[ReplacementPolicy] = None,
        fetch: Optional[FetchPolicy] = None,
        write_policy: WritePolicy = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        word_size: int = 2,
        warmup: Union[int, str] = "fill",
        flush_at_end: bool = False,
        deadline: Optional[float] = None,
        miss_path: "Union[MissPathConfig, Dict[str, Any], None]" = None,
    ) -> CacheStats:
        if isinstance(trace, TraceView):
            trace = trace.trace
        cache = SubBlockCache(
            geometry,
            replacement=replacement,
            fetch=fetch,
            write_policy=write_policy,
            word_size=word_size,
            miss_path=miss_path,
        )
        if deadline is not None:
            trace = deadline_guard(trace, deadline)
        return simulate(cache, trace, warmup=warmup, flush_at_end=flush_at_end)
