"""Shared, cached structure-of-arrays views of traces.

A sweep simulates the *same* trace under dozens of geometries, and the
per-access decode (block address, set index, tag, needed-sub-block
mask) only depends on a few geometry scalars — so a ``TraceView``
computes each decode product once and hands the cached arrays to every
cell that shares the parameters ("decode once, simulate many").  The
caches are split by what each product actually depends on, so e.g. the
needed-mask arrays for ``(block=16, sub=8)`` are reused across every
net size of a figure sweep:

* block addresses — keyed on ``block_size``;
* set index / tag — keyed on ``(block_size, num_sets)``;
* needed masks, span flags, and run boundaries — keyed on
  ``(block_size, sub_block_size, word_size)``.

The view also memoizes the paper's read-only filtering
(:func:`repro.trace.filters.reads_only`), so repeated sweeps over one
trace — Table 8's per-row sweeps, the figure families — filter it once
instead of re-materializing three NumPy arrays per sweep call.

Views are interned per trace *identity* via :meth:`TraceView.of`; the
registry holds strong references in a bounded LRU, which both bounds
memory and guarantees a cached entry can never alias a new trace that
reused a dead object's ``id``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.core.config import CacheGeometry
from repro.engine.kernels import effective_sizes, needed_masks, run_starts
from repro.trace.filters import reads_only
from repro.trace.record import Trace

__all__ = ["TraceView"]

#: Entries kept per decode cache.  A sweep grid visits each parameter
#: combination in long consecutive stretches, so a small LRU captures
#: all the reuse while bounding memory for 1M-reference traces.
_DECODE_LRU = 16

#: Interned views.  Strong references, so an entry's trace id cannot be
#: recycled while the view is alive.
_REGISTRY_LRU = 32


class _LRU(OrderedDict):
    """Tiny bounded LRU used for the decode and view caches."""

    def __init__(self, maxsize: int) -> None:
        super().__init__()
        self.maxsize = maxsize

    def lookup(self, key, compute):
        if key in self:
            self.move_to_end(key)
            return self[key]
        value = compute()
        self[key] = value
        if len(self) > self.maxsize:
            self.popitem(last=False)
        return value


class TraceView:
    """Cached decode products of one :class:`~repro.trace.record.Trace`.

    Build views through :meth:`of` so that every consumer of a trace —
    all geometries of a sweep, repeated sweeps in one process — shares
    one view and therefore one set of decode arrays.
    """

    __slots__ = ("trace", "_reads_only", "_esz", "_blocks", "_settag", "_masks")

    _registry: "_LRU" = _LRU(_REGISTRY_LRU)

    def __init__(self, trace: Trace) -> None:
        if not isinstance(trace, Trace):
            raise TypeError(
                f"TraceView wraps a Trace, got {type(trace).__name__}"
            )
        self.trace = trace
        self._reads_only: Optional[Trace] = None
        self._esz = _LRU(4)
        self._blocks = _LRU(_DECODE_LRU)
        self._settag = _LRU(_DECODE_LRU)
        self._masks = _LRU(_DECODE_LRU)

    @classmethod
    def of(cls, trace: Trace) -> "TraceView":
        """Interned view for ``trace`` (same object ⇒ same view)."""
        key = id(trace)
        view = cls._registry.get(key)
        if view is not None and view.trace is trace:
            cls._registry.move_to_end(key)
            return view
        view = cls(trace)
        cls._registry[key] = view
        if len(cls._registry) > cls._registry.maxsize:
            cls._registry.popitem(last=False)
        return view

    def __len__(self) -> int:
        return len(self.trace)

    def __repr__(self) -> str:
        return f"<TraceView of {self.trace!r}>"

    # -- Cached transforms ------------------------------------------------

    def reads_only(self) -> Trace:
        """The write-filtered trace, materialized at most once."""
        if self._reads_only is None:
            self._reads_only = reads_only(self.trace)
        return self._reads_only

    # -- Cached decode products -------------------------------------------

    def sizes_for(self, word_size: int) -> np.ndarray:
        """Effective byte size of every access (0 ⇒ one word)."""
        return self._esz.lookup(
            word_size,
            lambda: effective_sizes(self.trace.sizes, word_size),
        )

    def block_addresses(self, block_size: int) -> np.ndarray:
        """First block address touched by every access."""
        return self._blocks.lookup(
            block_size, lambda: self.trace.addrs // block_size
        )

    def set_and_tag(
        self, geometry: CacheGeometry
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Per-access set index and tag for one geometry's mapping."""
        key = (geometry.block_size, geometry.num_sets)

        def compute():
            block0 = self.block_addresses(geometry.block_size)
            return block0 % geometry.num_sets, block0 // geometry.num_sets

        return self._settag.lookup(key, compute)

    def demand(
        self, geometry: CacheGeometry, word_size: int
    ) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Needed masks, span flags, and run boundaries for one shape.

        Keyed on ``(block_size, sub_block_size, word_size)`` only, so
        the arrays are shared across net sizes and associativities.
        """
        key = (geometry.block_size, geometry.sub_block_size, word_size)

        def compute():
            esz = self.sizes_for(word_size)
            block0, needed, span = needed_masks(
                self.trace.addrs, esz, geometry.block_size,
                geometry.sub_block_size,
            )
            starts = run_starts(block0, self.trace.kinds, needed, esz, span)
            return needed, span, starts

        return self._masks.lookup(key, compute)
