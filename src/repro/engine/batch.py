"""Batch entry point: run many cells over one trace, decoding it once.

The service's query mix — and the paper's own sweeps — evaluate many
near-identical configurations against a shared trace corpus, so the
profitable unit of work is not one cell but one *trace group*: prepare
the trace a single time (read filtering, decode products), then run
every cell of the group against the shared view.

This module is that entry point.  It also carries the thread-safety
contract the service's worker pool relies on: :class:`TraceView`'s
decode caches are plain LRU dicts with no locking, so concurrent cells
may only *read* them.  :func:`predecode` populates every decode product
a batch will need from a single thread *before* the cells fan out;
after it returns, the per-cell :func:`run_cell` calls are safe to run
concurrently because they only hit warm cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy, make_fetch
from repro.core.misspath import MissPathConfig
from repro.core.replacement import make_replacement
from repro.core.stats import CacheStats
from repro.engine.base import resolve_engine
from repro.engine.traceview import TraceView
from repro.trace.filters import reads_only
from repro.trace.record import Trace

__all__ = ["CellSpec", "prepare_trace", "predecode", "run_cell", "run_batch"]


@dataclass(frozen=True)
class CellSpec:
    """One simulation cell of a batch: shape plus execution options.

    The fields mirror :meth:`repro.engine.base.Engine.run`; ``fetch``
    and ``replacement`` are names so a spec stays hashable and
    process-safe, with fresh policy objects built per run (``random``
    replacement must not share RNG state across cells).  ``miss_path``
    is the frozen (hashable) chain configuration; fresh structures are
    built per run like the policies.
    """

    geometry: CacheGeometry
    engine: str = "auto"
    fetch: str = "demand"
    replacement: str = "lru"
    warmup: Union[int, str] = "fill"
    word_size: int = 2
    miss_path: Optional[MissPathConfig] = None


def prepare_trace(trace: Trace, filter_writes: bool = True) -> Trace:
    """The trace a batch actually simulates (paper-style read filtering).

    Mirrors the runner's preparation exactly — including going through
    the interned :class:`TraceView` — so a batch cell and a sweep cell
    over the same trace object share one materialized filtered copy and
    produce byte-identical statistics.
    """
    if not filter_writes:
        return trace
    if isinstance(trace, Trace):
        return TraceView.of(trace).reads_only()
    return reads_only(trace)


def predecode(prepared: Trace, specs: Iterable[CellSpec]) -> None:
    """Populate the shared decode caches for every shape in ``specs``.

    Call from one thread before dispatching the cells of a batch to a
    worker pool: the view's LRU caches are not synchronized, and
    pre-warming them here turns the workers' accesses into pure reads.
    Non-batchable traces (proxies, iterables) are skipped — they run on
    the reference engine, which performs no decode.
    """
    if not isinstance(prepared, Trace):
        return
    view = TraceView.of(prepared)
    seen = set()
    for spec in specs:
        shape = (
            spec.geometry.block_size,
            spec.geometry.sub_block_size,
            spec.geometry.num_sets,
            spec.word_size,
        )
        if shape in seen:
            continue
        seen.add(shape)
        view.sizes_for(spec.word_size)
        view.block_addresses(spec.geometry.block_size)
        view.set_and_tag(spec.geometry)
        view.demand(spec.geometry, spec.word_size)


def run_cell(
    prepared: Trace,
    spec: CellSpec,
    deadline: Optional[float] = None,
) -> CacheStats:
    """Execute one cell of a batch and return its full statistics.

    Engine resolution and policy construction match the resilient
    runner's cell execution, so the result is interchangeable with a
    sweep cell for the same configuration.

    Args:
        deadline: Optional :func:`time.monotonic` instant propagated
            into the engine for cooperative cancellation
            (:class:`~repro.errors.DeadlineExceededError`); the
            service's ``X-Repro-Deadline-Ms`` budget ends here.
    """
    engine = resolve_engine(spec.engine, prepared, miss_path=spec.miss_path)
    fetch: Optional[FetchPolicy] = (
        make_fetch(spec.fetch) if spec.fetch != "demand" else None
    )
    return engine.run(
        spec.geometry,
        prepared,
        replacement=make_replacement(spec.replacement),
        fetch=fetch,
        word_size=spec.word_size,
        warmup=spec.warmup,
        deadline=deadline,
        miss_path=spec.miss_path,
    )


def run_batch(
    trace: Trace,
    specs: Iterable[CellSpec],
    filter_writes: bool = True,
) -> List[CacheStats]:
    """Prepare ``trace`` once, then run every spec against it in order.

    The sequential convenience driver; the service performs the same
    three phases (prepare, predecode, per-cell run) with the per-cell
    phase spread over its worker pool.
    """
    specs = list(specs)
    prepared = prepare_trace(trace, filter_writes)
    predecode(prepared, specs)
    return [run_cell(prepared, spec) for spec in specs]
