"""The vectorized batch engine.

Same semantics as the reference object-model loop, restructured for
throughput.  Three ideas carry the speedup:

1. **Whole-trace decode.**  Set index, tag, needed-sub-block mask, and
   effective size are computed for every access in a few NumPy
   operations (:mod:`repro.engine.kernels`), cached on the trace's
   :class:`~repro.engine.traceview.TraceView`, and shared by every
   geometry that agrees on the relevant parameters.  The hot loop then
   walks plain Python ints — no ``Access`` tuples, no ``AccessType``
   enum construction, no per-access address arithmetic.

2. **Run compression.**  Adjacent identical accesses (same block, kind,
   mask, size — the common case in instruction streams) leave the cache
   in a fixed point after the first: every repeat is a pure counter
   update whose effect is known in advance.  Runs are delimited
   vectorized (:func:`~repro.engine.kernels.run_starts`); the engine
   simulates the first access of each run and bulk-accounts the rest.
   Requires a replacement policy with idempotent hit handling
   (``idempotent_hits``); otherwise every access runs scalar.

3. **Flat state + compiled fetch policies.**  Per-set tag/valid/
   referenced/dirty state lives in flat lists of ints, and fetch plans
   are memoized per ``(missing, valid)`` mask pair
   (:class:`~repro.engine.kernels.FetchPlanCache`), with costs derived
   by the same :mod:`repro.core.accounting` rules the reference cache
   applies per miss.

The engine is pinned to the reference engine by the differential
equivalence suite (``tests/engine/test_equivalence.py``): identical
:class:`~repro.core.stats.CacheStats`, counter for counter, across
randomized geometries, programs, warmups, and policies.
"""

from __future__ import annotations

import bisect
import time as _time
from typing import Any, Dict, Optional, Union

from repro.core.accounting import account_eviction
from repro.core.block import mask_of_range, popcount
from repro.core.config import CacheGeometry
from repro.core.fetch import DemandFetch, FetchPolicy
from repro.core.misspath import MissPathConfig
from repro.core.replacement import LRUReplacement, ReplacementPolicy
from repro.core.stats import CacheStats
from repro.core.write import WritePolicy
from repro.engine.base import Engine
from repro.engine.kernels import FetchPlanCache
from repro.engine.traceview import TraceView
from repro.errors import ConfigurationError, DeadlineExceededError, EngineError
from repro.trace.record import AccessType, Trace

__all__ = ["VectorizedEngine"]

_KINDS = (AccessType.READ, AccessType.WRITE, AccessType.IFETCH)
_WRITE = int(AccessType.WRITE)


class VectorizedEngine(Engine):
    """Batch execution over a trace's structure-of-arrays columns."""

    name = "vectorized"

    def run(
        self,
        geometry: CacheGeometry,
        trace,
        *,
        replacement: Optional[ReplacementPolicy] = None,
        fetch: Optional[FetchPolicy] = None,
        write_policy: WritePolicy = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        word_size: int = 2,
        warmup: Union[int, str] = "fill",
        flush_at_end: bool = False,
        deadline: Optional[float] = None,
        miss_path: "Union[MissPathConfig, Dict[str, Any], None]" = None,
    ) -> CacheStats:
        config = MissPathConfig.coerce(miss_path)
        if config is not None and config.enabled:
            raise EngineError(
                "the vectorized engine cannot drive a miss-path chain "
                f"({config.key()}): structure state mutates per miss, which "
                "requires the reference engine's per-access loop "
                "(resolve_engine degrades automatically)"
            )
        if isinstance(trace, Trace):
            view = TraceView.of(trace)
        elif isinstance(trace, TraceView):
            view = trace
        else:
            raise EngineError(
                "the vectorized engine consumes a Trace's array columns; "
                f"got {type(trace).__name__} (guarded or proxied traces "
                "must run on the reference engine)"
            )
        replacement = (
            replacement if replacement is not None else LRUReplacement()
        )
        fetch = fetch if fetch is not None else DemandFetch()
        # Input validation mirrors SubBlockCache / simulate exactly.
        if word_size < 1:
            raise ConfigurationError(f"word_size must be >= 1, got {word_size}")
        if word_size > geometry.sub_block_size:
            raise ConfigurationError(
                f"word_size ({word_size}) exceeds sub_block_size "
                f"({geometry.sub_block_size}); a single word transfer "
                "could not fill a sub-block"
            )
        fill_mode = False
        reset_at: Optional[int] = None
        if warmup == "fill":
            fill_mode = True
        elif isinstance(warmup, int):
            if warmup < 0:
                raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
            reset_at = warmup if warmup > 0 else None
        else:
            raise ConfigurationError(
                f"warmup must be an int or 'fill', got {warmup!r}"
            )
        return self._run(
            geometry, view, replacement, fetch, write_policy, word_size,
            fill_mode, reset_at, flush_at_end, deadline,
        )

    def _run(
        self,
        geometry: CacheGeometry,
        view: TraceView,
        replacement: ReplacementPolicy,
        fetch: FetchPolicy,
        write_policy: WritePolicy,
        word_size: int,
        fill_mode: bool,
        reset_at: Optional[int],
        flush_at_end: bool,
        deadline: Optional[float] = None,
    ) -> CacheStats:
        t = view.trace
        n = len(t)

        # -- Decode (cached on the view, shared across geometries) --------
        set_arr, tag_arr = view.set_and_tag(geometry)
        needed_arr, span_arr, starts_arr = view.demand(geometry, word_size)
        set_l = set_arr.tolist()
        tag_l = tag_arr.tolist()
        needed_l = needed_arr.tolist()
        span_l = span_arr.tolist()
        kind_l = t.kinds.tolist()
        size_l = view.sizes_for(word_size).tolist()
        addr_l = t.addrs.tolist() if span_arr.any() else None

        compress = getattr(replacement, "idempotent_hits", False)
        if compress:
            starts = starts_arr.tolist()
            if reset_at is not None and 0 < reset_at < n:
                # The warm-up boundary must not fall inside a bulk run.
                pos = bisect.bisect_left(starts, reset_at)
                if pos == len(starts) or starts[pos] != reset_at:
                    starts.insert(pos, reset_at)
        else:
            starts = list(range(n))
        starts.append(n)

        # -- Flat cache state ---------------------------------------------
        block_size = geometry.block_size
        sub = geometry.sub_block_size
        spb = geometry.sub_blocks_per_block
        num_blocks = geometry.num_blocks
        nsets = geometry.num_sets
        nways = geometry.ways
        allocates = write_policy.allocates
        writes_through = write_policy.writes_through
        plans = FetchPlanCache(fetch, sub, word_size, spb)
        on_hit = replacement.on_hit
        on_fill = replacement.on_fill
        victim = replacement.victim

        tags = [[-1] * nways for _ in range(nsets)]
        valid = [[0] * nways for _ in range(nsets)]
        refd = [[0] * nways for _ in range(nsets)]
        dirty = [[0] * nways for _ in range(nsets)]
        states = [replacement.new_set(nways) for _ in range(nsets)]
        filled = 0
        pending_fill = fill_mode  # a fresh cache is never full

        # -- Counters (reset at the warm-up boundary) ----------------------
        accesses = misses = block_misses = sub_misses = 0
        acc_kind = [0, 0, 0]
        miss_kind = [0, 0, 0]
        bytes_accessed = bytes_fetched = redundant = bytes_wt = 0
        evictions = ev_ref = ev_tot = writebacks = bytes_wb = 0
        txn: dict = {}

        def access_block(s, tg, nd, is_write, nbytes):
            """One block's share of a (spanning) access; True on miss.

            Mirrors ``SubBlockCache._access_block``; the non-spanning
            fast path below inlines the same transitions.
            """
            nonlocal sub_misses, block_misses, bytes_fetched, redundant
            nonlocal bytes_wt, evictions, ev_ref, ev_tot, writebacks
            nonlocal bytes_wb, filled
            stags = tags[s]
            try:
                way = stags.index(tg)
            except ValueError:
                way = -1
            if way >= 0:
                on_hit(states[s], way)
                v = valid[s][way]
                missing = nd & ~v
                refd[s][way] |= nd
                if not missing:
                    if is_write:
                        if writes_through:
                            bytes_wt += nbytes
                        else:
                            dirty[s][way] |= nd
                    return False
                if is_write and not allocates:
                    bytes_wt += nbytes
                    return True
                sub_misses += 1
                fmask, words, fb, rb = plans.lookup(missing, v)
                for w in words:
                    txn[w] = txn.get(w, 0) + 1
                bytes_fetched += fb
                redundant += rb
                valid[s][way] = v | fmask
                if is_write:
                    if writes_through:
                        bytes_wt += nbytes
                    else:
                        dirty[s][way] |= nd
                return True
            if is_write and not allocates:
                bytes_wt += nbytes
                return True
            block_misses += 1
            try:
                vw = stags.index(-1)
            except ValueError:
                vw = -1
            if vw < 0:
                vw = victim(states[s])
                evictions += 1
                ev_ref += popcount(refd[s][vw])
                ev_tot += spb
                d = dirty[s][vw]
                if d:
                    writebacks += 1
                    bytes_wb += popcount(d) * sub
            else:
                filled += 1
            stags[vw] = tg
            on_fill(states[s], vw)
            fmask, words, fb, rb = plans.lookup(nd, 0)
            for w in words:
                txn[w] = txn.get(w, 0) + 1
            bytes_fetched += fb
            redundant += rb
            valid[s][vw] = fmask
            refd[s][vw] = nd
            dirty[s][vw] = nd if is_write and not writes_through else 0
            if is_write and writes_through:
                bytes_wt += nbytes
            return True

        # -- Main loop over runs -------------------------------------------
        monotonic = _time.monotonic
        for ri in range(len(starts) - 1):
            if deadline is not None and (ri & 8191) == 0:
                # Cooperative cancellation: one clock read per 8k runs
                # keeps the check out of the hot-loop profile while an
                # expired budget still surfaces within milliseconds.
                if monotonic() >= deadline:
                    raise DeadlineExceededError(
                        "request deadline expired mid-simulation"
                    )
            i = starts[ri]
            run_end = starts[ri + 1]
            if reset_at is not None and i >= reset_at:
                accesses = misses = block_misses = sub_misses = 0
                acc_kind = [0, 0, 0]
                miss_kind = [0, 0, 0]
                bytes_accessed = bytes_fetched = redundant = bytes_wt = 0
                evictions = ev_ref = ev_tot = writebacks = bytes_wb = 0
                txn = {}
                reset_at = None

            k = kind_l[i]
            sz = size_l[i]
            accesses += 1
            acc_kind[k] += 1
            bytes_accessed += sz
            is_write = k == _WRITE

            if span_l[i]:
                # Rare multi-block access: per-block scalar walk.
                addr = addr_l[i]
                missed = False
                first_block = addr // block_size
                last_block = (addr + sz - 1) // block_size
                for ba in range(first_block, last_block + 1):
                    base = ba * block_size
                    lo = max(addr, base) - base
                    hi = min(addr + sz, base + block_size) - 1 - base
                    nd = mask_of_range(lo // sub, hi // sub)
                    if access_block(
                        ba % nsets, ba // nsets, nd, is_write, hi - lo + 1
                    ):
                        missed = True
                if missed:
                    misses += 1
                    miss_kind[k] += 1
                if pending_fill and filled >= num_blocks:
                    accesses = misses = block_misses = sub_misses = 0
                    acc_kind = [0, 0, 0]
                    miss_kind = [0, 0, 0]
                    bytes_accessed = bytes_fetched = redundant = bytes_wt = 0
                    evictions = ev_ref = ev_tot = writebacks = bytes_wb = 0
                    txn = {}
                    pending_fill = False
                continue

            s = set_l[i]
            tg = tag_l[i]
            nd = needed_l[i]
            stags = tags[s]
            rep_miss = False
            try:
                way = stags.index(tg)
            except ValueError:
                way = -1
            if way >= 0:
                on_hit(states[s], way)
                v = valid[s][way]
                missing = nd & ~v
                refd[s][way] |= nd
                if not missing:
                    if is_write:
                        if writes_through:
                            bytes_wt += sz
                        else:
                            dirty[s][way] |= nd
                elif is_write and not allocates:
                    bytes_wt += sz
                    misses += 1
                    miss_kind[k] += 1
                    rep_miss = True
                else:
                    sub_misses += 1
                    fmask, words, fb, rb = plans.lookup(missing, v)
                    for w in words:
                        txn[w] = txn.get(w, 0) + 1
                    bytes_fetched += fb
                    redundant += rb
                    valid[s][way] = v | fmask
                    if is_write:
                        if writes_through:
                            bytes_wt += sz
                        else:
                            dirty[s][way] |= nd
                    misses += 1
                    miss_kind[k] += 1
            elif is_write and not allocates:
                bytes_wt += sz
                misses += 1
                miss_kind[k] += 1
                rep_miss = True
            else:
                block_misses += 1
                try:
                    vw = stags.index(-1)
                except ValueError:
                    vw = -1
                if vw < 0:
                    vw = victim(states[s])
                    evictions += 1
                    ev_ref += popcount(refd[s][vw])
                    ev_tot += spb
                    d = dirty[s][vw]
                    if d:
                        writebacks += 1
                        bytes_wb += popcount(d) * sub
                else:
                    filled += 1
                stags[vw] = tg
                on_fill(states[s], vw)
                fmask, words, fb, rb = plans.lookup(nd, 0)
                for w in words:
                    txn[w] = txn.get(w, 0) + 1
                bytes_fetched += fb
                redundant += rb
                valid[s][vw] = fmask
                refd[s][vw] = nd
                dirty[s][vw] = nd if is_write and not writes_through else 0
                if is_write and writes_through:
                    bytes_wt += sz
                misses += 1
                miss_kind[k] += 1

            if pending_fill and filled >= num_blocks:
                accesses = misses = block_misses = sub_misses = 0
                acc_kind = [0, 0, 0]
                miss_kind = [0, 0, 0]
                bytes_accessed = bytes_fetched = redundant = bytes_wt = 0
                evictions = ev_ref = ev_tot = writebacks = bytes_wb = 0
                txn = {}
                pending_fill = False

            # Bulk-account the repeats: after the first access the cache
            # is at a fixed point for this run, so each repeat adds the
            # same counters the reference loop would.
            m = run_end - i - 1
            if m:
                accesses += m
                acc_kind[k] += m
                bytes_accessed += sz * m
                if rep_miss:
                    misses += m
                    miss_kind[k] += m
                if is_write and writes_through:
                    bytes_wt += sz * m

        if reset_at is not None and reset_at <= n:
            accesses = misses = block_misses = sub_misses = 0
            acc_kind = [0, 0, 0]
            miss_kind = [0, 0, 0]
            bytes_accessed = bytes_fetched = redundant = bytes_wt = 0
            evictions = ev_ref = ev_tot = writebacks = bytes_wb = 0
            txn = {}

        # -- Fold locals into a CacheStats ---------------------------------
        stats = CacheStats()
        stats.accesses = accesses
        stats.misses = misses
        stats.block_misses = block_misses
        stats.sub_block_misses = sub_misses
        stats.accesses_by_kind = {
            kind: acc_kind[int(kind)] for kind in _KINDS
        }
        stats.misses_by_kind = {
            kind: miss_kind[int(kind)] for kind in _KINDS
        }
        stats.bytes_accessed = bytes_accessed
        stats.bytes_fetched = bytes_fetched
        stats.redundant_bytes_fetched = redundant
        stats.transaction_words = txn
        stats.evictions = evictions
        stats.evicted_sub_blocks_referenced = ev_ref
        stats.evicted_sub_blocks_total = ev_tot
        stats.writebacks = writebacks
        stats.bytes_written_back = bytes_wb
        stats.bytes_written_through = bytes_wt

        if flush_at_end:
            for s in range(nsets):
                for w in range(nways):
                    if tags[s][w] != -1:
                        account_eviction(stats, refd[s][w], dirty[s][w], spb, sub)
        return stats
