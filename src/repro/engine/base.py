"""The engine interface: pluggable executors for one simulation run.

An :class:`Engine` turns ``(geometry, trace, policies, warmup)`` into a
:class:`~repro.core.stats.CacheStats`.  Two implementations ship:

* ``reference`` — the original object-model loop
  (:class:`~repro.core.cache.SubBlockCache` driven by
  :func:`~repro.core.sim.simulate`).  It accepts *any* iterable of
  accesses, which is what the resilient runner's guarded and
  fault-injecting trace proxies rely on.
* ``vectorized`` — the NumPy batch engine
  (:mod:`repro.engine.vectorized`): whole-trace decode kernels, flat
  per-set state, memoized fetch plans.  Requires a real
  :class:`~repro.trace.record.Trace` (or
  :class:`~repro.engine.traceview.TraceView`) because it consumes the
  structure-of-arrays columns directly.

Both engines are bound by the **equivalence contract**: identical
inputs must produce *identical* stats, counter for counter.  The
differential suite in ``tests/engine`` enforces it; anything that
cannot honor it (per-access fault proxies, cooperative timeouts)
resolves to ``reference`` — see :func:`resolve_engine` and
``docs/engines.md``.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterator, Optional, Union

from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy
from repro.core.misspath import MissPathConfig
from repro.core.replacement import ReplacementPolicy
from repro.core.stats import CacheStats
from repro.core.write import WritePolicy
from repro.engine.traceview import TraceView
from repro.errors import ConfigurationError, DeadlineExceededError
from repro.trace.record import Trace

__all__ = [
    "Engine",
    "ENGINE_NAMES",
    "deadline_guard",
    "make_engine",
    "resolve_engine",
]

#: Accesses between deadline checks in the per-access engines.  Small
#: enough that an expired deadline surfaces within microseconds of
#: simulated work, large enough that the clock read is invisible in the
#: per-access profile.
DEADLINE_CHECK_EVERY = 1024


def deadline_guard(
    trace, deadline: Optional[float], stage: str = "simulate"
) -> Iterator:
    """Yield ``trace``'s accesses, raising once ``deadline`` passes.

    The cooperative-cancellation shim for the per-access engines: the
    monotonic clock (:func:`time.monotonic`, the service's deadline
    epoch) is sampled every :data:`DEADLINE_CHECK_EVERY` accesses.  A
    ``None`` deadline yields the trace unchanged.

    Raises:
        DeadlineExceededError: When the budget expires mid-trace.
    """
    if deadline is None:
        yield from trace
        return
    countdown = DEADLINE_CHECK_EVERY
    for record in trace:
        countdown -= 1
        if countdown <= 0:
            countdown = DEADLINE_CHECK_EVERY
            if time.monotonic() >= deadline:
                raise DeadlineExceededError(
                    "request deadline expired mid-simulation", stage=stage
                )
        yield record

#: Accepted ``--engine`` values; ``auto`` resolves per run.  ``checked``
#: is the sanitizing wrapper (reference semantics + per-access
#: invariant assertions; see :mod:`repro.engine.checked`) and is never
#: chosen by ``auto`` — it must be requested explicitly.
ENGINE_NAMES = ("auto", "reference", "vectorized", "checked")


class Engine(ABC):
    """One strategy for executing a cache simulation run."""

    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        geometry: CacheGeometry,
        trace,
        *,
        replacement: Optional[ReplacementPolicy] = None,
        fetch: Optional[FetchPolicy] = None,
        write_policy: WritePolicy = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        word_size: int = 2,
        warmup: Union[int, str] = "fill",
        flush_at_end: bool = False,
        deadline: Optional[float] = None,
        miss_path: "Union[MissPathConfig, Dict[str, Any], None]" = None,
    ) -> CacheStats:
        """Simulate one geometry over one trace and return its stats.

        Args:
            geometry: Validated cache shape.
            trace: A :class:`~repro.trace.record.Trace`, a
                :class:`~repro.engine.traceview.TraceView`, or (for the
                reference engine only) any iterable of accesses.
            replacement / fetch / write_policy / word_size: Policy
                configuration, defaulted exactly as
                :class:`~repro.core.cache.SubBlockCache` defaults them.
            warmup: ``0``, a positive access count, or ``"fill"`` — the
                same warm-start modes as
                :func:`~repro.core.sim.simulate`.
            flush_at_end: Evict everything after the run so
                eviction-based statistics cover resident blocks.
            deadline: Optional :func:`time.monotonic` instant after
                which the run must cooperatively cancel by raising
                :class:`~repro.errors.DeadlineExceededError`.  Checked
                periodically, never per access, so it does not perturb
                the equivalence contract: a run that finishes produces
                identical stats with or without a deadline.
            miss_path: Optional miss-path chain configuration
                (:class:`~repro.core.misspath.MissPathConfig` or its
                mapping form).  A configured chain requires per-access
                execution: the vectorized engine rejects it, and
                :func:`resolve_engine` degrades to ``reference``
                exactly as it does for per-access trace proxies.  An
                empty configuration is equivalent to None.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


def make_engine(name: str) -> Engine:
    """Build an engine by name (``reference``, ``vectorized``, ``checked``).

    ``auto`` is not a constructible engine — it is a per-run choice;
    use :func:`resolve_engine`.

    Raises:
        ConfigurationError: For an unknown name (including ``auto``).
    """
    # Imported here: the implementations import this module for Engine.
    from repro.engine.checked import CheckedEngine
    from repro.engine.reference import ReferenceEngine
    from repro.engine.vectorized import VectorizedEngine

    key = name.lower()
    if key == "reference":
        return ReferenceEngine()
    if key == "vectorized":
        return VectorizedEngine()
    if key == "checked":
        return CheckedEngine()
    raise ConfigurationError(
        f"unknown engine {name!r}; choose from "
        "['reference', 'vectorized', 'checked']"
    )


def resolve_engine(
    name: str,
    trace,
    miss_path: "Union[MissPathConfig, Dict[str, Any], None]" = None,
) -> Engine:
    """Pick the engine that will actually execute one cell.

    ``auto`` selects ``vectorized`` whenever the input is a plain
    :class:`~repro.trace.record.Trace` / ``TraceView`` and ``reference``
    otherwise.  An explicit ``vectorized`` request also degrades to
    ``reference`` when the trace is a per-access proxy (guarded or
    fault-injected cells), because only per-access iteration can honor
    those wrappers — the equivalence contract makes the substitution
    invisible in the results.  A configured miss-path chain degrades
    the same way: the chain's structures mutate per miss, which only
    the per-access loop can drive, and the L1 counters are identical
    either way.

    Raises:
        ConfigurationError: For a name outside :data:`ENGINE_NAMES` or
            a malformed ``miss_path`` mapping.
    """
    from repro.engine.reference import ReferenceEngine

    key = name.lower()
    if key not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {list(ENGINE_NAMES)}"
        )
    if key == "checked":
        # The sanitizer wrapper shares the reference engine's per-access
        # loop, so it can execute any trace proxy directly.
        return make_engine("checked")
    config = MissPathConfig.coerce(miss_path)
    chained = config is not None and config.enabled
    batchable = isinstance(trace, (Trace, TraceView))
    if key == "reference" or not batchable or chained:
        return ReferenceEngine()
    return make_engine("vectorized")
