"""Sampled simulation: representative intervals with error bounds.

The execution half of the sampling subsystem (planning lives in
:mod:`repro.staticcheck.phases`).  Given a :class:`PhasePlan`,
:func:`run_sampled` simulates only each cluster's representative
interval — primed by a bounded warmup window for cold-start
correction — and reconstructs *all 17* :class:`CacheStats` counters as
weighted estimates with a per-counter confidence interval.

**Estimator.**  For cluster ``c`` with representative interval ``r``
(length ``L_r``) and total member accesses ``N_c``, every counter ``x``
measured over ``r`` contributes ``x * N_c / L_r`` to the estimate
(exactly ``x`` when ``N_c == L_r``, so a degenerate plan — one interval
spanning the whole trace — reproduces the reference engine
bit-identically).  Estimates target the *cold* full-trace run
(``warmup=0``): sampling and warm-start measurement do not compose,
because the sampled engine never sees which accesses a full-trace
warmup would have discarded.

**Cold-start correction.**  Each representative is primed by simulating
up to one extra interval of history (``warmup_intervals``) before
measurement starts; the engine's warmup mechanism discards the priming
window's statistics.  The residual cold-start risk — *sub-blocks*
touched in the measured window but absent from the priming window,
each of which may hit or miss differently under full history — is
counted from the address stream and folded into the bound.  When the priming window
reaches back to the trace start the interval's history is *complete*
and its cold term is zero.

**Confidence interval.**  The half-width of counter ``x`` sums, over
clusters, (a) the disagreement between the representative and the
cluster's *witness* (its farthest member): ``|x_r/L_r - x_w/L_w| *
N_c``, and (b) the cold-suspect count scaled by the counter's worst
case per flipped access (``block_size`` bytes for fetch bytes, one for
misses, ...).  These are structural, not statistical, bounds: they are
calibrated by how homogeneous the clusters actually are, and
:func:`verify_sampling` checks them against full-trace ground truth
across the bundled programs.  docs/sampling.md discusses when they are
*invalid* (singleton clusters, ``random`` replacement).

:class:`SampledStats` serializes every counter estimate under the same
keys as :meth:`CacheStats.to_dict` plus a ``"sampled"`` section with an
``"exact": false`` marker — so a sampled payload can never be confused
with an exact one (``CacheStats.from_dict`` rejects the extra key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CacheGeometry
from repro.core.fetch import FetchPolicy, make_fetch
from repro.core.replacement import make_replacement
from repro.core.stats import CacheStats
from repro.engine.base import make_engine
from repro.errors import ConfigurationError, EngineError
from repro.staticcheck.phases import PhasePlan, SamplingConfig, analyze_trace

__all__ = [
    "SCALAR_COUNTERS",
    "DICT_COUNTERS",
    "SampledStats",
    "run_sampled",
    "sample_trace",
    "verify_sampling",
]

#: The 14 scalar CacheStats counters, in to_dict() key form.
SCALAR_COUNTERS: Tuple[str, ...] = (
    "accesses",
    "misses",
    "block_misses",
    "sub_block_misses",
    "bytes_accessed",
    "bytes_fetched",
    "redundant_bytes_fetched",
    "evictions",
    "evicted_sub_blocks_referenced",
    "evicted_sub_blocks_total",
    "writebacks",
    "bytes_written_back",
    "bytes_written_through",
    "prefetches",
)

#: The 3 dict-valued CacheStats counters (17 total with the scalars).
DICT_COUNTERS: Tuple[str, ...] = (
    "accesses_by_kind",
    "misses_by_kind",
    "transaction_words",
)


@dataclass(frozen=True)
class SampledStats:
    """Weighted full-trace estimates of all 17 counters, with bounds.

    Attributes:
        estimates: Counter name -> estimate; the three dict counters
            map string keys (kind names / word counts as decimal
            strings, matching :meth:`CacheStats.to_dict`) to estimates.
        half_widths: Counter name -> confidence half-width (for dict
            counters, the bound applies to the counter's total).
        config: The sampling parameters that produced this result.
        plan: Compact plan metadata (interval count, k, fractions).
        simulated_accesses: Accesses actually simulated, warmup
            included — the numerator of the honest speedup claim.
        total_accesses: Length of the trace being estimated.
        engine: Engine the interval simulations ran on.
    """

    estimates: Mapping[str, Any]
    half_widths: Mapping[str, float]
    config: SamplingConfig
    plan: Mapping[str, Any]
    simulated_accesses: int
    total_accesses: int
    engine: str = "vectorized"

    @property
    def accesses(self) -> float:
        return float(self.estimates["accesses"])

    @property
    def misses(self) -> float:
        return float(self.estimates["misses"])

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def ci(self, counter: str) -> Tuple[float, float]:
        """``[lo, hi]`` bound for one counter (totals never negative)."""
        value = self.estimates[counter]
        total = (
            sum(float(v) for v in value.values())
            if isinstance(value, Mapping)
            else float(value)
        )
        half = float(self.half_widths[counter])
        return max(0.0, total - half), total + half

    @property
    def miss_ratio_ci(self) -> Tuple[float, float]:
        if not self.accesses:
            return 0.0, 0.0
        lo, hi = self.ci("misses")
        return lo / self.accesses, min(1.0, hi / self.accesses)

    def traffic_ratio(self, include_writes: bool = False) -> float:
        accessed = float(self.estimates["bytes_accessed"])
        if not accessed:
            return 0.0
        traffic = float(self.estimates["bytes_fetched"])
        if include_writes:
            traffic += float(self.estimates["bytes_written_back"])
            traffic += float(self.estimates["bytes_written_through"])
        return traffic / accessed

    def scaled_traffic_ratio(self, model: Any, word_size: int) -> float:
        """Mirror of :meth:`CacheStats.scaled_traffic_ratio`."""
        words_accessed = float(self.estimates["bytes_accessed"]) / word_size
        if not words_accessed:
            return 0.0
        scaled = sum(
            model.cost(int(words)) * count
            for words, count in self.estimates["transaction_words"].items()
        )
        return scaled / (words_accessed * model.cost(1))

    @property
    def speedup_factor(self) -> float:
        if not self.simulated_accesses:
            return 0.0
        return self.total_accesses / self.simulated_accesses

    def to_dict(self) -> Dict[str, Any]:
        """All 17 counter estimates + the ``sampled`` marker section.

        The counter keys match :meth:`CacheStats.to_dict`, but the
        extra ``"sampled"`` key (with ``"exact": False``) makes the
        payload *reject* under strict :meth:`CacheStats.from_dict` —
        sampled results can never masquerade as exact ones.
        """
        payload: Dict[str, Any] = {}
        for name in SCALAR_COUNTERS:
            payload[name] = self.estimates[name]
        for name in DICT_COUNTERS:
            payload[name] = dict(self.estimates[name])
        payload["sampled"] = {
            "exact": False,
            "sample": self.config.to_dict(),
            "plan": dict(self.plan),
            "engine": self.engine,
            "simulated_accesses": self.simulated_accesses,
            "total_accesses": self.total_accesses,
            "speedup_factor": self.speedup_factor,
            "miss_ratio": self.miss_ratio,
            "miss_ratio_ci": list(self.miss_ratio_ci),
            "ci": {
                name: list(self.ci(name))
                for name in SCALAR_COUNTERS + DICT_COUNTERS
            },
        }
        return payload

    def summary(self) -> Dict[str, Any]:
        """The compact form checkpoint cell records carry."""
        lo, hi = self.miss_ratio_ci
        return {
            "exact": False,
            "sample": self.config.key(),
            "intervals": int(self.plan.get("intervals", 0)),
            "k": int(self.plan.get("k", 0)),
            "simulated_accesses": self.simulated_accesses,
            "total_accesses": self.total_accesses,
            "miss_ratio": self.miss_ratio,
            "miss_ratio_ci": [lo, hi],
        }


def _run_interval(
    geometry: CacheGeometry,
    window: Any,
    warmup: int,
    replacement: str,
    fetch: str,
    word_size: int,
    engine_name: str,
    deadline: Optional[float],
) -> Tuple[CacheStats, str]:
    """Simulate one priming+measurement window, returning (stats, engine).

    Fresh policy objects per run (``random`` replacement must not share
    RNG state across intervals), and a reference-engine fallback when
    the fast engine cannot take the configuration — the equivalence
    contract makes the substitution invisible.
    """
    fetch_policy: Optional[FetchPolicy] = (
        make_fetch(fetch) if fetch != "demand" else None
    )
    for candidate in (engine_name, "reference"):
        try:
            stats = make_engine(candidate).run(
                geometry,
                window,
                replacement=make_replacement(replacement),
                fetch=fetch_policy,
                word_size=word_size,
                warmup=warmup,
                deadline=deadline,
            )
            return stats, candidate
        except EngineError:
            if candidate == "reference":
                raise
    raise EngineError("unreachable")  # pragma: no cover


def _cold_suspects(
    trace: Any,
    start: int,
    end: int,
    window_start: int,
    sub_block_size: int,
    word_size: int,
) -> int:
    """Sub-blocks first seen in the measured window, not in its priming.

    Each such sub-block may hit or miss differently under full history
    than under the truncated priming window, so it is one unit of
    cold-start risk.  The granularity must be the *sub-block*, not the
    block: a block resident from the priming window still sub-block
    misses on granules last validated before the window (demand fetch
    loads only what is needed), and that cold term dominates on
    workloads with long reuse distances.  A window primed from the very
    start of the trace has complete history — zero risk by
    construction.
    """
    if window_start <= 0:
        return 0
    addrs = np.asarray(trace.addrs[window_start:end], dtype=np.int64)
    sizes = np.asarray(trace.sizes[window_start:end], dtype=np.int64)
    eff = np.where(sizes > 0, sizes, word_size)
    first = addrs // sub_block_size
    last = (addrs + eff - 1) // sub_block_size
    split = start - window_start
    warm = np.unique(np.concatenate((first[:split], last[:split])))
    measured = np.unique(np.concatenate((first[split:], last[split:])))
    return int(np.setdiff1d(measured, warm, assume_unique=True).size)


def _cold_weights(
    geometry: CacheGeometry, word_size: int
) -> Dict[str, float]:
    """Worst-case effect of one flipped (cold-suspect) access per counter.

    Counters that depend only on the access stream itself (accesses,
    bytes accessed, write-through bytes, per-kind access counts) cannot
    move, so their weight is zero.
    """
    sub_per_block = geometry.block_size // geometry.sub_block_size
    block_bytes = float(geometry.block_size)
    return {
        "accesses": 0.0,
        "bytes_accessed": 0.0,
        "bytes_written_through": 0.0,
        "accesses_by_kind": 0.0,
        "misses": 1.0,
        "misses_by_kind": 1.0,
        "block_misses": 1.0,
        "sub_block_misses": float(sub_per_block),
        "bytes_fetched": block_bytes,
        "redundant_bytes_fetched": block_bytes,
        "transaction_words": block_bytes / word_size,
        "evictions": 1.0,
        "evicted_sub_blocks_referenced": float(sub_per_block),
        "evicted_sub_blocks_total": float(sub_per_block),
        "writebacks": 1.0,
        "bytes_written_back": block_bytes,
        "prefetches": float(sub_per_block),
    }


def _scale(value: float, cluster_total: int, interval_length: int) -> Any:
    """``value * cluster_total / interval_length``, exact when equal.

    The equality short-circuit keeps the degenerate whole-trace plan
    bit-identical to the reference engine (no float rounding).
    """
    if cluster_total == interval_length:
        return value
    return value * (cluster_total / interval_length)


def run_sampled(
    geometry: CacheGeometry,
    trace: Any,
    plan: PhasePlan,
    config: SamplingConfig,
    replacement: str = "lru",
    fetch: str = "demand",
    word_size: int = 2,
    engine: str = "vectorized",
    warmup_intervals: int = 1,
    deadline: Optional[float] = None,
) -> SampledStats:
    """Estimate the cold full-trace statistics from a phase plan.

    Args:
        geometry: Cache shape under test.
        trace: The *prepared* trace the plan was built over (same read
            filtering; the plan's ``trace_length`` must match).
        plan: A :func:`repro.staticcheck.phases.analyze_trace` result.
        config: The sampling parameters (recorded in the result).
        replacement / fetch: Policy *names* — fresh policy objects are
            built per interval so stateful policies never leak state
            across windows.
        word_size: Data-path width.
        engine: Engine for the interval simulations; automatically
            degrades to ``reference`` where the fast engine refuses.
        warmup_intervals: Priming windows of ``plan.interval_length``
            accesses simulated (and discarded) before each measured
            interval.
        deadline: Optional monotonic cancellation instant, forwarded to
            every interval simulation.

    Raises:
        ConfigurationError: When ``plan`` does not describe ``trace``.
    """
    if plan.trace_length != len(trace):
        raise ConfigurationError(
            f"phase plan covers {plan.trace_length} accesses but trace "
            f"{getattr(trace, 'name', '')!r} has {len(trace)}; rebuild the "
            "plan over the prepared trace"
        )
    if warmup_intervals < 0:
        raise ConfigurationError(
            f"warmup_intervals must be >= 0, got {warmup_intervals}"
        )
    weights = _cold_weights(geometry, word_size)
    estimates: Dict[str, Any] = {name: 0 for name in SCALAR_COUNTERS}
    for name in DICT_COUNTERS:
        estimates[name] = {}
    half_widths: Dict[str, float] = {
        name: 0.0 for name in SCALAR_COUNTERS + DICT_COUNTERS
    }
    simulated = 0
    engines_used = set()
    budget = warmup_intervals * plan.interval_length

    for phase in plan.phases:
        start, end = plan.bounds(phase.representative)
        window_start = max(0, start - budget)
        rep_stats, used = _run_interval(
            geometry,
            trace[window_start:end],
            start - window_start,
            replacement,
            fetch,
            word_size,
            engine,
            deadline,
        )
        engines_used.add(used)
        simulated += end - window_start
        rep_length = end - start
        rep_dict = rep_stats.to_dict()

        for name in SCALAR_COUNTERS:
            estimates[name] += _scale(
                rep_dict[name], phase.accesses, rep_length
            )
        for name in DICT_COUNTERS:
            bucket = estimates[name]
            for key, value in rep_dict[name].items():
                bucket[key] = bucket.get(key, 0) + _scale(
                    value, phase.accesses, rep_length
                )

        suspects = _cold_suspects(
            trace, start, end, window_start,
            geometry.sub_block_size, word_size,
        )
        cold = _scale(float(suspects), phase.accesses, rep_length)
        for name, weight in weights.items():
            if weight:
                half_widths[name] += cold * weight

        if phase.witness is not None:
            wit_start, wit_end = plan.bounds(phase.witness)
            wit_window = max(0, wit_start - budget)
            wit_stats, used = _run_interval(
                geometry,
                trace[wit_window:wit_end],
                wit_start - wit_window,
                replacement,
                fetch,
                word_size,
                engine,
                deadline,
            )
            engines_used.add(used)
            simulated += wit_end - wit_window
            wit_length = wit_end - wit_start
            wit_dict = wit_stats.to_dict()
            for name in SCALAR_COUNTERS:
                half_widths[name] += (
                    abs(
                        rep_dict[name] / rep_length
                        - wit_dict[name] / wit_length
                    )
                    * phase.accesses
                )
            for name in DICT_COUNTERS:
                keys = set(rep_dict[name]) | set(wit_dict[name])
                half_widths[name] += sum(
                    abs(
                        rep_dict[name].get(key, 0) / rep_length
                        - wit_dict[name].get(key, 0) / wit_length
                    )
                    * phase.accesses
                    for key in keys
                )

    return SampledStats(
        estimates=estimates,
        half_widths=half_widths,
        config=config,
        plan={
            "intervals": plan.intervals,
            "interval_length": plan.interval_length,
            "k": plan.k,
            "seed": plan.seed,
            "source": plan.source,
            "simulated_fraction": plan.simulated_fraction,
        },
        simulated_accesses=simulated,
        total_accesses=plan.trace_length,
        engine=(
            "reference" if "reference" in engines_used
            else (sorted(engines_used)[0] if engines_used else engine)
        ),
    )


def sample_trace(
    geometry: CacheGeometry,
    trace: Any,
    config: SamplingConfig,
    replacement: str = "lru",
    fetch: str = "demand",
    word_size: int = 2,
    program: Any = None,
    plan: Optional[PhasePlan] = None,
    engine: str = "vectorized",
    deadline: Optional[float] = None,
) -> SampledStats:
    """Plan + execute in one call (the service and CLI entry point)."""
    if plan is None:
        plan = analyze_trace(
            trace, config.interval, config.k, seed=config.seed,
            program=program,
        )
    return run_sampled(
        geometry, trace, plan, config,
        replacement=replacement, fetch=fetch, word_size=word_size,
        engine=engine, deadline=deadline,
    )


def _assembled(program: str, word_size: int) -> Any:
    """The AssembledProgram behind one bundled program name."""
    from repro.workloads.assembler import assemble
    from repro.workloads.programs import PROGRAMS

    if program not in PROGRAMS:
        raise ConfigurationError(
            f"unknown program {program!r}; choose from {sorted(PROGRAMS)}"
        )
    return assemble(PROGRAMS[program]().source, word_size=word_size)


def verify_sampling(
    programs: Optional[Sequence[str]] = None,
    word_sizes: Sequence[int] = (2, 4),
    length: int = 20_000,
    interval: int = 2_000,
    k: Optional[int] = None,
    net: int = 1024,
    block: int = 16,
    sub: int = 8,
    assoc: int = 4,
    replacement: str = "lru",
    fetch: str = "demand",
    seed: int = 0,
    raise_on_failure: bool = True,
) -> List[Dict[str, Any]]:
    """Replay full traces and check the sampled bounds against truth.

    For every (program, word size) cell: generate the trace, read-filter
    it exactly like a sweep, build the phase plan from the program's CFG
    fingerprints, run the sampled estimator, then replay the *entire*
    trace cold on the reference path and assert the true miss ratio
    falls inside the reported confidence interval.

    Returns one report dict per cell (``covered`` is the verdict);
    raises ``AssertionError`` naming every failing cell when
    ``raise_on_failure`` and any bound misses.
    """
    from repro.engine.batch import prepare_trace
    from repro.workloads.generator import program_trace
    from repro.workloads.programs import PROGRAMS

    names = sorted(PROGRAMS) if programs is None else list(programs)
    geometry = CacheGeometry(net, block, sub, associativity=assoc)
    config = SamplingConfig(interval=interval, k=k, seed=seed)
    reports: List[Dict[str, Any]] = []
    for name in names:
        for word_size in word_sizes:
            trace = program_trace(name, length, word_size=word_size)
            prepared = prepare_trace(trace)
            plan = analyze_trace(
                prepared, interval, k, seed=seed,
                program=_assembled(name, word_size),
            )
            sampled = run_sampled(
                geometry, prepared, plan, config,
                replacement=replacement, fetch=fetch, word_size=word_size,
            )
            exact, _ = _run_interval(
                geometry, prepared, 0, replacement, fetch, word_size,
                "vectorized", None,
            )
            lo, hi = sampled.miss_ratio_ci
            truth = exact.miss_ratio
            reports.append(
                {
                    "program": name,
                    "word_size": word_size,
                    "accesses": len(prepared),
                    "true_miss_ratio": truth,
                    "estimated_miss_ratio": sampled.miss_ratio,
                    "ci": [lo, hi],
                    "abs_error": abs(sampled.miss_ratio - truth),
                    "covered": lo <= truth <= hi,
                    "speedup_factor": sampled.speedup_factor,
                }
            )
    failures = [r for r in reports if not r["covered"]]
    if failures and raise_on_failure:
        detail = "; ".join(
            f"{r['program']}/w{r['word_size']}: true {r['true_miss_ratio']:.4f} "
            f"outside [{r['ci'][0]:.4f}, {r['ci'][1]:.4f}]"
            for r in failures
        )
        raise AssertionError(f"sampling bounds violated: {detail}")
    return reports
