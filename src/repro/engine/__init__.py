"""Pluggable simulation engines ("decode once, simulate many").

Public surface:

* :class:`~repro.engine.base.Engine` — the interface one simulation
  run is executed through.
* :func:`~repro.engine.base.make_engine` /
  :func:`~repro.engine.base.resolve_engine` — construction and per-run
  ``auto`` selection.
* :class:`~repro.engine.reference.ReferenceEngine` — the object-model
  loop (semantics baseline; handles guarded / fault-injected traces).
* :class:`~repro.engine.vectorized.VectorizedEngine` — the NumPy batch
  engine, pinned to the reference by the equivalence suite.
* :class:`~repro.engine.checked.CheckedEngine` — reference semantics
  plus per-access sanitizer assertions (cache-model invariants and
  statistics conservation laws); the ``--sanitize`` engine.
* :class:`~repro.engine.traceview.TraceView` — shared cached decode of
  one trace, reused across every geometry of a sweep.
* :mod:`repro.engine.batch` — the batch entry point: prepare and
  predecode a trace once, then run many cells against the shared view
  (the unit of work behind the service's per-trace request batching).

See ``docs/engines.md`` for the architecture and the equivalence
contract.
"""

from repro.engine.base import ENGINE_NAMES, Engine, make_engine, resolve_engine
from repro.engine.batch import CellSpec, predecode, prepare_trace, run_batch, run_cell
from repro.engine.checked import CheckedCache, CheckedEngine, check_cache_invariants
from repro.engine.reference import ReferenceEngine
from repro.engine.traceview import TraceView
from repro.engine.vectorized import VectorizedEngine

__all__ = [
    "Engine",
    "ENGINE_NAMES",
    "make_engine",
    "resolve_engine",
    "ReferenceEngine",
    "VectorizedEngine",
    "CheckedEngine",
    "CheckedCache",
    "check_cache_invariants",
    "TraceView",
    "CellSpec",
    "prepare_trace",
    "predecode",
    "run_cell",
    "run_batch",
]
