"""The checked engine: reference semantics plus per-access sanitizers.

:class:`CheckedEngine` executes exactly like
:class:`~repro.engine.reference.ReferenceEngine` — same object-model
cache, same per-access loop, identical statistics — but after every
access it asserts the cache-model invariants and the statistics
conservation laws, raising :class:`~repro.errors.SanitizerError` the
moment any is violated:

* **LRU/FIFO stack property** — each set's replacement state is a
  permutation of exactly the filled ways (``sanitizer-lru-stack``).
* **Tag uniqueness** — no two blocks of a set share a tag, and no tag
  is negative (``sanitizer-tag-dup``).
* **Valid-bit containment** — every resident block has a non-empty
  valid mask inside the geometry's sub-block range, referenced bits in
  range, and dirty bits only on valid sub-blocks
  (``sanitizer-valid-mask``).
* **Frame accounting** — the filled-frame counter brackets the number
  of resident blocks (``sanitizer-fill-count``).
* **Counter conservation** — every law of
  :func:`~repro.core.conservation.check_stats_conservation`, plus the
  miss-path laws of
  :func:`~repro.core.conservation.check_misspath_conservation` when a
  chain is configured (``sanitizer-conservation``).

Because both engines are bound by the equivalence contract, running a
sweep under ``--sanitize`` changes nothing but speed: identical stats,
with a tripwire under every access.  The measured overhead is tracked
by ``benchmarks/bench_abscache.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.core.cache import SubBlockCache
from repro.core.config import CacheGeometry
from repro.core.conservation import (
    check_misspath_conservation,
    check_stats_conservation,
)
from repro.core.fetch import FetchPolicy
from repro.core.misspath import MissPathConfig
from repro.core.replacement import ReplacementPolicy
from repro.core.sim import simulate
from repro.core.stats import CacheStats
from repro.core.write import WritePolicy
from repro.engine.base import Engine, deadline_guard
from repro.engine.traceview import TraceView
from repro.errors import SanitizerError
from repro.trace.record import AccessType

__all__ = ["CheckedCache", "CheckedEngine", "check_cache_invariants"]

#: Replacement policies whose per-set state is an ordered way list.
_STACK_POLICIES = frozenset({"lru", "fifo"})


def _fail(rule: str, detail: str) -> None:
    from repro.staticcheck.diagnostics import Diagnostic, Severity

    raise SanitizerError(
        f"[{rule}] {detail}",
        rule=rule,
        diagnostics=[
            Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                message=detail,
                source="sanitizer",
            )
        ],
    )


def check_cache_invariants(cache: SubBlockCache) -> None:
    """Assert the structural cache-model invariants.

    Raises:
        SanitizerError: Naming the first violated invariant.
    """
    geometry = cache.geometry
    full_mask = (1 << geometry.sub_blocks_per_block) - 1
    ordered_state = cache.replacement.name in _STACK_POLICIES
    resident = 0
    for set_index, ways in enumerate(cache._sets):
        tags = set()
        filled_ways = set()
        for way, blk in enumerate(ways):
            if blk is None:
                continue
            resident += 1
            filled_ways.add(way)
            if blk.tag < 0:
                _fail(
                    "sanitizer-tag-dup",
                    f"set {set_index} way {way}: negative tag {blk.tag}",
                )
            if blk.tag in tags:
                _fail(
                    "sanitizer-tag-dup",
                    f"set {set_index}: tag {blk.tag:#x} stored in two ways",
                )
            tags.add(blk.tag)
            if blk.valid == 0 or blk.valid & ~full_mask:
                _fail(
                    "sanitizer-valid-mask",
                    f"set {set_index} way {way}: valid mask {blk.valid:#b} "
                    f"outside (0, {full_mask:#b}] for a resident block",
                )
            if blk.referenced & ~full_mask:
                _fail(
                    "sanitizer-valid-mask",
                    f"set {set_index} way {way}: referenced mask "
                    f"{blk.referenced:#b} has bits beyond sub-block "
                    f"{geometry.sub_blocks_per_block - 1}",
                )
            if blk.dirty & ~blk.valid:
                _fail(
                    "sanitizer-valid-mask",
                    f"set {set_index} way {way}: dirty mask {blk.dirty:#b} "
                    f"marks invalid sub-blocks (valid {blk.valid:#b})",
                )
        if ordered_state:
            state = cache._policy_state[set_index]
            if len(state) != len(set(state)):
                _fail(
                    "sanitizer-lru-stack",
                    f"set {set_index}: replacement stack {state} repeats a way",
                )
            if set(state) != filled_ways:
                _fail(
                    "sanitizer-lru-stack",
                    f"set {set_index}: replacement stack {sorted(state)} does "
                    f"not cover exactly the filled ways {sorted(filled_ways)}",
                )
    if not resident <= cache._filled_blocks <= geometry.num_blocks:
        _fail(
            "sanitizer-fill-count",
            f"filled-frame counter {cache._filled_blocks} outside "
            f"[{resident} resident, {geometry.num_blocks} frames]",
        )


class CheckedCache(SubBlockCache):
    """A :class:`SubBlockCache` that self-checks after every access.

    The structural invariants and the statistics conservation laws are
    asserted after each :meth:`access`, :meth:`prefetch`, and
    :meth:`flush`, so a corrupted state is caught on the access that
    corrupted it, not in the final numbers.
    """

    def _check(self) -> None:
        check_cache_invariants(self)
        violations = check_stats_conservation(
            self.stats, geometry=self.geometry, word_size=self.word_size
        )
        if self.miss_path is not None:
            violations.extend(
                check_misspath_conservation(
                    self.miss_path.stats, l1_stats=self.stats
                )
            )
        if violations:
            _fail("sanitizer-conservation", "; ".join(violations))

    def access(self, addr: int, kind: AccessType = AccessType.READ, size: int = 0) -> bool:
        hit = super().access(addr, kind, size)
        self._check()
        return hit

    def prefetch(self, addr: int) -> bool:
        fetched = super().prefetch(addr)
        self._check()
        return fetched

    def flush(self) -> None:
        super().flush()
        self._check()


class CheckedEngine(Engine):
    """Reference-engine execution with per-access sanitizer assertions.

    Never selected by ``auto``: request it with ``--sanitize`` (runner
    CLI), ``--engine checked`` (service), or ``make_engine("checked")``.
    Accepts any iterable of accesses, exactly like the reference
    engine, so guarded and fault-injected cells can run under it.
    """

    name = "checked"

    def run(
        self,
        geometry: CacheGeometry,
        trace,
        *,
        replacement: Optional[ReplacementPolicy] = None,
        fetch: Optional[FetchPolicy] = None,
        write_policy: WritePolicy = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
        word_size: int = 2,
        warmup: Union[int, str] = "fill",
        flush_at_end: bool = False,
        deadline: Optional[float] = None,
        miss_path: "Union[MissPathConfig, Dict[str, Any], None]" = None,
    ) -> CacheStats:
        if isinstance(trace, TraceView):
            trace = trace.trace
        cache = CheckedCache(
            geometry,
            replacement=replacement,
            fetch=fetch,
            write_policy=write_policy,
            word_size=word_size,
            miss_path=miss_path,
        )
        if deadline is not None:
            trace = deadline_guard(trace, deadline)
        return simulate(cache, trace, warmup=warmup, flush_at_end=flush_at_end)
