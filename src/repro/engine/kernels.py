"""Array kernels for the vectorized batch engine.

The decode kernels turn a trace's structure-of-arrays columns into the
per-access quantities the simulation loop needs — block address, set
index, tag, needed-sub-block mask — in a handful of whole-trace NumPy
operations instead of per-``Access`` Python arithmetic.  They are pure
functions of the trace columns and a few geometry scalars, which is
what lets :class:`repro.engine.traceview.TraceView` cache their outputs
and reuse them across every geometry of a sweep that shares the
relevant parameters.

:class:`FetchPlanCache` is the "compiled" form of a fetch policy: a
fetch plan is a pure function of ``(missing mask, valid mask)`` for a
fixed geometry, so the policy is consulted once per distinct mask pair
and every further miss with the same masks replays the memoized costs
(computed by :func:`repro.core.accounting.plan_costs`, the same rule
the reference cache applies per miss).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.accounting import plan_costs
from repro.core.fetch import FetchPolicy

__all__ = [
    "effective_sizes",
    "needed_masks",
    "run_starts",
    "FetchPlanCache",
]


def effective_sizes(sizes: np.ndarray, word_size: int) -> np.ndarray:
    """Per-access byte counts with the cache's zero-means-word default."""
    esz = sizes.astype(np.int64)
    if (esz <= 0).any():
        esz = np.where(esz <= 0, np.int64(word_size), esz)
    return esz


def needed_masks(
    addrs: np.ndarray,
    esz: np.ndarray,
    block_size: int,
    sub_block_size: int,
) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Decode the sub-block demand of every access.

    Returns:
        ``(block0, needed, span)`` — the first block address touched,
        the needed-sub-block mask *within that first block*, and a
        boolean mask of accesses that spill into a following block
        (those take the engine's scalar multi-block path, where the
        mask is recomputed per block).
    """
    block0 = addrs // block_size
    end = addrs + esz - 1
    span = (end // block_size) != block0
    offset = addrs - block0 * block_size
    first_sub = offset // sub_block_size
    last_in_block = np.minimum(end - block0 * block_size, block_size - 1)
    last_sub = last_in_block // sub_block_size
    needed = ((np.int64(1) << (last_sub - first_sub + 1)) - 1) << first_sub
    return block0, needed, span


def run_starts(
    block0: np.ndarray,
    kinds: np.ndarray,
    needed: np.ndarray,
    esz: np.ndarray,
    span: np.ndarray,
) -> np.ndarray:
    """Start indices of maximal runs of *identical* accesses.

    Two adjacent accesses belong to one run when they touch the same
    block with the same kind, needed mask, and size (and neither spans
    blocks).  After the first access of a run the cache state is fixed,
    so the engine bulk-accounts the repeats — the vectorized analogue
    of the reference loop's per-access work.
    """
    if len(block0) == 0:
        return np.empty(0, dtype=np.int64)
    same = (
        (block0[1:] == block0[:-1])
        & (kinds[1:] == kinds[:-1])
        & (needed[1:] == needed[:-1])
        & (esz[1:] == esz[:-1])
        & ~span[1:]
        & ~span[:-1]
    )
    breaks = np.flatnonzero(~same) + 1
    return np.concatenate((np.zeros(1, dtype=np.int64), breaks))


class FetchPlanCache:
    """Memoized fetch-policy costs for one (geometry, policy) pair.

    Args:
        fetch: The fetch policy to compile.  Plans must be pure
            functions of the mask arguments (all built-in policies
            are); a stateful policy cannot be memoized and must run on
            the reference engine.
        sub_block_size / word_size / sub_blocks_per_block: Geometry
            scalars fixed for the run.
    """

    __slots__ = ("_fetch", "_sub", "_word", "_spb", "_plans")

    def __init__(
        self,
        fetch: FetchPolicy,
        sub_block_size: int,
        word_size: int,
        sub_blocks_per_block: int,
    ) -> None:
        self._fetch = fetch
        self._sub = sub_block_size
        self._word = word_size
        self._spb = sub_blocks_per_block
        self._plans: Dict[
            Tuple[int, int], Tuple[int, Tuple[int, ...], int, int]
        ] = {}

    def lookup(
        self, missing: int, valid: int
    ) -> Tuple[int, Tuple[int, ...], int, int]:
        """Costs of one miss: ``(fetch_mask, words, fetched, redundant)``.

        ``words`` is the per-transaction word-count tuple feeding the
        nibble-mode histogram; ``fetched`` / ``redundant`` are byte
        totals.
        """
        key = (missing, valid)
        entry = self._plans.get(key)
        if entry is None:
            first_needed = (missing & -missing).bit_length() - 1
            plan = self._fetch.plan(missing, first_needed, valid, self._spb)
            words, fetched, redundant = plan_costs(plan, self._sub, self._word)
            entry = (plan.fetch_mask, words, fetched, redundant)
            self._plans[key] = entry
        return entry
