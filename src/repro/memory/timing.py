"""Effective-access-time model (Section 3.2).

The paper's simplest latency model::

    t_eff = t_cache * (1 - m) + t_mem * m

where ``m`` is the miss ratio.  :class:`MemoryTiming` adds the
nibble-mode refinement: the miss penalty for loading a ``w``-word
sub-block is ``first + (w - 1) * subsequent`` nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["effective_access_time", "MemoryTiming"]


def effective_access_time(miss_ratio: float, t_cache: float, t_mem: float) -> float:
    """The paper's ``t_eff`` model.

    Args:
        miss_ratio: Cache miss ratio in [0, 1].
        t_cache: Cache hit access time.
        t_mem: Memory access time on a miss (same unit as ``t_cache``).

    Raises:
        ConfigurationError: If the miss ratio is outside [0, 1] or a
            latency is negative.
    """
    if not 0.0 <= miss_ratio <= 1.0:
        raise ConfigurationError(f"miss_ratio must be in [0, 1], got {miss_ratio}")
    if t_cache < 0 or t_mem < 0:
        raise ConfigurationError("access times must be non-negative")
    return t_cache * (1.0 - miss_ratio) + t_mem * miss_ratio


@dataclass(frozen=True)
class MemoryTiming:
    """Latency parameters for a nibble-mode main memory.

    Defaults are Bursky's figures quoted in Section 4.3: 160 ns for the
    first word of a transfer and 55 ns for each subsequent word.

    Attributes:
        t_cache_ns: Cache hit time (the RISC II chip achieved 250 ns;
            we default to a nominal 100 ns).
        first_word_ns: Latency of the first word of a memory transfer.
        subsequent_word_ns: Latency of each additional sequential word.
    """

    t_cache_ns: float = 100.0
    first_word_ns: float = 160.0
    subsequent_word_ns: float = 55.0

    def __post_init__(self) -> None:
        if min(self.t_cache_ns, self.first_word_ns, self.subsequent_word_ns) < 0:
            raise ConfigurationError("timing parameters must be non-negative")

    def miss_penalty_ns(self, words: int) -> float:
        """Time to load a ``words``-word sub-block from memory."""
        if words < 1:
            raise ConfigurationError(f"a transfer moves >= 1 word, got {words}")
        return self.first_word_ns + (words - 1) * self.subsequent_word_ns

    def effective_access_ns(self, miss_ratio: float, sub_block_words: int) -> float:
        """``t_eff`` with the miss penalty set by the sub-block size."""
        return effective_access_time(
            miss_ratio, self.t_cache_ns, self.miss_penalty_ns(sub_block_words)
        )
