"""Memory-system models: bus cost, nibble-mode scaling, access timing."""

from repro.memory.bus import Bus
from repro.memory.multiproc import SharedBusResult, SharedBusSystem
from repro.memory.nibble import (
    LINEAR_BUS,
    NIBBLE_MODE_BUS,
    BusCostModel,
    scaled_traffic_factor,
)
from repro.memory.timing import MemoryTiming, effective_access_time

__all__ = [
    "Bus",
    "BusCostModel",
    "SharedBusResult",
    "SharedBusSystem",
    "LINEAR_BUS",
    "NIBBLE_MODE_BUS",
    "scaled_traffic_factor",
    "MemoryTiming",
    "effective_access_time",
]
