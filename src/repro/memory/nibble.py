"""Bus cost models, including the paper's nibble-mode model.

Section 4.3 observes that nibble/page-mode memories and transactional
busses make the cost of fetching ``w`` sequential words affine rather
than linear: ``cost(w) = a + b*w``.  Using Bursky's figures — 160 ns for
the first word, 55 ns for subsequent words, approximated as 3:1 with
unit cost for one word — the paper's model is::

    cost(w) = 1 + (w - 1) / 3

The *scaled traffic ratio* multiplies the standard traffic ratio by
``cost(w) / w`` for a cache that always transfers ``w``-word
sub-blocks.  :meth:`repro.core.stats.CacheStats.scaled_traffic_ratio`
generalizes this to mixed transaction sizes (load-forward issues
variable-length transfers) using the transaction histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "BusCostModel",
    "LINEAR_BUS",
    "NIBBLE_MODE_BUS",
    "scaled_traffic_factor",
]


@dataclass(frozen=True)
class BusCostModel:
    """Affine bus cost: fetching ``w`` sequential words costs ``a + b*w``.

    Attributes:
        base: The per-transaction overhead ``a`` (address cycle, RAS
            latency, bus arbitration).
        per_word: The marginal word cost ``b``.
        name: Label used in table output.
    """

    base: float
    per_word: float
    name: str = "bus"

    def __post_init__(self) -> None:
        if self.per_word <= 0:
            raise ConfigurationError(
                f"per_word cost must be positive, got {self.per_word}"
            )
        if self.base < 0:
            raise ConfigurationError(f"base cost must be >= 0, got {self.base}")

    def cost(self, words: int) -> float:
        """Cost of one transaction moving ``words`` sequential words."""
        if words <= 0:
            return 0.0
        return self.base + self.per_word * words

    @classmethod
    def from_latencies(
        cls, first: float, subsequent: float, name: str = "latency-bus"
    ) -> "BusCostModel":
        """Build a model from first/subsequent word latencies.

        Normalized so a single-word transaction has unit cost:
        ``cost(w) = 1 + (w-1) * subsequent/first``.

        >>> BusCostModel.from_latencies(160, 55).cost(4)  # doctest: +ELLIPSIS
        2.03...
        """
        if first <= 0 or subsequent <= 0:
            raise ConfigurationError("latencies must be positive")
        ratio = subsequent / first
        return cls(base=1.0 - ratio, per_word=ratio, name=name)


#: Cost proportional to bytes moved — the paper's default assumption.
LINEAR_BUS = BusCostModel(base=0.0, per_word=1.0, name="linear")

#: The paper's nibble-mode model: ``cost(w) = 1 + (w-1)/3``.
NIBBLE_MODE_BUS = BusCostModel(base=2.0 / 3.0, per_word=1.0 / 3.0, name="nibble")


def scaled_traffic_factor(words_per_transfer: int, model: BusCostModel) -> float:
    """The paper's analytic scaling factor ``cost(w) / (w * cost(1))``.

    Multiplying a standard traffic ratio by this factor yields the
    scaled traffic ratio for a cache whose every transfer moves
    ``words_per_transfer`` words.  Under :data:`NIBBLE_MODE_BUS` this
    is ``(1/w) * (1 + (w-1)/3)``, the expression in Section 4.3.
    """
    if words_per_transfer < 1:
        raise ConfigurationError(
            f"words_per_transfer must be >= 1, got {words_per_transfer}"
        )
    return model.cost(words_per_transfer) / (words_per_transfer * model.cost(1))
