"""A shared-bus accounting model.

The paper motivates the traffic ratio with bus-limited microprocessor
systems, "particularly acute if the bus is to be shared among two or
more microprocessors" (Section 1).  :class:`Bus` tallies transactions
against a :class:`~repro.memory.nibble.BusCostModel` and reports
utilization, letting examples estimate how many cached processors a bus
could carry.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.memory.nibble import LINEAR_BUS, BusCostModel

__all__ = ["Bus"]


class Bus:
    """Accumulates transaction costs under a bus cost model.

    Args:
        model: Cost model applied to every transaction.
        words_per_cycle: Bus bandwidth used to convert accumulated cost
            into busy cycles for utilization estimates.
    """

    def __init__(self, model: BusCostModel = LINEAR_BUS, words_per_cycle: float = 1.0):
        if words_per_cycle <= 0:
            raise ConfigurationError(
                f"words_per_cycle must be positive, got {words_per_cycle}"
            )
        self.model = model
        self.words_per_cycle = words_per_cycle
        self.transactions = 0
        self.words_moved = 0
        self.total_cost = 0.0
        self._histogram: Dict[int, int] = {}

    def transfer(self, words: int) -> float:
        """Record one transaction; returns its cost."""
        if words < 1:
            raise ConfigurationError(f"a transfer must move >= 1 word, got {words}")
        cost = self.model.cost(words)
        self.transactions += 1
        self.words_moved += words
        self.total_cost += cost
        self._histogram[words] = self._histogram.get(words, 0) + 1
        return cost

    def replay(self, transaction_words: Dict[int, int]) -> float:
        """Record a whole transaction histogram (e.g. from CacheStats).

        Returns the total cost added.
        """
        added = 0.0
        for words, count in transaction_words.items():
            cost = self.model.cost(words) * count
            self.transactions += count
            self.words_moved += words * count
            self.total_cost += cost
            self._histogram[words] = self._histogram.get(words, 0) + count
            added += cost
        return added

    @property
    def histogram(self) -> Dict[int, int]:
        """Copy of the transaction-length histogram."""
        return dict(self._histogram)

    def busy_cycles(self) -> float:
        """Bus-busy time implied by the accumulated cost."""
        return self.total_cost / self.words_per_cycle

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of ``elapsed_cycles`` the bus was busy (capped at 1)."""
        if elapsed_cycles <= 0:
            raise ConfigurationError(
                f"elapsed_cycles must be positive, got {elapsed_cycles}"
            )
        return min(1.0, self.busy_cycles() / elapsed_cycles)

    def __repr__(self) -> str:
        return (
            f"<Bus {self.model.name} transactions={self.transactions} "
            f"words={self.words_moved} cost={self.total_cost:.1f}>"
        )
