"""A shared-bus multiprocessor simulator.

The paper's opening motivation for the traffic ratio: "bus traffic can
seriously limit system performance.  This problem is particularly acute
if the bus is to be shared among two or more microprocessors."  This
module makes that concrete: N processors, each with its own on-chip
cache and its own reference stream, contend for one first-come
first-served memory bus whose transactions cost ``a + b*w`` bus cycles.

The simulation is event-driven at access granularity: a processor
executes hits locally (one processor cycle each) and, on a miss, waits
for the bus, holds it for the transaction's cost, then continues.  The
result quantifies how cache traffic ratio translates into sustainable
processor count — the ``1/t`` rule of thumb, with queueing effects
included.

Coherence is out of scope, as it was for the paper (its traces are
uniprocessor and its metrics read-only); processors here share the bus,
not data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.cache import SubBlockCache
from repro.errors import ConfigurationError
from repro.memory.nibble import NIBBLE_MODE_BUS, BusCostModel
from repro.trace.record import Trace

__all__ = ["SharedBusSystem", "SharedBusResult"]


@dataclass(frozen=True)
class SharedBusResult:
    """Outcome of one shared-bus simulation.

    Attributes:
        finish_times: Per-processor completion time in cycles.
        makespan: Time at which the last processor finished.
        bus_busy: Cycles the bus spent transferring data.
        bus_wait: Total cycles processors spent queued for the bus.
        accesses: Total accesses executed across all processors.
    """

    finish_times: List[float]
    makespan: float
    bus_busy: float
    bus_wait: float
    accesses: int

    @property
    def bus_utilization(self) -> float:
        """Fraction of the makespan the bus was busy."""
        return self.bus_busy / self.makespan if self.makespan else 0.0

    @property
    def throughput(self) -> float:
        """Accesses completed per cycle, system-wide."""
        return self.accesses / self.makespan if self.makespan else 0.0

    @property
    def mean_wait_per_access(self) -> float:
        """Average bus-queueing delay per access (contention measure)."""
        return self.bus_wait / self.accesses if self.accesses else 0.0


class SharedBusSystem:
    """N processors with private caches sharing one memory bus.

    Args:
        caches: One cache per processor (their stats accumulate as
            usual, so per-CPU miss ratios remain available).
        traces: One reference stream per processor (same length not
            required; processors finish independently).
        bus_model: Transaction cost model in bus cycles per the affine
            ``a + b*w`` form; defaults to the paper's nibble-mode
            model.
        hit_cycles: Processor time per access that hits (or per access
            issue, for misses, before the bus transaction).
    """

    def __init__(
        self,
        caches: Sequence[SubBlockCache],
        traces: Sequence[Trace],
        bus_model: BusCostModel = NIBBLE_MODE_BUS,
        hit_cycles: float = 1.0,
    ) -> None:
        if len(caches) != len(traces):
            raise ConfigurationError(
                f"{len(caches)} caches but {len(traces)} traces"
            )
        if not caches:
            raise ConfigurationError("at least one processor is required")
        if hit_cycles <= 0:
            raise ConfigurationError(f"hit_cycles must be positive, got {hit_cycles}")
        self.caches = list(caches)
        self.traces = list(traces)
        self.bus_model = bus_model
        self.hit_cycles = hit_cycles

    def run(self) -> SharedBusResult:
        """Simulate to completion and return system metrics."""
        iterators = [iter(trace) for trace in self.traces]
        # Heap of (processor-ready-time, cpu index); deterministic
        # tie-break by index.
        heap = [(0.0, cpu) for cpu in range(len(self.caches))]
        heapq.heapify(heap)
        finish = [0.0] * len(self.caches)
        bus_free = 0.0
        bus_busy = 0.0
        bus_wait = 0.0
        accesses = 0

        while heap:
            now, cpu = heapq.heappop(heap)
            record = next(iterators[cpu], None)
            if record is None:
                finish[cpu] = now
                continue
            cache = self.caches[cpu]
            words_before = cache.stats.bytes_fetched
            hit = cache.access(record.addr, record.kind, record.size)
            accesses += 1
            ready = now + self.hit_cycles
            if not hit:
                fetched_words = (
                    cache.stats.bytes_fetched - words_before
                ) // cache.word_size
                if fetched_words > 0:
                    grant = max(ready, bus_free)
                    bus_wait += grant - ready
                    cost = self.bus_model.cost(fetched_words)
                    bus_free = grant + cost
                    bus_busy += cost
                    ready = bus_free
            heapq.heappush(heap, (ready, cpu))

        return SharedBusResult(
            finish_times=finish,
            makespan=max(finish) if finish else 0.0,
            bus_busy=bus_busy,
            bus_wait=bus_wait,
            accesses=accesses,
        )
