"""Workload substrate: the stand-in for the paper's 1984 traces.

Two generators produce address traces with calibrated locality:

* A **toy register machine** (:mod:`repro.workloads.machine`) executing
  real algorithms written in a small assembly language
  (:mod:`repro.workloads.programs`) — sorting, searching, formatting,
  symbol tables — each verified to compute the right answer.
* A **statistical locality model**
  (:mod:`repro.workloads.synthetic`) for the large programs of the
  VAX-11 / System/370 suites.

:mod:`repro.workloads.suites` maps every trace name of the paper's
Tables 2–5 to one of these generators.
"""

from repro.workloads.architectures import ARCHITECTURES, ArchProfile, get_architecture
from repro.workloads.assembler import AssembledProgram, assemble
from repro.workloads.generator import program_trace, synthetic_trace
from repro.workloads.machine import Machine, MachineResult
from repro.workloads.programs import PROGRAMS, ProgramSpec
from repro.workloads.suites import (
    SUITES,
    Z8000_FIGURE_TRACES,
    Z8000_LOADFORWARD_TRACES,
    TraceSpec,
    clear_trace_cache,
    suite_names,
    suite_specs,
    suite_trace,
    suite_traces,
)
from repro.workloads.synthetic import SyntheticProfile, generate_synthetic

__all__ = [
    "ARCHITECTURES",
    "ArchProfile",
    "get_architecture",
    "AssembledProgram",
    "assemble",
    "program_trace",
    "synthetic_trace",
    "Machine",
    "MachineResult",
    "PROGRAMS",
    "ProgramSpec",
    "SUITES",
    "TraceSpec",
    "Z8000_FIGURE_TRACES",
    "Z8000_LOADFORWARD_TRACES",
    "clear_trace_cache",
    "suite_names",
    "suite_specs",
    "suite_trace",
    "suite_traces",
    "SyntheticProfile",
    "generate_synthetic",
]
