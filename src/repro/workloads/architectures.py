"""Architecture profiles for the four traced machines (Tables 2–5).

The paper attributes the inter-architecture miss-ratio ordering to the
traces, "not ... the architectures, except for address space size":
the Z8000 traces are small compact UNIX utilities, the PDP-11 programs
small 16-bit-address-space programs, the VAX a mixture of small and
large, and the System/370 programs large memory-intensive jobs using
hundreds of kilobytes (Section 4.2.5).  An :class:`ArchProfile`
therefore carries the data-path width the traces were collected with
(Section 3.3: 2 bytes for Z8000/PDP-11, 4 bytes for VAX/370), the
address-space width, and the working-set *scale* its suite targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ArchProfile", "ARCHITECTURES", "get_architecture"]


@dataclass(frozen=True)
class ArchProfile:
    """One traced architecture.

    Attributes:
        name: Registry key (``pdp11``, ``z8000``, ``vax``, ``s370``,
            ``mainframe``).
        word_size: Data-path width in bytes; every trace access is one
            word.
        address_bits: Native address-space width (cost models still use
            32 bits, as the paper does).
        description: Provenance note.
    """

    name: str
    word_size: int
    address_bits: int
    description: str


ARCHITECTURES = {
    "pdp11": ArchProfile(
        name="pdp11",
        word_size=2,
        address_bits=16,
        description="DEC PDP-11: small 16-bit programs (Table 2)",
    ),
    "z8000": ArchProfile(
        name="z8000",
        word_size=2,
        address_bits=16,
        description="Zilog Z8000: compact C-compiled UNIX utilities (Table 3)",
    ),
    "vax": ArchProfile(
        name="vax",
        word_size=4,
        address_bits=32,
        description="DEC VAX-11: mixed small and large programs (Table 4)",
    ),
    "s370": ArchProfile(
        name="s370",
        word_size=4,
        address_bits=32,
        description="IBM System/370: large memory-intensive jobs (Table 5)",
    ),
    "mainframe": ArchProfile(
        name="mainframe",
        word_size=4,
        address_bits=32,
        description="System/360-85 study workload (Table 6)",
    ),
}


def get_architecture(name: str) -> ArchProfile:
    """Look up an architecture profile by name.

    Raises:
        ConfigurationError: For an unknown architecture.
    """
    key = name.lower()
    if key not in ARCHITECTURES:
        raise ConfigurationError(
            f"unknown architecture {name!r}; choose from {sorted(ARCHITECTURES)}"
        )
    return ARCHITECTURES[key]
