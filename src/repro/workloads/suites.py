"""The trace suites mirroring the paper's Tables 2–5 (and Table 6's
mainframe workload).

Every paper trace name maps to a :class:`TraceSpec`: either a toy-
machine program with parameters chosen to match the trace's character
(e.g. ``grep`` -> string search, ``sort`` -> quicksort, ``nroff`` ->
text reflow), or a synthetic locality profile for the large programs a
toy workload cannot credibly occupy (the System/370 jobs "using
hundreds of kilobytes of storage").

Working-set scales follow the paper's Section 4.2.5 explanation of the
inter-architecture ordering: Z8000 tightest, then PDP-11, VAX-11, and
System/370 largest.  Generated traces are cached per
``(suite, trace, length)``, since suite generation is the expensive
step of every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.trace.record import Trace
from repro.workloads.architectures import get_architecture
from repro.workloads.generator import program_trace, synthetic_trace
from repro.workloads.synthetic import SyntheticProfile

__all__ = [
    "TraceSpec",
    "SUITES",
    "Z8000_FIGURE_TRACES",
    "Z8000_LOADFORWARD_TRACES",
    "suite_names",
    "suite_specs",
    "suite_trace",
    "suite_traces",
    "clear_trace_cache",
]


@dataclass(frozen=True)
class TraceSpec:
    """Recipe for one named trace of a suite."""

    name: str
    arch: str
    program: str = ""  # toy-machine program; empty means synthetic
    params: Dict[str, int] = field(default_factory=dict)
    profile: Optional[SyntheticProfile] = None
    seed: int = 0

    def build(self, length: int) -> Trace:
        """Generate this trace with ``length`` references."""
        word = get_architecture(self.arch).word_size
        if self.program:
            return program_trace(
                self.program,
                length,
                word_size=word,
                seed=self.seed,
                name=self.name,
                **self.params,
            )
        if self.profile is None:
            raise ConfigurationError(
                f"trace spec {self.name!r} has neither a program nor a profile"
            )
        return synthetic_trace(
            self.profile, length, word_size=word, seed=self.seed, name=self.name
        )


# -- Synthetic profiles per working-set scale ----------------------------

_PDP11_OS = SyntheticProfile(
    code_words=6000, n_procs=24, global_words=4000, stream_words=2000,
    n_streams=2, p_global_reuse=0.60, p_loop=0.40, loop_iters=20, loop_body=12,
)

_PDP11_SIMP = SyntheticProfile(
    code_words=4000, n_procs=16, global_words=2500, stream_words=2000,
    n_streams=2, w_stack=0.25, w_global=0.40, w_stream=0.35,
    p_global_reuse=0.70, mean_run=8.0, p_loop=0.40, loop_iters=20, loop_body=12,
)

_VAX_COMPILER = SyntheticProfile(
    code_words=12000, n_procs=40, global_words=8000, stream_words=5000,
    n_streams=2, p_global_reuse=0.68, mean_run=7.0,
    p_loop=0.44, loop_iters=22, loop_body=14,
)

_VAX_NUMERIC = SyntheticProfile(
    code_words=9000, n_procs=24, global_words=7000, stream_words=6000,
    n_streams=3, w_stack=0.20, w_global=0.40, w_stream=0.40,
    p_global_reuse=0.70, mean_run=9.0, p_loop=0.44, loop_iters=22, loop_body=14,
)

_VAX_SYMBOL = SyntheticProfile(
    code_words=11000, n_procs=32, global_words=9000, stream_words=4000,
    n_streams=2, w_stack=0.25, w_global=0.50, w_stream=0.25,
    p_global_reuse=0.66, p_loop=0.44, loop_iters=22, loop_body=14,
)

_S370_NUMERIC = SyntheticProfile(
    code_words=24000, n_procs=30, global_words=20000, stream_words=24000,
    n_streams=4, w_stack=0.15, w_global=0.35, w_stream=0.50,
    p_global_reuse=0.60, mean_run=8.0, p_loop=0.35, loop_iters=16,
)

_S370_COMPILER = SyntheticProfile(
    code_words=48000, n_procs=80, global_words=40000, stream_words=12000,
    n_streams=3, w_stack=0.25, w_global=0.50, w_stream=0.25,
    p_global_reuse=0.55, hot_globals=48, p_loop=0.35, loop_iters=16,
)

_S370_PLI = SyntheticProfile(
    code_words=36000, n_procs=60, global_words=32000, stream_words=16000,
    n_streams=3, w_stack=0.20, w_global=0.45, w_stream=0.35,
    p_global_reuse=0.55, p_loop=0.35, loop_iters=16,
)

# The Table 6 (360/85 comparison) workload family: strong temporal
# locality (a 16 KiB set-associative cache hits ~99% of the time) but
# with the hot words *scattered* over a large address span, so the
# sixteen 1024-byte sectors of the 360/85 thrash.  Three variants model
# the go-steps and the compile of the paper's six-trace workload.
_MAINFRAME_GO = SyntheticProfile(
    code_words=4000, n_procs=16, global_words=60000, stream_words=4000,
    n_streams=2, w_stack=0.25, w_global=0.55, w_stream=0.20,
    p_global_reuse=0.95, hot_globals=200,
    p_loop=0.60, loop_iters=70, loop_body=20, mean_run=8.0,
)

_MAINFRAME_COMPILE = SyntheticProfile(
    code_words=6000, n_procs=24, global_words=40000, stream_words=4000,
    n_streams=2, w_stack=0.25, w_global=0.55, w_stream=0.20,
    p_global_reuse=0.93, hot_globals=150,
    p_loop=0.55, loop_iters=45, loop_body=18, mean_run=8.0,
)

_MAINFRAME_PLI = SyntheticProfile(
    code_words=5000, n_procs=20, global_words=50000, stream_words=4000,
    n_streams=2, w_stack=0.25, w_global=0.55, w_stream=0.20,
    p_global_reuse=0.94, hot_globals=170,
    p_loop=0.58, loop_iters=55, loop_body=18, mean_run=8.0,
)


# -- The suites -----------------------------------------------------------

SUITES: Dict[str, List[TraceSpec]] = {
    # Table 2: PDP-11 workload.
    "pdp11": [
        TraceSpec("OPSYS", "pdp11", profile=_PDP11_OS, seed=11),
        TraceSpec("PLOT", "pdp11", program="matmul", params={"n": 24}, seed=12),
        TraceSpec("SIMP", "pdp11", profile=_PDP11_SIMP, seed=13),
        TraceSpec(
            "TRACE", "pdp11", program="tree",
            params={"n": 350, "m": 2000}, seed=14,
        ),
        TraceSpec(
            "ROFF", "pdp11", program="format_text", params={"tlen": 9000}, seed=15,
        ),
        TraceSpec(
            "ED", "pdp11", program="strsearch",
            params={"tlen": 8000, "plen": 4}, seed=16,
        ),
    ],
    # Table 3: Z8000 workload (compact UNIX utilities).
    "z8000": [
        TraceSpec("CPP", "z8000", program="tokenize", params={"tlen": 6000, "tsize": 256}, seed=21),
        TraceSpec("C1", "z8000", program="tokenize", params={"tlen": 5000, "tsize": 256}, seed=22),
        TraceSpec("C2", "z8000", program="bubble", params={"n": 600}, seed=23),
        TraceSpec("OD", "z8000", program="wordcount", params={"tlen": 6000}, seed=24),
        TraceSpec(
            "GREP", "z8000", program="strsearch",
            params={"tlen": 4000, "plen": 4}, seed=25,
        ),
        TraceSpec("SORT", "z8000", program="qsort", params={"n": 1600}, seed=26),
        TraceSpec(
            "LS", "z8000", program="linklist",
            params={"n": 700, "repeats": 60}, seed=27,
        ),
        TraceSpec("NM", "z8000", program="tree", params={"n": 900, "m": 2400}, seed=28),
        TraceSpec(
            "NROFF", "z8000", program="format_text", params={"tlen": 4000}, seed=29,
        ),
    ],
    # Table 4: VAX-11 workload (mixed small and large).
    "vax": [
        TraceSpec("spice", "vax", profile=_VAX_NUMERIC, seed=31),
        TraceSpec("otmdl", "vax", profile=_VAX_SYMBOL, seed=32),
        TraceSpec(
            "sedx", "vax", program="strsearch",
            params={"tlen": 24000, "plen": 5}, seed=33,
        ),
        TraceSpec("qsort", "vax", program="qsort", params={"n": 18000}, seed=34),
        TraceSpec(
            "troff", "vax", program="format_text", params={"tlen": 22000}, seed=35,
        ),
        TraceSpec("c2", "vax", profile=_VAX_COMPILER, seed=36),
    ],
    # Table 5: System/370 workload (large memory-intensive jobs).
    "s370": [
        TraceSpec("FGO1", "s370", profile=_S370_NUMERIC, seed=41),
        TraceSpec("FCOMP1", "s370", profile=_S370_COMPILER, seed=42),
        TraceSpec("PGO1", "s370", profile=_S370_PLI, seed=43),
        TraceSpec("PGO2", "s370", profile=_S370_PLI, seed=44),
    ],
    # Table 6's 360/85 study workload: "1 Fortran Go Step, 1 Fortran
    # Compile, 2 Cobol Go Steps, and 2 PL/I Go Steps".
    "mainframe": [
        TraceSpec("FGO", "mainframe", profile=_MAINFRAME_GO, seed=51),
        TraceSpec("FCOMP", "mainframe", profile=_MAINFRAME_COMPILE, seed=52),
        TraceSpec("CGO1", "mainframe", profile=_MAINFRAME_GO, seed=53),
        TraceSpec("CGO2", "mainframe", profile=_MAINFRAME_GO, seed=54),
        TraceSpec("PGO1", "mainframe", profile=_MAINFRAME_PLI, seed=55),
        TraceSpec("PGO2", "mainframe", profile=_MAINFRAME_PLI, seed=56),
    ],
}

#: The paper's Figures 3/4 use "the last five traces in Table 3".
Z8000_FIGURE_TRACES = ("GREP", "SORT", "LS", "NM", "NROFF")

#: Section 4.4 studies load-forward "with traces CPP, C1 and C2".
Z8000_LOADFORWARD_TRACES = ("CPP", "C1", "C2")

_CACHE: Dict[Tuple[str, str, int], Trace] = {}


def suite_names() -> List[str]:
    """Names of the available suites."""
    return sorted(SUITES)


def suite_specs(suite: str) -> List[TraceSpec]:
    """The trace specs of one suite.

    Raises:
        ConfigurationError: For an unknown suite name.
    """
    key = suite.lower()
    if key not in SUITES:
        raise ConfigurationError(
            f"unknown suite {suite!r}; choose from {suite_names()}"
        )
    return list(SUITES[key])


def suite_trace(suite: str, trace_name: str, length: int = 200_000) -> Trace:
    """Generate (or fetch from cache) one named trace of a suite."""
    for spec in suite_specs(suite):
        if spec.name == trace_name:
            key = (suite.lower(), trace_name, length)
            if key not in _CACHE:
                _CACHE[key] = spec.build(length)
            return _CACHE[key]
    raise ConfigurationError(
        f"suite {suite!r} has no trace {trace_name!r}; it has "
        f"{[spec.name for spec in suite_specs(suite)]}"
    )


def suite_traces(
    suite: str, length: int = 200_000, names: Optional[Tuple[str, ...]] = None
) -> List[Trace]:
    """Generate every trace of a suite (or the named subset, in order)."""
    specs = suite_specs(suite)
    if names is not None:
        wanted = {name: index for index, name in enumerate(names)}
        specs = sorted(
            (spec for spec in specs if spec.name in wanted),
            key=lambda spec: wanted[spec.name],
        )
        missing = set(names) - {spec.name for spec in specs}
        if missing:
            raise ConfigurationError(
                f"suite {suite!r} lacks traces {sorted(missing)}"
            )
    return [suite_trace(suite, spec.name, length) for spec in specs]


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _CACHE.clear()
