"""Two-pass assembler for the toy workload machine.

Source syntax (one statement per line, ``;`` starts a comment)::

    ; data directives (assembled into the data segment, word-granular)
    .space  buf 128          ; reserve 128 words, define symbol buf
    .words  tab 4 8 15 16    ; initialized words, symbol tab

    ; code
    start:
        li   r0, 10          ; load immediate (symbols allowed)
        li   r1, tab         ; data symbols resolve to byte addresses
        ld   r2, r1, 0       ; r2 = M[r1 + 0]
        addi r1, 2           ; immediates are in bytes
        blt  r3, r0, start   ; branches compare two registers
        call subroutine
        halt

Register operands are ``r0``–``r7`` with aliases ``fp`` (r6) and ``sp``
(r7).  Immediates may be decimal or hex integers, label names, data
symbols, or the special token ``@word`` (the word size in bytes), which
lets programs written once run correctly on both 16- and 32-bit
profiles.  ``name+offset`` arithmetic is supported for symbols.

The assembler lays code from ``code_base`` and data after the code
(word-aligned), and returns an :class:`AssembledProgram` ready for the
:class:`~repro.workloads.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.workloads.isa import HAS_IMMEDIATE, OPCODES, REGISTER_ALIASES, Instruction, Op

__all__ = ["AssembledProgram", "assemble"]

_REG_OPERANDS = {
    Op.MOV: 2, Op.ADD: 2, Op.SUB: 2, Op.MUL: 2, Op.DIV: 2, Op.MOD: 2,
    Op.AND: 2, Op.OR: 2, Op.XOR: 2, Op.SHL: 2, Op.SHR: 2,
    Op.PUSH: 1, Op.POP: 1,
    Op.HALT: 0, Op.NOP: 0, Op.RET: 0,
}


@dataclass
class AssembledProgram:
    """Output of :func:`assemble`.

    Attributes:
        instructions: Decoded instructions in address order.
        addr_to_index: Byte address of an instruction -> its index.
        data: Initial data memory as ``{byte address: word value}``.
        symbols: Label and data-symbol byte addresses.
        word_size: Word size the program was assembled for.
        code_base: First code byte address.
        data_base: First data byte address.
        data_limit: One past the last data byte address.
    """

    instructions: List[Instruction]
    addr_to_index: Dict[int, int]
    data: Dict[int, int]
    symbols: Dict[str, int]
    word_size: int
    code_base: int
    data_base: int
    data_limit: int

    @property
    def code_bytes(self) -> int:
        """Size of the code segment in bytes."""
        return self.data_base - self.code_base


def _parse_register(token: str, lineno: int) -> int:
    name = token.lower()
    if name in REGISTER_ALIASES:
        return REGISTER_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index <= 7:
            return index
    raise AssemblyError(
        f"line {lineno}: {token!r} is not a register (use r0-r7, fp, sp)",
        lineno=lineno,
        token=token,
    )


def _parse_int(token: str) -> Optional[int]:
    try:
        return int(token, 0)
    except ValueError:
        return None


class _ImmediateRef:
    """An unresolved immediate: integer, symbol, or symbol+offset."""

    __slots__ = ("text", "lineno")

    def __init__(self, text: str, lineno: int) -> None:
        self.text = text
        self.lineno = lineno

    def resolve(self, symbols: Dict[str, int], word_size: int) -> int:
        text = self.text
        value = _parse_int(text)
        if value is not None:
            return value
        if text == "@word":
            return word_size
        base, sep, offset_text = text.partition("+")
        offset = 0
        if sep:
            parsed = _parse_int(offset_text)
            if parsed is None:
                raise AssemblyError(
                    f"line {self.lineno}: bad offset in {text!r}",
                    lineno=self.lineno,
                    token=text,
                )
            offset = parsed
        if base == "@word":
            return word_size + offset
        if base not in symbols:
            raise AssemblyError(
                f"line {self.lineno}: undefined symbol {base!r}",
                lineno=self.lineno,
                token=base,
            )
        return symbols[base] + offset


def assemble(source: str, word_size: int = 2, code_base: int = 0x100) -> AssembledProgram:
    """Assemble toy-machine source into an executable program.

    Args:
        source: Assembly text (see module docstring for the syntax).
        word_size: Target word size in bytes (2 or 4).
        code_base: Byte address of the first instruction.

    Raises:
        AssemblyError: On any syntax error, unknown mnemonic, bad
            register, or undefined symbol.
    """
    if word_size not in (2, 4):
        raise AssemblyError(f"word_size must be 2 or 4, got {word_size}")

    # Pass 1: tokenize, place instructions, gather labels and data.
    pending: List[Tuple[int, str, List[str]]] = []  # (lineno, mnemonic, operands)
    labels: Dict[str, int] = {}  # label -> instruction index
    data_directives: List[Tuple[str, List[int], int]] = []  # (symbol, words, lineno)

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(
                    f"line {lineno}: bad label {label!r}",
                    lineno=lineno,
                    token=label,
                )
            if label in labels:
                raise AssemblyError(
                    f"line {lineno}: duplicate label {label!r} "
                    f"(first defined earlier in the source)",
                    lineno=lineno,
                    token=label,
                )
            labels[label] = len(pending)
            line = rest.strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        head = parts[0].lower()
        if head == ".space":
            if len(parts) != 3:
                raise AssemblyError(
                    f"line {lineno}: .space needs 'name count'", lineno=lineno
                )
            count = _parse_int(parts[2])
            if count is None or count < 0:
                raise AssemblyError(
                    f"line {lineno}: bad .space count {parts[2]!r}",
                    lineno=lineno,
                    token=parts[2],
                )
            data_directives.append((parts[1], [0] * count, lineno))
        elif head == ".words":
            if len(parts) < 3:
                raise AssemblyError(
                    f"line {lineno}: .words needs 'name v1 ...'", lineno=lineno
                )
            values = []
            for token in parts[2:]:
                value = _parse_int(token)
                if value is None:
                    raise AssemblyError(
                        f"line {lineno}: bad word value {token!r}",
                        lineno=lineno,
                        token=token,
                    )
                values.append(value)
            data_directives.append((parts[1], values, lineno))
        else:
            if head not in OPCODES:
                raise AssemblyError(
                    f"line {lineno}: unknown mnemonic {head!r}",
                    lineno=lineno,
                    token=head,
                )
            pending.append((lineno, head, parts[1:]))

    # Place instructions: two words when an immediate is carried.
    addresses: List[int] = []
    addr = code_base
    for _lineno, mnemonic, _operands in pending:
        addresses.append(addr)
        addr += word_size * (2 if OPCODES[mnemonic] in HAS_IMMEDIATE else 1)
    data_base = addr
    # Data symbols placed sequentially after code.
    symbols: Dict[str, int] = {}
    data: Dict[int, int] = {}
    for name, values, lineno in data_directives:
        if not name.isidentifier():
            raise AssemblyError(
                f"line {lineno}: bad data symbol {name!r}",
                lineno=lineno,
                token=name,
            )
        if name in symbols or name in labels:
            raise AssemblyError(
                f"line {lineno}: duplicate symbol {name!r}",
                lineno=lineno,
                token=name,
            )
        symbols[name] = addr
        for value in values:
            data[addr] = value
            addr += word_size
    data_limit = addr
    for label, index in labels.items():
        if label in symbols:
            raise AssemblyError(
                f"label {label!r} collides with a data symbol", token=label
            )
        symbols[label] = (
            addresses[index] if index < len(addresses) else data_base
        )

    # Pass 2: build instructions with resolved operands.
    instructions: List[Instruction] = []
    addr_to_index: Dict[int, int] = {}
    for index, (lineno, mnemonic, operands) in enumerate(pending):
        op = OPCODES[mnemonic]
        a = b = -1
        imm: Optional[int] = None
        if op in _REG_OPERANDS:
            want = _REG_OPERANDS[op]
            if len(operands) != want:
                raise AssemblyError(
                    f"line {lineno}: {mnemonic} takes {want} register operand(s)",
                    lineno=lineno,
                    token=mnemonic,
                )
            if want >= 1:
                a = _parse_register(operands[0], lineno)
            if want >= 2:
                b = _parse_register(operands[1], lineno)
        elif op in (Op.LI, Op.ADDI):
            if len(operands) != 2:
                raise AssemblyError(
                    f"line {lineno}: {mnemonic} takes 'rd, imm'",
                    lineno=lineno,
                    token=mnemonic,
                )
            a = _parse_register(operands[0], lineno)
            imm = _ImmediateRef(operands[1], lineno).resolve(symbols, word_size)
        elif op in (Op.LD, Op.ST, Op.LDB, Op.STB):
            if len(operands) != 3:
                raise AssemblyError(
                    f"line {lineno}: {mnemonic} takes 'r, r, offset'",
                    lineno=lineno,
                    token=mnemonic,
                )
            a = _parse_register(operands[0], lineno)
            b = _parse_register(operands[1], lineno)
            imm = _ImmediateRef(operands[2], lineno).resolve(symbols, word_size)
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            if len(operands) != 3:
                raise AssemblyError(
                    f"line {lineno}: {mnemonic} takes 'r, r, label'",
                    lineno=lineno,
                    token=mnemonic,
                )
            a = _parse_register(operands[0], lineno)
            b = _parse_register(operands[1], lineno)
            imm = _ImmediateRef(operands[2], lineno).resolve(symbols, word_size)
        elif op in (Op.JMP, Op.CALL):
            if len(operands) != 1:
                raise AssemblyError(
                    f"line {lineno}: {mnemonic} takes a label",
                    lineno=lineno,
                    token=mnemonic,
                )
            imm = _ImmediateRef(operands[0], lineno).resolve(symbols, word_size)
        else:  # pragma: no cover - every opcode is covered above
            raise AssemblyError(f"line {lineno}: unhandled mnemonic {mnemonic!r}")
        words = 2 if op in HAS_IMMEDIATE else 1
        instruction = Instruction(
            op=op, a=a, b=b, imm=imm, addr=addresses[index], words=words
        )
        addr_to_index[addresses[index]] = index
        instructions.append(instruction)

    return AssembledProgram(
        instructions=instructions,
        addr_to_index=addr_to_index,
        data=data,
        symbols=symbols,
        word_size=word_size,
        code_base=code_base,
        data_base=data_base,
        data_limit=data_limit,
    )
