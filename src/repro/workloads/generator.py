"""Trace generation front-end: run programs / models to a length budget.

:func:`program_trace` executes a toy-machine program repeatedly (fresh
data each run, like re-invoking a UNIX utility) until the requested
reference count is reached.  :func:`synthetic_trace` drives the
statistical model.  Both return word-aligned traces of exactly the
requested length, ready for simulation.
"""

from __future__ import annotations

import inspect
from typing import Optional

from repro.errors import ConfigurationError, MachineError
from repro.trace.record import Trace
from repro.workloads.assembler import assemble
from repro.workloads.machine import Machine
from repro.workloads.programs import PROGRAMS
from repro.workloads.synthetic import SyntheticProfile, generate_synthetic

__all__ = ["program_trace", "synthetic_trace"]

_MAX_RESTARTS = 200


def program_trace(
    program: str,
    length: int,
    word_size: int = 2,
    seed: int = 0,
    name: str = "",
    **params,
) -> Trace:
    """Generate a trace by executing a workload program.

    The program is run to completion; if its trace is shorter than
    ``length`` it is re-run with a stepped seed (fresh data, same code)
    and the traces concatenated — modelling repeated invocations of the
    same utility.  The result is truncated to exactly ``length``.

    Args:
        program: A key of :data:`repro.workloads.programs.PROGRAMS`.
        length: Number of references wanted.
        word_size: Data-path width (2 or 4 bytes).
        seed: Base seed for the program's data.
        name: Trace name; defaults to the program name.
        **params: Forwarded to the program's builder (e.g. ``n=500``).

    Raises:
        ConfigurationError: For an unknown program or an unproductive
            one (a run that emits no references).
    """
    if program not in PROGRAMS:
        raise ConfigurationError(
            f"unknown program {program!r}; choose from {sorted(PROGRAMS)}"
        )
    builder = PROGRAMS[program]
    takes_seed = "seed" in inspect.signature(builder).parameters
    pieces = []
    total = 0
    for restart in range(_MAX_RESTARTS):
        if total >= length:
            break
        run_params = dict(params)
        if takes_seed:
            run_params["seed"] = seed + restart
        spec = builder(**run_params)
        machine = Machine(
            assemble(spec.source, word_size=word_size),
            trace_name=name or program,
        )
        try:
            result = machine.run(max_refs=length - total)
        except MachineError as exc:
            # Re-raise with the provenance a failing sweep needs: which
            # program, which invocation, which seed.
            raise MachineError(
                f"program {program!r} (trace {name or program!r}, "
                f"restart {restart}, seed {run_params.get('seed', seed)}): "
                f"{exc}",
                steps=exc.steps,
            ) from exc
        if len(result.trace) == 0:
            raise ConfigurationError(
                f"program {program!r} produced an empty trace"
            )
        pieces.append(result.trace)
        total += len(result.trace)
    else:
        raise ConfigurationError(
            f"program {program!r} needed more than {_MAX_RESTARTS} restarts "
            f"to produce {length} references"
        )
    trace = pieces[0]
    for piece in pieces[1:]:
        trace = trace + piece
    trace.name = name or program
    return trace[:length]


def synthetic_trace(
    profile: SyntheticProfile,
    length: int,
    word_size: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
) -> Trace:
    """Generate a trace from the statistical locality model."""
    return generate_synthetic(
        profile, length, word_size=word_size, seed=seed, name=name or "synthetic"
    )
